"""E9 bench: replication latency, availability, quorum trade (figure E9)."""

from conftest import run_experiment

from repro.bench.experiments import e9_replication


def test_e9_replication(benchmark):
    rows = run_experiment(benchmark, e9_replication, ops=120)
    at = {row["replicas"]: row for row in rows
          if row["mode"] == "write-all"}
    assert at[3]["read_ms"] < at[1]["read_ms"] / 2, \
        "a near replica must cut read latency"
    writes = [at[n]["write_ms"] for n in sorted(at)]
    assert writes == sorted(writes), "write-all cost grows with replicas"
    assert at[5]["availability"] > at[1]["availability"], \
        "replication must buy availability under crashes"
    quorum = {(row["write_quorum"], row["read_quorum"]): row
              for row in rows if row["mode"] == "quorum"}
    assert quorum[(2, 2)]["stale_reads"] == 0, \
        "overlapping quorums must never serve stale reads"
    assert quorum[(1, 1)]["stale_reads"] > 0, \
        "the under-quorumed config must show the staleness it trades for"
    failover = {row["mode"]: row for row in rows
                if row["mode"].startswith("failover-")}
    static, lease = failover["failover-static"], failover["failover-lease"]
    assert static["goodput_after"] == 0.0, \
        "a fixed primary's crash must stall every subsequent write"
    assert static["unavail_ms"] is None, \
        "the static deployment never recovers within the run"
    assert lease["goodput_after"] == 1.0, \
        "the election must recover every post-crash write"
    assert lease["unavail_ms"] is not None and \
        500.0 <= lease["unavail_ms"] < 2000.0, \
        "write unavailability must be bounded by lease TTL + election time"
