"""E8 bench: the lightweight-RPC fast path (figure E8)."""

from conftest import run_experiment

from repro.bench.experiments import e8_lrpc


def test_e8_lrpc(benchmark):
    rows = run_experiment(benchmark, e8_lrpc, ops=200)
    at = {(row["local_fraction"], row["fast_path"]): row["mean_us"]
          for row in rows}
    assert at[(1.0, True)] < at[(1.0, False)] / 10, \
        "fully local workload must win 10x from the fast path"
    assert abs(at[(0.0, True)] - at[(0.0, False)]) < 1.0, \
        "fully remote workload must be unaffected"
