"""Benchmark harness configuration.

Each bench runs one experiment exactly once under pytest-benchmark timing
(the experiments are deterministic — repetition would measure the host CPU,
not the simulated system) and prints the experiment's result table, which
is the artefact EXPERIMENTS.md records.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations


def run_experiment(benchmark, module, **kwargs):
    """Execute ``module.run(**kwargs)`` once under the benchmark timer and
    print its rendered table; returns the rows for assertions."""
    from repro.bench.render import render_table
    rows = benchmark.pedantic(lambda: module.run(**kwargs),
                              rounds=1, iterations=1)
    print()
    print(render_table(rows, getattr(module, "TITLE", module.__name__)))
    return rows
