"""E4 bench: RPC vs caching vs DSM as writers multiply (figure E4)."""

from conftest import run_experiment

from repro.bench.experiments import e4_sharing
from repro.bench.render import who_wins


def test_e4_sharing(benchmark):
    rows = run_experiment(benchmark, e4_sharing, ops=120)
    single = [row for row in rows if row["clients"] == 1]
    crowded = [row for row in rows if row["clients"] == 8]
    assert who_wins(single, "technique", "mean_ms") == "dsm"
    dsm = next(row["mean_ms"] for row in crowded if row["technique"] == "dsm")
    rpc = next(row["mean_ms"] for row in crowded if row["technique"] == "rpc")
    assert dsm > rpc, "write sharing must sink DSM below plain RPC"
