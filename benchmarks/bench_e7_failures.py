"""E7 bench: failure masking under message loss (figure E7)."""

from conftest import run_experiment

from repro.bench.experiments import e7_failures


def test_e7_failures(benchmark):
    rows = run_experiment(benchmark, e7_failures, ops=120)
    assert all(row["success_rate"] == 1.0 for row in rows), \
        "retries must fully mask loss up to 30%"
    assert all(row["duplicate_execs"] == 0 for row in rows), \
        "at-most-once must hold at every loss rate"
    assert rows[-1]["mean_ms"] > rows[0]["mean_ms"] * 2, \
        "the client pays for loss in latency"
