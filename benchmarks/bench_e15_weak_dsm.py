"""E15 bench: weak vs strong DSM under write sharing (extension)."""

from conftest import run_experiment

from repro.bench.experiments import e15_weak_dsm


def test_e15_weak_dsm(benchmark):
    rows = run_experiment(benchmark, e15_weak_dsm, ops=100)
    def row(clients, protocol):
        return next(r for r in rows
                    if r["clients"] == clients and r["protocol"] == protocol)
    assert row(8, "weak")["messages"] < row(8, "strong")["messages"] / 2, \
        "dropping invalidations must slash coherence traffic"
    assert row(8, "weak")["mean_ms"] < row(8, "strong")["mean_ms"], \
        "weak consistency must be faster under sharing"
    assert all(r["stale_read_frac"] == 0 for r in rows
               if r["protocol"] == "strong"), \
        "strong consistency never serves stale reads"
    assert row(8, "weak")["stale_read_frac"] > 0, \
        "the weak protocol pays in staleness"
