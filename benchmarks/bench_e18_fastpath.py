"""E18 bench: invocation fast path — end-to-end host throughput."""

from conftest import run_experiment

from repro.bench.experiments import e18_fastpath


def test_e18_fastpath(benchmark):
    rows = run_experiment(benchmark, e18_fastpath, ops=300)
    by_policy = {row["policy"]: row for row in rows}
    assert set(by_policy) == set(e18_fastpath.POLICIES)
    # Wall numbers are host-dependent; only the deterministic fields are
    # asserted here (the CI perf gate compares normalised throughput).
    assert by_policy["caching"]["sim_us_per_op"] < \
        by_policy["stub"]["sim_us_per_op"], \
        "caching must beat the stub in virtual time"
    assert by_policy["caching"]["messages"] < by_policy["stub"]["messages"], \
        "caching must send fewer messages than the stub"
    assert by_policy["replicated"]["messages"] > \
        by_policy["stub"]["messages"], \
        "replication fans writes out to replicas"
    assert by_policy["resilient"]["sim_us_per_op"] == \
        by_policy["stub"]["sim_us_per_op"], \
        "with no faults injected, resilience adds no virtual latency"
    for row in rows:
        assert row["kops_per_sec"] > 0 and row["wall_us_per_op"] > 0
