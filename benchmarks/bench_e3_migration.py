"""E3 bench: the migration crossover (figure E3)."""

from conftest import run_experiment

from repro.bench.experiments import e3_migration
from repro.bench.render import render_table


def test_e3_migration(benchmark):
    rows = run_experiment(benchmark, e3_migration)
    paired = e3_migration.paired(rows)
    print()
    print(render_table(paired, "E3 paired (crossover view)"))
    winners = [row for row in paired
               if row["migrating_ms"] < row["stub_ms"]]
    assert winners, "migration must win for long bursts"
    assert winners[0]["ops"] <= 20, "crossover should be early"
    longest = paired[-1]
    assert longest["migrating_ms"] < longest["stub_ms"] / 5
