"""E7c bench: hedged reads + adaptive timeouts vs serial retry (figure E7c)."""

from conftest import run_experiment

from repro.bench.experiments import e7c_hedging


def test_e7c_hedging(benchmark):
    rows = run_experiment(benchmark, e7c_hedging, ops=160)
    assert all(row["hedged_p99_ms"] < row["serial_p99_ms"] for row in rows
               if row["loss"] >= 0.1), \
        "hedging must cut the read tail below serial retry under >=10% loss"
    assert all(row["hedged_ok"] >= row["serial_ok"] for row in rows), \
        "a lost hedge falls back to the serial walk, so hedging must " \
        "never cost availability"
    assert all(row["hedges"] > 0 and row["hedge_wins"] > 0 for row in rows), \
        "under loss the backup request must fire and win at least once"
    assert all(row["link_patience_ms"] < row["global_patience_ms"]
               for row in rows), \
        "the fast link's Jacobson RTO must undercut the global " \
        "rpc_timeout-derived patience once the estimator is warm"
