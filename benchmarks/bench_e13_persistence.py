"""E13 bench: checkpoint-interval trade-off (extension table E13)."""

from conftest import run_experiment

from repro.bench.experiments import e13_persistence


def test_e13_persistence(benchmark):
    rows = run_experiment(benchmark, e13_persistence)
    by_interval = {row["interval"]: row for row in rows}
    assert by_interval[1]["lost_at_crash"] == 0, \
        "checkpoint-every-mutation must lose nothing"
    assert by_interval[32]["lost_at_crash"] > 0, \
        "sparse checkpoints must roll back work"
    assert by_interval[1]["mean_write_ms"] > \
        by_interval[32]["mean_write_ms"] * 2, \
        "frequent checkpoints must cost real write latency"
    losses = [by_interval[n]["lost_at_crash"] for n in (1, 2, 4, 8, 16, 32)]
    assert losses == sorted(losses), "loss grows with the interval"
