"""E5 bench: one script, five protocols, identical results (table E5)."""

from conftest import run_experiment

from repro.bench.experiments import e5_encapsulation


def test_e5_encapsulation(benchmark):
    rows = run_experiment(benchmark, e5_encapsulation)
    assert e5_encapsulation.digests_agree(rows), \
        "every policy must produce the identical observable outcome"
    messages = {row["policy"]: row["messages"] for row in rows}
    assert len(set(messages.values())) >= 3, \
        "the protocols must differ measurably"
