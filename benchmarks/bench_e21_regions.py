"""E21 bench: regions — read locality vs. the cross-region quorum price."""

from conftest import run_experiment

from repro.bench.experiments import e21_regions


def test_e21_regions(benchmark):
    rows = run_experiment(benchmark, e21_regions)
    by_scenario = {row["scenario"]: row for row in rows}
    expected = {f"{dep}@{tag}" for dep in e21_regions.DEPLOYMENTS
                for tag in ("east", "west", "probe")}
    assert set(by_scenario) == expected

    def cell(deployment, tag):
        return by_scenario[f"{deployment}@{tag}"]

    # The centralisation tax: the remote region pays the WAN on every
    # read, an order of magnitude over the home region's LAN reads.
    assert cell("central", "west")["read_ms"] > \
        10 * cell("central", "east")["read_ms"]
    assert cell("central", "east")["read_like_lan"]
    assert not cell("central", "west")["read_like_lan"]

    # The read-locality win: the legacy regional group answers *every*
    # region's reads from its own replica — west reads shed the WAN
    # entirely — and stays available through the crash plan (reads
    # retreat to the other region when the local replica is down).
    for region in ("east", "west"):
        assert cell("regional-local", region)["read_like_lan"]
    assert cell("regional-local", "west")["read_ms"] < \
        0.1 * cell("central", "west")["read_ms"]
    assert cell("regional-local", "probe")["availability"] > \
        cell("central", "probe")["availability"]

    # ... and its price: the staleness probe convicts the read-one
    # contract — a write committed against the home majority while the
    # west replica was down is invisible to west readers.
    assert cell("regional-local", "probe")["stale_reads"] > 0

    # The quorum price, paid where the locality win was cashed: R+W > N
    # makes every read fresh (zero stale), the home region keeps LAN
    # reads off its local two-replica quorum, and the remote region pays
    # the WAN for its second vote.
    assert cell("regional-quorum", "probe")["stale_reads"] == 0
    assert cell("regional-quorum", "east")["read_like_lan"]
    assert not cell("regional-quorum", "west")["read_like_lan"]

    # Writes pay the WAN under replication in both modes — the trade
    # moves cost to mutations, it does not erase it.
    for deployment in ("regional-local", "regional-quorum"):
        for region in ("east", "west"):
            assert cell(deployment, region)["write_ms"] > \
                10 * cell("central", "east")["write_ms"]
