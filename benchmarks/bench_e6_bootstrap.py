"""E6 bench: bootstrap handshake and directory chains (figure E6)."""

from conftest import run_experiment

from repro.bench.experiments import e6_bootstrap


def test_e6_bootstrap(benchmark):
    rows = run_experiment(benchmark, e6_bootstrap)
    bind_row = next(row for row in rows
                    if row["scenario"] == "bind via name service")
    assert bind_row["messages"] == 4, "lookup + installation handshake"
    chain = {row["depth"]: row["messages"] for row in rows
             if row["scenario"] == "directory chain"}
    assert chain[8] >= chain[4] >= chain[2] >= chain[1]
    assert chain[8] == 2 * chain[4], "two messages per resolution hop"
