"""E10 bench: marshalling costs and reference-vs-value passing (figure E10)."""

from conftest import run_experiment

from repro.bench.experiments import e10_marshalling


def test_e10_marshalling(benchmark):
    rows = run_experiment(benchmark, e10_marshalling, ops=40)
    payload = [row for row in rows if row["scenario"] == "payload"]
    assert payload[-1]["mean_ms"] > payload[0]["mean_ms"] * 10, \
        "byte costs must dominate at 64KB"
    ref16 = next(row for row in rows
                 if row["scenario"] == "16 args by reference")
    val16 = next(row for row in rows
                 if row["scenario"] == "16 args by value")
    assert ref16["bytes_per_op"] < val16["bytes_per_op"] / 3, \
        "references must be dramatically cheaper on the wire"
