"""E19 bench: consistent-hash sharding — scaling and hot-shard split."""

from conftest import run_experiment

from repro.bench.experiments import e19_sharding


def test_e19_sharding(benchmark):
    rows = run_experiment(benchmark, e19_sharding, ops=1280)
    by_scenario = {row["scenario"]: row for row in rows}
    expected = {str(count) for count in e19_sharding.SHARD_COUNTS}
    expected.add(f"{e19_sharding.SHARD_COUNTS[-1]}+split")
    assert set(by_scenario) == expected
    # The scaling claim: virtual throughput grows monotonically with the
    # shard count (every number here is virtual-time, hence exact).
    curve = [by_scenario[str(count)]["virtual_kops"]
             for count in e19_sharding.SHARD_COUNTS]
    assert curve == sorted(curve) and curve[0] < curve[-1], \
        f"shard scaling must be monotone, got {curve}"
    for row in rows:
        assert row["p50_us"] > 0 and row["p99_us"] >= row["p50_us"]
        assert row["messages"] > 0
    # The split claim: arcs actually moved, stale-ring clients were fenced
    # or healed rather than served wrong answers, and the post-split rate
    # recovers to near the undisturbed 8-shard rate.
    split = by_scenario[f"{e19_sharding.SHARD_COUNTS[-1]}+split"]
    steady = by_scenario[str(e19_sharding.SHARD_COUNTS[-1])]
    assert split["moved_arcs"] > 0, "the split must move ring arcs"
    assert split["redirects"] + split["heals"] > 0, \
        "stale rings must be fenced (redirect) or healed in-band"
    assert split["second_half_kops"] > 0.6 * steady["second_half_kops"], \
        "post-split throughput must recover near the steady 8-shard rate"
    # No-split scenarios never touch the ring, so no fencing happens.
    for count in e19_sharding.SHARD_COUNTS:
        row = by_scenario[str(count)]
        assert row["moved_arcs"] == row["redirects"] == row["heals"] == 0
