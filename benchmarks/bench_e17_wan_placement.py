"""E17 bench: WAN placement strategies (extension capstone)."""

from conftest import run_experiment

from repro.bench.experiments import e17_wan_placement


def test_e17_wan_placement(benchmark):
    rows = run_experiment(benchmark, e17_wan_placement, ops=120)
    def cell(deployment, site):
        return next(row["mean_ms"] for row in rows
                    if row["deployment"] == deployment
                    and row["site"] == site)
    assert cell("central", "beta") > cell("central", "alpha") * 4, \
        "a central service strands the remote site behind the WAN"
    assert cell("replicated", "beta") < cell("central", "beta") / 3, \
        "a local replica rescues the remote site"
    assert abs(cell("replicated", "alpha") - cell("replicated", "beta")) < \
        cell("replicated", "alpha"), \
        "replication roughly equalises the sites"
    assert cell("caching", "beta") < cell("central", "beta"), \
        "coherent caching also helps the remote site"
