"""E11 bench: machinery ablations (table E11)."""

from conftest import run_experiment

from repro.bench.experiments import e11_ablation


def test_e11_ablation(benchmark):
    rows = run_experiment(benchmark, e11_ablation, ops=90)
    def value(ablation, setting):
        return next(row["value"] for row in rows
                    if row["ablation"] == ablation
                    and row["setting"] == setting)
    assert value("at-most-once", "on") == 0
    assert value("at-most-once", "off") > 0
    assert value("proxy GC", "after sweep") < value("proxy GC", "before sweep")
    assert value("forwarding", "compacted") == 1
    assert value("forwarding", "raw chain") == 4
