"""E14 bench: optimistic transactions under contention (extension)."""

from conftest import run_experiment

from repro.bench.experiments import e14_transactions


def test_e14_transactions(benchmark):
    rows = run_experiment(benchmark, e14_transactions)
    by_pool = {row["hot_keys"]: row for row in rows}
    assert by_pool[64]["abort_rate"] < 0.15, \
        "a wide key pool should rarely conflict"
    assert by_pool[1]["abort_rate"] > by_pool[64]["abort_rate"] + 0.2, \
        "a single hot key must conflict heavily"
    rates = [by_pool[n]["abort_rate"] for n in (64, 16, 4, 2, 1)]
    assert rates == sorted(rates), "abort rate grows as the pool shrinks"
    assert by_pool[1]["goodput_per_s"] < by_pool[64]["goodput_per_s"]
