"""E2 bench: caching proxy vs stub across the read/write mix (figure E2)."""

from conftest import run_experiment

from repro.bench.experiments import e2_caching
from repro.bench.render import who_wins


def test_e2_caching(benchmark):
    rows = run_experiment(benchmark, e2_caching, clients=4, ops=150, keys=50)
    read_heavy = [row for row in rows if row["read_ratio"] >= 0.9
                  and row["policy"] in ("stub", "caching")]
    assert who_wins(read_heavy, "policy", "mean_ms") == "caching"
    write_only = {row["policy"]: row["mean_ms"]
                  for row in rows if row["read_ratio"] == 0.0}
    assert write_only["caching"] >= write_only["stub"] * 0.95
