"""E1 bench: the invocation-technique matrix (DESIGN.md table E1)."""

from conftest import run_experiment

from repro.bench.experiments import e1_invocation_matrix


def test_e1_invocation_matrix(benchmark):
    rows = run_experiment(benchmark, e1_invocation_matrix, ops=200)
    by_technique = {row["technique"]: row for row in rows}
    local = by_technique["procedure call"]["mean_us"]
    lrpc = by_technique["lightweight RPC"]["mean_us"]
    rpc = by_technique["remote procedure call"]["mean_us"]
    proxy = by_technique["proxy (stub policy)"]["mean_us"]
    dsm = by_technique["distributed virtual memory"]["mean_us"]
    assert local <= lrpc < rpc
    assert proxy <= rpc * 1.05
    assert dsm < rpc / 100
