"""E20 bench: admission control — goodput collapse vs protected plateau."""

from conftest import run_experiment

from repro.bench.experiments import e20_admission


def test_e20_admission(benchmark):
    rows = run_experiment(benchmark, e20_admission)
    by_scenario = {row["scenario"]: row for row in rows}
    expected = {f"{stack}@{load:g}x" for stack in e20_admission.STACKS
                for load in e20_admission.LOADS}
    assert set(by_scenario) == expected

    def cell(stack, load):
        return by_scenario[f"{stack}@{load:g}x"]

    def peak(stack):
        return max(cell(stack, load)["goodput"]
                   for load in e20_admission.LOADS)

    # The collapse claim: without protection, goodput at 2× saturation
    # falls off a cliff — the server answers, but far past the SLO.
    assert cell("none", 2.0)["goodput"] < 0.5 * peak("none"), \
        "unprotected overload must collapse goodput"
    slo_ms = e20_admission.SLO * 1e3
    assert cell("none", 3.0)["p99_ms"] > slo_ms

    # The plateau claim (the PR's acceptance bar): with shedding the
    # goodput at 2× stays within 10% of the stack's peak, and p99 stays
    # bounded by the SLO — overload becomes a horizontal line.
    for stack in ("queue+shed", "queue+shed+bulkhead"):
        assert cell(stack, 2.0)["goodput"] >= 0.9 * peak(stack), \
            f"{stack} must hold >= 90% of peak goodput at 2x saturation"
        assert cell(stack, 3.0)["p99_ms"] < slo_ms
        assert cell(stack, 2.0)["shed_throttle"] > 0

    # The bulkhead claim: the calm lane's goodput is flat at every load —
    # the hot lane's storm cannot take its compartment or its tokens.
    calm = [cell("queue+shed+bulkhead", load)["calm_goodput"]
            for load in e20_admission.LOADS]
    assert min(calm) == max(calm), \
        f"bulkhead must hold the calm lane flat, got {calm}"
    assert min(calm) > 0.9 * cell("none", 0.5)["calm_goodput"]

    # The honest queue-alone finding: a bounded queue without shedding
    # relocates the wait but cannot change departure times — its latency
    # numbers are identical to no protection at all.
    for load in e20_admission.LOADS:
        assert cell("queue", load)["p99_ms"] == cell("none", load)["p99_ms"]
        assert cell("queue", load)["goodput"] == cell("none", load)["goodput"]
    assert cell("queue", 2.0)["shed_queue"] > 0
