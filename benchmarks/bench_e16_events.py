"""E16 bench: event fan-out and loss recovery (extension)."""

from conftest import run_experiment

from repro.bench.experiments import e16_events


def test_e16_events(benchmark):
    rows = run_experiment(benchmark, e16_events)
    fanout = [row for row in rows if row["scenario"] == "fan-out"]
    publish_costs = [row["publish_ms"] for row in fanout]
    assert publish_costs == sorted(publish_costs), \
        "publish cost grows with subscribers"
    assert fanout[-1]["messages"] > fanout[0]["messages"], \
        "fan-out messages grow with subscribers"
    assert all(row["push_delivered_frac"] == 1.0 for row in fanout), \
        "no loss: every push arrives"
    lossy = next(row for row in rows if row["scenario"] == "40% loss")
    assert lossy["push_delivered_frac"] < 1.0, \
        "pushes must go missing under loss"
    assert lossy["after_catch_up_frac"] == 1.0, \
        "replay must recover every event"
