"""E12 bench: promise pipelining (extension figure E12)."""

from conftest import run_experiment

from repro.bench.experiments import e12_pipelining


def test_e12_pipelining(benchmark):
    rows = run_experiment(benchmark, e12_pipelining, ops=32)
    by_window = {row["window"]: row for row in rows}
    assert by_window["unbounded"]["total_ms"] < by_window[1]["total_ms"] / 4, \
        "unbounded pipelining must beat sequential RPC by 4x+"
    totals = [by_window[w]["total_ms"] for w in (1, 2, 4, 8)]
    assert totals == sorted(totals, reverse=True), \
        "wider windows must be monotonically faster"
