"""E7b bench: resilience on/off under loss + crashes (figure E7b)."""

from conftest import run_experiment

from repro.bench.experiments import e7b_resilience


def test_e7b_resilience(benchmark):
    rows = run_experiment(benchmark, e7b_resilience, ops=160)
    assert all(row["res_ok"] > row["base_ok"] for row in rows
               if row["loss"] >= 0.1), \
        "the resilience layer must strictly improve availability under " \
        ">=10% loss with a periodically crashing primary"
    assert all(row["res_p99_ms"] < row["base_p99_ms"] for row in rows), \
        "the per-call deadline must cap the failure tail below the " \
        "fixed-retry timeout"
    assert all(row["open_fail_ms"] * 10 <= row["timeout_fail_ms"]
               for row in rows), \
        "a breaker fast-fail must be >=10x cheaper than an exhausted " \
        "retry budget"
