"""The bank workload: transactional transfers graded for atomicity.

Four accounts across **two** versioned stores on different nodes, one
facade service the clients call — ``transfer`` moves money between
accounts (usually across stores), ``balance``/``total`` observe it.  The
facade exists so one deployment knob swaps the *transaction discipline*
underneath an identical client API, which is the comparison the harness
grades:

* ``txn2pc`` — :class:`TwoPhaseBank` runs every transfer through
  :meth:`~repro.transactions.coordinator.TransactionCoordinator.commit_2pc`.
  Atomic and linearizable, but **blocking**: a partition between prepare
  and decision leaves keys wedged, and every read touching them refuses
  (:class:`~repro.kernel.errors.TransactionBlocked`) until the recovery
  pump redelivers the decision.
* ``saga`` — :class:`SagaBank` runs every transfer as a two-step saga
  (debit, credit) with compensations.  Never blocks — every call gets an
  answer — but intermediate states are visible, so it is *not* graded for
  linearizability; it is graded by the **atomicity audit** below.
* ``sagaskip`` — the saga deployment with compensation *recording without
  executing* (:class:`SkipCompensationSaga`).  Money leaks whenever a
  partially-applied transfer aborts, and the audit must convict it: the
  saga-pattern counterpart of ``dirtycache``.

The atomicity audit (:func:`grade_bank`) runs after the fault schedule has
healed: it pumps ``settle`` until no parked work remains, then demands
(1) nothing is left unresolved or wedged, (2) **conservation** — the total
observed through *every client's own proxy* equals the seeded total, so
each client sees either all of a transfer's forward effects or all of its
compensations, and (3) the coordinator's ledger holds no saga that ended
half-applied.  A failure is reported as a synthetic
:class:`~repro.simtest.checker.Violation`, same shape as a checker
conviction, so corpus records and minimization work unchanged.
"""

from __future__ import annotations

from ..core.service import Service
from ..iface.interface import operation
from ..kernel.errors import DistributionError, TransactionBlocked
from ..transactions import SagaCoordinator, TransactionCoordinator
from .checker import Violation

#: The four account keys; the first half lives on store 0, the rest on
#: store 1 — most transfers cross stores, which is the interesting case.
ACCOUNTS = ("a0", "a1", "b0", "b1")

#: Seeded opening balance per account (conservation audits against
#: ``INITIAL * len(ACCOUNTS)``).
INITIAL = 8

#: Per-account ceiling: a credit pushing past it is *refused* by the
#: participant, which is the business-refusal path that forces the saga
#: to compensate an already-applied debit (and the skipping canary to
#: leak money) even on fault-free runs.
CAP = 12

#: The policy labels deployed over this workload.
BANK_POLICIES = ("txn2pc", "saga", "sagaskip")


def store_index(account: str) -> int:
    """Which of the two stores an account lives on."""
    return 0 if account.startswith("a") else 1


class BankFacade(Service):
    """Client-facing API; subclasses supply the transfer discipline.

    ``stores`` are the two :class:`~repro.transactions.participant.
    VersionedKVStore` proxies (bound in the facade's own context — the
    facade pays the store hops in virtual time like any other caller).
    """

    default_policy = "stub"

    def __init__(self, stores):
        self.stores = list(stores)

    def _store(self, account: str):
        return self.stores[store_index(account)]

    @operation(readonly=True, compute=5e-6)
    def balance(self, account: str) -> int:
        """The account's current balance (refuses while the key is wedged)."""
        value, _ = self._store(account).read(account)
        return int(value or 0)

    @operation(readonly=True, compute=8e-6)
    def total(self) -> int:
        """Sum over every account (refuses while any key is wedged)."""
        amount = 0
        for account in ACCOUNTS:
            value, _ = self._store(account).read(account)
            amount += int(value or 0)
        return amount

    @operation(compute=1e-5)
    def settle(self) -> int:
        """Re-drive parked recovery work; returns actions resolved."""
        raise NotImplementedError

    @operation(readonly=True, compute=3e-6)
    def unresolved(self) -> int:
        """Transactions/sagas still awaiting delivery."""
        raise NotImplementedError


class TwoPhaseBank(BankFacade):
    """Transfers as strict two-phase commits: atomic, blocking."""

    def __init__(self, stores):
        super().__init__(stores)
        self.txn = TransactionCoordinator()

    @operation(compute=2e-5)
    def transfer(self, src: str, dst: str, amount: int) -> str:
        """``"committed"``, ``"insufficient"``, or ``"capped"``.

        Business checks run on freshly-read balances *before* any 2PC
        traffic, in that order (the model mirrors it).  Reads on wedged
        keys raise; a prepare refusal can only mean a wedged key appeared
        mid-transfer, so it raises :class:`TransactionBlocked` too.
        """
        src_store, dst_store = self._store(src), self._store(dst)
        src_balance, src_version = src_store.read(src)
        dst_balance, dst_version = dst_store.read(dst)
        src_balance = int(src_balance or 0)
        dst_balance = int(dst_balance or 0)
        if src_balance < amount:
            return "insufficient"
        if dst_balance + amount > CAP:
            return "capped"
        txid = self.txn.begin()
        committed = self.txn.commit_2pc(
            txid,
            [[src_store, src, src_version], [dst_store, dst, dst_version]],
            [[src_store, src, src_balance - amount],
             [dst_store, dst, dst_balance + amount]])
        if not committed:
            raise TransactionBlocked(
                f"transfer {src}->{dst} refused at prepare: key in doubt")
        return "committed"

    @operation(compute=1e-5)
    def settle(self) -> int:
        return self.txn.recover()

    @operation(readonly=True, compute=3e-6)
    def unresolved(self) -> int:
        return self.txn.in_doubt()


class SagaBank(BankFacade):
    """Transfers as debit/credit sagas: non-blocking, compensating."""

    saga_class = SagaCoordinator

    def __init__(self, stores):
        super().__init__(stores)
        self.saga = self.saga_class()

    @operation(compute=2e-5)
    def transfer(self, src: str, dst: str, amount: int) -> str:
        """``"committed"``, ``"insufficient"``, ``"capped"``, or
        ``"aborted"`` (an in-doubt step decided abort) — always an
        answer, never a wedged key."""
        outcome = self.saga.run(
            [[self._store(src), src, -amount, 0, None],
             [self._store(dst), dst, amount, None, CAP]])
        if outcome[0] == "committed":
            return "committed"
        if outcome[0] == "aborted":
            return "aborted"
        return "insufficient" if outcome[1] == 0 else "capped"

    @operation(compute=1e-5)
    def settle(self) -> int:
        return self.saga.settle()

    @operation(readonly=True, compute=3e-6)
    def unresolved(self) -> int:
        return self.saga.unresolved()


class SkipCompensationSaga(SagaCoordinator):
    """The canary: compensations are *recorded as done* but never sent.

    Every bookkeeping path is the honest coordinator's — the ledger
    believes each aborted saga was fully compensated — yet the undo
    adjustments never reach the stores, so an applied debit whose credit
    refused (or aborted in doubt) simply vanishes from the system.  The
    atomicity audit must convict this via conservation.
    """

    def _compensate(self, saga_id, entry, steps, index) -> None:
        self.stats["settled_actions"] += 0    # pretend it happened


class SkipCompensationBank(SagaBank):
    """The ``sagaskip`` facade: honest saga plumbing, leaking undo."""

    saga_class = SkipCompensationSaga


#: Policy label → facade class.
BANK_FACADES = {"txn2pc": TwoPhaseBank, "saga": SagaBank,
                "sagaskip": SkipCompensationBank}


def grade_bank(facade, clients, settle_rounds: int = 12) -> Violation | None:
    """The atomicity audit; ``None`` means the invariant held.

    ``facade`` is the raw facade object (ledger introspection);
    ``clients`` the driver's ``(name, context, proxy)`` triples —
    conservation is observed through every client's own proxy, which is
    what makes this a *per-client* invariant.  Call after the fault
    schedule has healed.
    """
    proxy = clients[0][2]
    pending = None
    for _ in range(settle_rounds):
        try:
            moved = proxy.invoke("settle", (), {})
            pending = proxy.invoke("unresolved", (), {})
        except DistributionError as exc:
            pending = f"!{type(exc).__name__}"
            continue
        if not moved and not pending:
            break
    if pending:
        return Violation(
            partition="bank-atomicity",
            ops=[{"client": clients[0][0], "verb": "settle",
                  "unresolved": pending,
                  "note": "parked recovery work never drained"}],
            longest_prefix=-1)
    expected = INITIAL * len(ACCOUNTS)
    for name, _, client_proxy in clients:
        try:
            observed = client_proxy.invoke("total", (), {})
        except DistributionError as exc:
            observed = f"!{type(exc).__name__}"
        if observed != expected:
            return Violation(
                partition="bank-atomicity",
                ops=[{"client": name, "verb": "total", "result": observed,
                      "expected": expected,
                      "note": "conservation broken: some transfer was "
                              "neither completed nor compensated"}],
                longest_prefix=-1)
    saga = getattr(facade, "saga", None)
    if saga is not None:
        half_applied = [saga_id for saga_id, entry in saga.ledger.items()
                        if entry["parked"]]
        if half_applied:
            return Violation(
                partition="bank-atomicity",
                ops=[{"verb": "ledger", "sagas": half_applied,
                      "note": "sagas left half-applied after settlement"}],
                longest_prefix=-1)
    return None
