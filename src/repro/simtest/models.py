"""Sequential oracles for the :mod:`repro.apps` services.

A :class:`Model` is the specification the linearizability checker searches
against: pure functions over hashable state.  ``step`` mirrors the service
method's semantics exactly — including application-level exceptions, which
are modelled as ``"!ExceptionName"`` result markers (the convention of
:mod:`repro.simtest.history`) with whatever state change the real service
makes before raising (none, for the services here).

``partition_key`` enables the checker's big win: operations touching
disjoint keys commute, so a history over K keys decomposes into K
independent, exponentially smaller sub-histories.  Models whose operations
all share state (counter, queue) return ``None`` — one partition.

State must be **hashable** (tuples, not lists): the checker memoizes on
``(remaining ops, state)`` pairs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Hashable

#: State marker for an absent KV key (distinct from a stored ``None``).
_ABSENT = ("__absent__",)

#: Sentinel for "this partition has no state yet" in :class:`CombinedModel`.
_UNSET = ("__unset__",)


class Model:
    """A sequential specification: initial state plus a step function."""

    #: Registry name, matching the workload's service names.
    name = ""

    #: Verbs that never move state (the read-your-writes oracle drops
    #: *other* clients' reads from a client's projection; see
    #: :func:`ryw_projection`).  Must mirror the service interface's
    #: ``readonly`` flags — cross-checked by the model self-tests.
    readonly_verbs: frozenset[str] = frozenset()

    def initial(self) -> Hashable:
        """The state every partition starts from."""
        raise NotImplementedError

    def partition_key(self, verb: str, args: tuple) -> Hashable | None:
        """The key an operation touches (``None`` = touches everything)."""
        return None

    def step(self, state: Hashable, verb: str,
             args: tuple) -> tuple[Any, Hashable]:
        """Apply one operation: returns ``(result, new_state)``."""
        raise NotImplementedError


class KVModel(Model):
    """Oracle for :class:`repro.apps.kv.KVStore` (per-key partitioned)."""

    name = "kv"
    readonly_verbs = frozenset({"get", "contains"})

    def initial(self) -> Hashable:
        return _ABSENT

    def partition_key(self, verb: str, args: tuple) -> Hashable | None:
        return args[0]

    def step(self, state, verb, args):
        if verb == "get":
            return (None if state is _ABSENT or state == list(_ABSENT)
                    else state), state
        if verb == "contains":
            return state is not _ABSENT and state != list(_ABSENT), state
        if verb == "put":
            value = args[1]
            if isinstance(value, list):
                value = tuple(value)    # state must stay hashable
            return True, value
        if verb == "delete":
            existed = state is not _ABSENT and state != list(_ABSENT)
            return existed, _ABSENT
        raise ValueError(f"KVModel cannot step {verb!r}")


class CounterModel(Model):
    """Oracle for :class:`repro.apps.counter.Counter` (single partition)."""

    name = "counter"
    readonly_verbs = frozenset({"read"})

    def initial(self) -> Hashable:
        return 0

    def step(self, state, verb, args):
        if verb == "incr":
            value = state + (args[0] if args else 1)
            return value, value
        if verb == "decr":
            value = state - (args[0] if args else 1)
            return value, value
        if verb == "read":
            return state, state
        if verb == "reset":
            return state, 0
        raise ValueError(f"CounterModel cannot step {verb!r}")


class LockModel(Model):
    """Oracle for :class:`repro.apps.locks.LockService` (per-lock-name).

    State: ``(holder, waiters)`` — ``""`` means free, ``waiters`` is the
    FIFO queue as a tuple.  ``release`` by a non-holder is the modelled
    application exception (``"!PermissionError"``).
    """

    name = "lock"
    readonly_verbs = frozenset({"holder", "queue_length"})

    def initial(self) -> Hashable:
        return ("", ())

    def partition_key(self, verb: str, args: tuple) -> Hashable | None:
        return args[0]

    def step(self, state, verb, args):
        holder, waiters = state
        if verb == "try_acquire":
            owner = args[1]
            if holder == "":
                return True, (owner, waiters)
            return holder == owner, state
        if verb == "enqueue":
            owner = args[1]
            if owner not in waiters:
                waiters = waiters + (owner,)
            return waiters.index(owner), (holder, waiters)
        if verb == "release":
            owner = args[1]
            if holder != owner:
                return "!PermissionError", state
            if waiters:
                return waiters[0], (waiters[0], waiters[1:])
            return "", ("", waiters)
        if verb == "holder":
            return holder, state
        if verb == "queue_length":
            return len(waiters), state
        raise ValueError(f"LockModel cannot step {verb!r}")


class QueueModel(Model):
    """Oracle for :class:`repro.apps.queue.WorkQueue` (single partition).

    State: ``(pending, in_flight, done, next_id)`` with ``pending`` a FIFO
    tuple of ``(id, task)``, ``in_flight`` a sorted tuple of
    ``(id, worker, task)``, and ``done`` a sorted tuple of ids.
    """

    name = "queue"
    readonly_verbs = frozenset({"depth", "stats"})

    def initial(self) -> Hashable:
        return ((), (), (), 1)

    def step(self, state, verb, args):
        pending, in_flight, done, next_id = state
        if verb == "submit":
            return next_id, (pending + ((next_id, args[0]),), in_flight,
                             done, next_id + 1)
        if verb == "take":
            if not pending:
                return None, state
            (task_id, task), rest = pending[0], pending[1:]
            flight = tuple(sorted(in_flight + ((task_id, args[0], task),)))
            return [task_id, task], (rest, flight, done, next_id)
        if verb == "ack":
            task_id = args[0]
            hit = [item for item in in_flight if item[0] == task_id]
            if not hit:
                return False, state
            flight = tuple(item for item in in_flight if item[0] != task_id)
            return True, (pending, flight, tuple(sorted(done + (task_id,))),
                          next_id)
        if verb == "depth":
            return len(pending), state
        if verb == "stats":
            return {"pending": len(pending), "in_flight": len(in_flight),
                    "done": len(done)}, state
        raise ValueError(f"QueueModel cannot step {verb!r}")


class BankModel(Model):
    """Oracle for the bank facade (:mod:`repro.simtest.bank`).

    One partition — transfers span accounts, so nothing commutes.  State
    is the sorted ``((account, balance), ...)`` tuple.  ``transfer``
    mirrors the facade's check order exactly: insufficient funds first,
    then the per-account cap, then the atomic move.  Only the blocking
    (``txn2pc``) deployment is graded against this model — the saga
    deployments expose intermediate states by design and are graded by
    the atomicity audit instead (:func:`repro.simtest.bank.grade_bank`).
    """

    name = "bank"
    readonly_verbs = frozenset({"balance", "total"})

    def initial(self) -> Hashable:
        from .bank import ACCOUNTS, INITIAL
        return tuple(sorted((account, INITIAL) for account in ACCOUNTS))

    def step(self, state, verb, args):
        from .bank import CAP
        balances = dict(state)
        if verb == "transfer":
            src, dst, amount = args
            if balances[src] < amount:
                return "insufficient", state
            if balances[dst] + amount > CAP:
                return "capped", state
            balances[src] -= amount
            balances[dst] += amount
            return "committed", tuple(sorted(balances.items()))
        if verb == "balance":
            return balances[args[0]], state
        if verb == "total":
            return sum(balances.values()), state
        raise ValueError(f"BankModel cannot step {verb!r}")


#: Service name → model factory (the workload and checker share this).
MODELS: dict[str, type[Model]] = {
    model.name: model for model in (KVModel, CounterModel, LockModel,
                                    QueueModel, BankModel)
}


class CombinedModel(Model):
    """All of a base model's partitions folded into one state.

    Sequential consistency is **not compositional** (unlike
    linearizability): per-key sub-histories can each admit a program-order-
    respecting total order while no single order serves every key at once.
    The sequential checker mode therefore searches one partition whose
    state is the whole table — ``((key_repr, sub_state), ...)``, sorted by
    key so equal tables memoize equally.
    """

    def __init__(self, base: Model):
        self.base = base
        self.name = f"combined({base.name})"
        self.readonly_verbs = base.readonly_verbs

    def initial(self) -> Hashable:
        return ()

    def partition_key(self, verb: str, args: tuple) -> Hashable | None:
        return None

    def step(self, state, verb, args):
        key = repr(self.base.partition_key(verb, args))
        table = dict(state)
        sub = table.get(key, _UNSET)
        if sub is _UNSET:
            sub = self.base.initial()
        result, new_sub = self.base.step(sub, verb, args)
        table[key] = new_sub
        return result, tuple(sorted(table.items()))


def ryw_projection(ops, client: str, model: Model) -> list:
    """One client's read-your-writes view of a checkable history.

    The client's own operations keep their order, results, and times.
    Other clients' **mutators** become optional, unconstrained ``maybe``
    ops (their effects may be observed at any point after their invoke, or
    never); other clients' **reads** move no state and are dropped.  The
    projection is then checked like any history — a violation means this
    client failed to observe *its own* acknowledged writes.
    """
    projected = []
    for op in ops:
        if op.client == client:
            projected.append(op)
        elif op.verb not in model.readonly_verbs:
            projected.append(replace(op, status="maybe", complete=None,
                                     result=None, error=None))
    return projected
