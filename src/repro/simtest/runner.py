"""The simulation-test runner: seed in, verdict out, JSON all the way.

A :class:`SimCase` is the complete, serialisable description of one run:
seed, policy, service, op/client counts, and the chaos fault list.  The
same case always produces byte-identical history JSON (the determinism
tests and the CI double-run gate hold the harness to that).

:func:`run_case` executes one case, checks the history against the
service's model, and — on a violation — minimizes the case and re-runs
the minimized form to confirm it.  :func:`run_battery` sweeps seeds ×
policies (the smoke gate).  :func:`replay` re-runs a case parsed from
JSON (the regression corpus format, see ``tests/simtest/regressions/``).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace

from ..failures.schedule import ChaosSchedule, Fault
from .checker import CheckResult, Violation, check_history
from .history import History
from .minimize import minimize_case
from .models import MODELS
from .workload import (
    AUDIT_ONLY_POLICIES,
    BANK_POLICIES,
    COLLAPSE_SLO,
    FAULT_MENUS,
    SERVICE_CYCLE,
    SHIPPED_POLICIES,
    deploy,
    drive,
    topology,
)

#: Default operation count per case (small: the checker is exponential in
#: concurrent overlap, and violations show up early under contention).
DEFAULT_OPS = 30

#: Default client (driver concurrency) count per case.
DEFAULT_CLIENTS = 3


@dataclass(frozen=True)
class SimCase:
    """One fully-specified simulation run (serialisable, replayable)."""

    seed: int
    policy: str
    service: str
    ops: int = DEFAULT_OPS
    clients: int = DEFAULT_CLIENTS
    faults: tuple[Fault, ...] = ()

    def with_faults(self, faults: tuple[Fault, ...]) -> "SimCase":
        """The same case with a different fault list (minimizer hook)."""
        return replace(self, faults=tuple(faults))

    def with_ops(self, ops: int) -> "SimCase":
        """The same case truncated to ``ops`` operations."""
        return replace(self, ops=int(ops))

    def schedule(self) -> ChaosSchedule | None:
        """The case's chaos schedule over its topology (None = fault-free)."""
        if not self.faults:
            return None
        servers, clients = topology(self.policy, self.clients)
        return ChaosSchedule(faults=self.faults,
                             node_names=tuple(servers + clients))

    def to_json(self) -> dict:
        """Marshal to a plain dict (stable keys)."""
        return {"seed": self.seed, "policy": self.policy,
                "service": self.service, "ops": self.ops,
                "clients": self.clients,
                "faults": [fault.to_json() for fault in self.faults]}

    @classmethod
    def from_json(cls, data: dict) -> "SimCase":
        """Rebuild a case from :meth:`to_json` output."""
        return cls(seed=int(data["seed"]), policy=data["policy"],
                   service=data["service"], ops=int(data["ops"]),
                   clients=int(data["clients"]),
                   faults=tuple(Fault.from_json(item)
                                for item in data.get("faults", [])))


def build_case(seed: int, policy: str, service: str | None = None,
               ops: int = DEFAULT_OPS, clients: int = DEFAULT_CLIENTS,
               chaos: bool = True) -> SimCase:
    """Derive a case from a seed: service rotation plus a sampled schedule.

    The chaos schedule is drawn from the policy's fault menu
    (:data:`~repro.simtest.workload.FAULT_MENUS`) with a generator seeded
    from ``(seed, policy, service)`` alone — no global state, so the same
    arguments always yield the same case.
    """
    if service is None:
        # The bank policies only make sense over the bank workload; every
        # other policy rotates through the ordinary services.
        if policy in BANK_POLICIES:
            service = "bank"
        else:
            service = SERVICE_CYCLE[seed % len(SERVICE_CYCLE)]
    faults: tuple[Fault, ...] = ()
    if chaos:
        servers, client_names = topology(policy, clients)
        rng = random.Random(f"repro.simtest:{seed}:{policy}:{service}")
        faults = ChaosSchedule.generate(
            rng, total_ops=ops, victims=servers,
            all_nodes=servers + client_names,
            kinds=FAULT_MENUS[policy]).faults
    return SimCase(seed=seed, policy=policy, service=service, ops=ops,
                   clients=clients, faults=faults)


@dataclass
class SimReport:
    """Everything one case run produced, JSON-ready."""

    case: SimCase
    verdict: str
    history: History
    fingerprint: str
    streams: tuple[str, ...]
    check: CheckResult
    violation: Violation | None = None
    minimized: SimCase | None = None
    confirmed: bool = False
    stats: dict = field(default_factory=dict)
    consistency: str = "linearizable"

    def to_json(self) -> dict:
        """Marshal with stable keys (dump with ``sort_keys=True``)."""
        return {
            "case": self.case.to_json(),
            "consistency": self.consistency,
            "verdict": self.verdict,
            "history": self.history.to_json(),
            "fingerprint": self.fingerprint,
            "streams": list(self.streams),
            "explored": self.check.explored,
            "capped": self.check.capped,
            "partitions": self.check.partitions,
            "violation": (None if self.violation is None
                          else self.violation.to_json()),
            "minimized": (None if self.minimized is None
                          else self.minimized.to_json()),
            "confirmed": self.confirmed,
            "stats": self.stats,
        }


def execute(case: SimCase) -> tuple[History, object]:
    """Deploy and drive one case; returns ``(history, deployment)``.

    The deployment rides along because grading can need more than the
    history: the bank policies carry a post-run atomicity audit
    (``deployment.grade``) that inspects the healed system.
    """
    deployment = deploy(case)
    history = drive(deployment, case, case.schedule())
    return history, deployment


def _max_latency(history: History) -> float:
    """The worst completed-op latency (invoke → complete) in the history."""
    return max((op.complete - op.invoke for op in history
                if op.complete is not None), default=0.0)


def _collapse_violation(case: SimCase, history: History) -> Violation | None:
    """Convict an overload deployment whose completions blew the SLO.

    Only the policies in :data:`~repro.simtest.workload.COLLAPSE_SLO` are
    graded.  The criterion is the worst *completed* operation's latency,
    not the failure count: a shedless server under a burst still answers
    everything — eventually — so its anomaly is never a wrong value, only
    a departure time far beyond what a bounded queue permits.  The
    synthetic :class:`Violation` carries the offending op so minimized
    corpus records stay self-describing.
    """
    slo = COLLAPSE_SLO.get(case.policy)
    if slo is None:
        return None
    worst = None
    for op in history:
        if op.complete is None:
            continue
        if worst is None or (op.complete - op.invoke
                             > worst.complete - worst.invoke):
            worst = op
    if worst is None or worst.complete - worst.invoke <= slo:
        return None
    return Violation(partition="overload-collapse", ops=[worst.to_json()],
                     longest_prefix=-1)


def _violates(case: SimCase, max_nodes: int,
              consistency: str = "linearizable") -> bool:
    history, deployment = execute(case)
    if _collapse_violation(case, history) is not None:
        return True
    if deployment.grade is not None and deployment.grade() is not None:
        return True
    if case.policy in AUDIT_ONLY_POLICIES:
        return False
    model = MODELS[case.service]()
    return check_history(history, model, max_nodes,
                         consistency=consistency).verdict == "violation"


def run_case(case: SimCase, minimize: bool = True,
             max_nodes: int | None = None,
             consistency: str = "linearizable") -> SimReport:
    """Run one case end-to-end: execute, check, minimize, confirm.

    ``consistency`` picks the checker mode the verdict is graded against
    (:data:`~repro.simtest.checker.CONSISTENCY_MODES`).
    """
    from .checker import DEFAULT_MAX_NODES
    budget = max_nodes if max_nodes is not None else DEFAULT_MAX_NODES
    history, deployment = execute(case)
    system = deployment.system
    if case.policy in AUDIT_ONLY_POLICIES:
        # Sagas expose intermediate states by contract; their verdict is
        # the atomicity audit alone (see AUDIT_ONLY_POLICIES).
        check = CheckResult(True)
    else:
        model = MODELS[case.service]()
        check = check_history(history, model, budget,
                              consistency=consistency)
    # The collapse SLO and the atomicity audit compose with the
    # consistency verdict: a checker conviction wins (it names the
    # stronger anomaly), else an overload deployment whose completions
    # blew the latency bound — or a bank deployment that failed the
    # completes-or-compensates audit — is convicted too.
    verdict, violation = check.verdict, check.violation
    if verdict == "ok":
        collapse = _collapse_violation(case, history)
        if collapse is not None:
            verdict, violation = "violation", collapse
    if verdict == "ok" and deployment.grade is not None:
        atomicity = deployment.grade()
        if atomicity is not None:
            verdict, violation = "violation", atomicity
    rpc = system.rpc.stats if system.rpc is not None else {}
    report = SimReport(
        case=case, verdict=verdict, history=history,
        consistency=consistency,
        fingerprint=system.trace.fingerprint(),
        streams=system.seeds.streams_used(), check=check,
        violation=violation,
        stats={"ops": len(history),
               "ok": sum(1 for op in history if op.status == "ok"),
               "maybe": sum(1 for op in history if op.status == "maybe"),
               "fail": sum(1 for op in history if op.status == "fail"),
               "max_op_latency": round(_max_latency(history), 9),
               "rpc_calls": rpc.get("calls", 0),
               "rpc_retries": rpc.get("retries", 0),
               "rpc_timeouts": rpc.get("timeouts", 0)})
    if verdict == "violation" and minimize:
        minimized = minimize_case(
            case, lambda c: _violates(c, budget, consistency))
        report.minimized = minimized
        report.confirmed = _violates(minimized, budget, consistency)
    return report


def run_battery(seeds, policies=SHIPPED_POLICIES, service: str | None = None,
                ops: int = DEFAULT_OPS, clients: int = DEFAULT_CLIENTS,
                minimize: bool = False,
                max_nodes: int | None = None,
                consistency: str = "linearizable") -> dict:
    """Sweep seeds × policies; returns a JSON-ready summary.

    ``violations`` carries one entry per convicted case (with the
    minimized reproduction when ``minimize`` is set); ``unknown`` lists
    cases whose checker search hit its budget — both empty on a clean run.
    """
    summary: dict = {"cases": 0, "violations": [], "unknown": [],
                     "consistency": consistency, "per_policy": {}}
    for policy in policies:
        counts = {"cases": 0, "ok": 0}
        for seed in seeds:
            case = build_case(seed, policy, service=service, ops=ops,
                              clients=clients)
            report = run_case(case, minimize=minimize, max_nodes=max_nodes,
                              consistency=consistency)
            summary["cases"] += 1
            counts["cases"] += 1
            if report.verdict == "ok":
                counts["ok"] += 1
            elif report.verdict == "violation":
                entry = {"case": case.to_json(),
                         "violation": report.violation.to_json()}
                if report.minimized is not None:
                    entry["minimized"] = report.minimized.to_json()
                    entry["confirmed"] = report.confirmed
                summary["violations"].append(entry)
            else:
                summary["unknown"].append(case.to_json())
        summary["per_policy"][policy] = counts
    return summary


def replay(data: dict, minimize: bool = False,
           max_nodes: int | None = None,
           consistency: str | None = None) -> SimReport:
    """Re-run a case parsed from JSON (the regression-corpus entry point).

    ``data`` is either a bare case (:meth:`SimCase.to_json`) or a corpus
    record ``{"case": {...}, "expect": "ok" | "violation", ...}``; the
    caller compares ``report.verdict`` against its expectation.  The
    record may pin a ``"consistency"`` mode (a corpus entry can grade a
    policy against its actual, weaker contract); an explicit
    ``consistency`` argument overrides it.
    """
    case = SimCase.from_json(data.get("case", data))
    if consistency is None:
        consistency = data.get("consistency", "linearizable")
    return run_case(case, minimize=minimize, max_nodes=max_nodes,
                    consistency=consistency)


def report_json(report: SimReport) -> str:
    """The byte-stable JSON form of a report (the CLI's ``--json``)."""
    return json.dumps(report.to_json(), indent=2, sort_keys=True)
