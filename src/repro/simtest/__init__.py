"""Deterministic simulation testing: sim-chaos with a linearizability oracle.

FoundationDB-style deterministic simulation meets a Jepsen-style checker:

* :mod:`repro.simtest.history` — operation histories (invoke/complete
  intervals in virtual time, ok/maybe/fail status, canonical results);
* :mod:`repro.simtest.models` — sequential oracles for the
  :mod:`repro.apps` services (KV, counter, lock, work queue);
* :mod:`repro.simtest.checker` — a Wing–Gong linearizability checker with
  per-key partitioning, memoized state search, and "maybe happened"
  timeout semantics;
* :mod:`repro.simtest.workload` — seeded multi-client workloads driven
  against services deployed under every shipped proxy policy (plus the
  deliberately broken ``dirtycache`` policy the harness must catch);
* :mod:`repro.simtest.minimize` — greedy shrinking of a violating case
  (drop faults, truncate ops) to a minimal replayable reproduction;
* :mod:`repro.simtest.runner` — the case runner and battery: seed in,
  verdict out, JSON all the way down.

Everything is a pure function of the seed: same seed, byte-identical
history JSON — which is what makes a violating seed a *regression test*
(see ``tests/simtest/regressions/``).
"""

from .checker import CheckResult, check_history
from .history import History, Op, canonical
from .models import MODELS, Model
from .minimize import minimize_case
from .runner import SimCase, SimReport, build_case, run_battery, run_case

__all__ = [
    "CheckResult", "History", "MODELS", "Model", "Op", "SimCase",
    "SimReport", "build_case", "canonical", "check_history",
    "minimize_case", "run_battery", "run_case",
]
