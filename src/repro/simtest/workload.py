"""Seeded multi-client workloads against policy-proxied services.

This module owns everything between "a :class:`~repro.simtest.runner.
SimCase` exists" and "a :class:`~repro.simtest.history.History` exists":

* **topology** — one or three server nodes (``s0``…) depending on the
  policy, plus N client nodes (``c0``…), one context each;
* **deployment** — the case's service exported under the case's policy,
  one bound proxy per client;
* **fault menus** — the fault kinds each policy's *consistency contract*
  tolerates (see :data:`FAULT_MENUS`);
* **the driver** — a min-clock scheduler: every step runs the client whose
  virtual clock is furthest behind, which makes the Python execution order
  a real-time-respecting linearization witness (if op X completed before
  op Y was invoked in virtual time, X was necessarily driven first);
* **classification** — each outcome lands in the history as ``ok``,
  ``maybe``, or ``fail`` per the rules of :mod:`repro.simtest.history`;
* **the ``dirtycache``, ``underquorum`` and ``splitbrain`` canaries** — a
  caching proxy with the coherence machinery removed, a replica group
  deployed with ``R + W <= N``, and an election-mode group whose proxies
  each crown their own leader *without collecting votes*.  All three are
  deliberately broken and the harness must convict them: if the checker
  ever stops flagging one, the harness — not the library — has the bug.

Fault menus as consistency contracts
------------------------------------

Not every shipped policy is linearizable under arbitrary faults, *by
design*, and the menu documents each contract:

* ``stub`` and ``resilient`` (no replicas, ``stale_reads`` off) forward
  every call and tolerate the full menu — crash, partition, loss burst,
  latency spike.
* ``caching`` tolerates ``(crash, latency)``: its invalidations are
  one-way messages, so a loss burst or partition can silently drop one and
  leave a cache permanently stale (invalidation-mode TTL is ∞) — a
  documented freshness trade, not a bug.
* ``replicated`` runs in versioned quorum mode here (``W=2, R=2`` over
  three replicas, so ``R + W > N``) **with leader election** and
  tolerates the full menu *plus* the ``primary_crash`` and
  ``primary_partition`` kinds aimed squarely at the current primary:
  term-fenced leader-sequenced versions, quorum reads with read-repair,
  and lease-bounded elections keep every exposed value stable and bring
  writes back within the lease TTL + election time (see
  ``repro.core.policies.replicating``).  The driver additionally pumps
  one anti-entropy sweep every :data:`MAINT_EVERY` operations, so
  restarted replicas catch up off the read path.
* ``underquorum`` is the quorum deployment with ``W=1, R=1`` —
  ``R + W <= N``, so a partitioned replica can serve stale reads the
  moment the read rotation lands on it.  It runs the full menu *expecting
  conviction* (the quorum-overlap counterpart of ``dirtycache``).
* ``splitbrain`` is the election deployment with the vote-collection
  step deleted: every client's proxy unilaterally announces its own
  favourite replica as the term-2 leader, so two-plus leaders of the
  *same term* accept writes concurrently.  Under loss or partition their
  logs silently diverge at equal ``(term, version)`` pairs — the exact
  anomaly one-vote-per-term forbids — and the checker must convict it.
* ``composite`` (caching over replicated) still deploys its replication
  layer in legacy write-all mode — quorum versioning is configuration
  opt-in — so its menu stays the intersection of a coherent cache and
  write-all replication: ``(latency,)``.
* ``sharded`` partitions the service over three shard contexts behind a
  consistent-hash ring and tolerates the full menu: each key lives on
  exactly one shard, so a shard outage fails that key's calls cleanly
  (``maybe``/``fail``) without exposing stale state, and epoch fencing
  turns every mid-rebalance misroute into a redirect.  The driver pumps
  one :meth:`~repro.core.policies.sharding.ShardedProxy.proxy_rebalance`
  sweep every :data:`MAINT_EVERY` operations, so arcs genuinely move
  under traffic.
* ``staleshard`` is the sharded deployment with the ring-maintenance
  loop severed from routing: the proxy snapshots the bootstrap ring on
  first use, routes by that frozen copy forever, and stamps a spoofed
  far-future epoch on every envelope so the fence never corrects it.
  Once the rebalance pump moves an arc, the frozen ring points at the
  *old* owner — whose handoff discarded the moved keys — and reads go
  stale (or writes land where nobody looks).  The checker must convict
  it; it is the ring-epoch counterpart of ``dirtycache``.
* ``admitted`` is the stub deployment with the full admission stack
  installed on its server node (bounded run queue + token bucket) and
  the ``overload`` fault kind added to its menu: burst faults slam
  background jobs into the node, the stack sheds them (and sometimes the
  workload's own calls — an ``Overloaded`` rejection is a clean ``fail``:
  shed calls are definitely never executed), and the grading adds a
  **collapse SLO** (:data:`COLLAPSE_SLO`): no completed operation may
  take longer than the bound, because a bounded queue caps the worst
  admitted wait.
* ``shedless`` is the same deployment with the *unbounded* queue — every
  burst job admits, the backlog is whatever arrives, and the completed
  operations behind a burst wait the whole backlog out.  It runs
  ``overload``-only schedules *expecting conviction* by the collapse
  SLO: the congestion-collapse counterpart of ``dirtycache``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import make_system
from ..core.export import get_space
from ..core.factory import register_policy
from ..core.policies.caching import CachingProxy
from ..core.policies.replicating import ReplicatedProxy, replicate
from ..core.policies.sharding import ShardedProxy, shard
from ..wire import shards
from ..apps.counter import Counter
from ..apps.kv import KVStore
from ..apps.locks import LockService
from ..apps.queue import WorkQueue
from ..failures.schedule import (
    FAULT_KINDS,
    PRIMARY_FAULT_KINDS,
    ChaosSchedule,
)
from ..iface.interface import Interface
from ..kernel.admission import install_admission
from ..kernel.errors import (
    CircuitOpen,
    DistributionError,
    Overloaded,
    ReproError,
)
from ..kernel.network import LinkSpec
from ..rpc.protocol import RemoteError
from ..transactions import VersionedKVStore
from .bank import (
    ACCOUNTS,
    BANK_FACADES,
    BANK_POLICIES,
    INITIAL,
    grade_bank,
    store_index,
)
from .history import History, canonical
from .models import MODELS, Model

#: The shipped policies the battery must prove clean.
SHIPPED_POLICIES = ("stub", "caching", "replicated", "resilient",
                    "composite", "sharded", "admitted", "regional",
                    "txn2pc", "saga")

#: Per-policy fault menus (the consistency contracts — module docstring).
FAULT_MENUS: dict[str, tuple[str, ...]] = {
    "stub": FAULT_KINDS,
    "resilient": FAULT_KINDS,
    "caching": ("crash", "latency"),
    "dirtycache": ("crash", "latency"),
    "replicated": FAULT_KINDS + PRIMARY_FAULT_KINDS,
    "underquorum": FAULT_KINDS,
    "splitbrain": ("partition", "loss"),
    "composite": ("latency",),
    "sharded": FAULT_KINDS,
    "staleshard": FAULT_KINDS,
    "admitted": FAULT_KINDS + ("overload",),
    "shedless": ("overload",),
    "regional": FAULT_KINDS,
    "txn2pc": FAULT_KINDS,
    "saga": FAULT_KINDS,
    "sagaskip": ("partition", "loss"),
}

#: Policies graded by the bank atomicity audit *instead of* the
#: linearizability checker: an honest saga exposes intermediate states by
#: design (debit visible before credit), so a strict atomic-transfer model
#: would convict it — its contract is completes-or-compensates, which is
#: exactly what :func:`repro.simtest.bank.grade_bank` demands.  ``txn2pc``
#: is *not* here: blocking 2PC never exposes a half-applied state (wedged
#: keys refuse reads), so it is held to full linearizability on top of
#: the audit.
AUDIT_ONLY_POLICIES = ("saga", "sagaskip")

#: WAN latency multiplier for the ``regional`` deployment's two regions
#: (modest next to E21's 20× so fault-menu retries stay inside budgets).
_REGION_WAN_FACTOR = 4.0

#: Admission stacks the overload deployments install on their server node.
#: ``admitted`` bounds the run queue at 8 slots (worst admitted wait:
#: 8 × 20 ms = 0.16 s) with a 200/s, burst-16 token bucket in front;
#: ``shedless`` keeps the same per-call service time but an unbounded
#: queue — every burst job admits and the backlog is the fault's size.
_ADMISSION_CONFIGS: dict[str, dict] = {
    "admitted": {"capacity": 8, "service_time": 0.02,
                 "rate": 200.0, "burst": 16.0},
    "shedless": {"capacity": None, "service_time": 0.02},
}

#: Collapse SLO per overload deployment: no *completed* operation may take
#: longer than this (virtual seconds, invoke → complete).  A bounded queue
#: caps the worst admitted wait far under the bound; an unbounded one lets
#: a single burst push completions seconds out — that asymmetry is the
#: conviction.
COLLAPSE_SLO: dict[str, float] = {"admitted": 1.0, "shedless": 1.0}

#: Policies deployed as a three-replica group (everything else: one server).
_REPLICA_POLICIES = ("replicated", "underquorum", "splitbrain", "composite",
                     "regional")

#: Policies deployed as a three-shard consistent-hash group.
_SHARD_POLICIES = ("sharded", "staleshard")

#: Quorum deployments per harness policy label: ``(write_quorum,
#: read_quorum, read_policy)`` over the three replicas.  ``replicated``
#: overlaps (R + W > N: every read intersects every acknowledged write);
#: ``underquorum`` deliberately does not, and rotates its reads so the
#: battery actually lands on a stale copy.  ``splitbrain`` overlaps too —
#: its bug is upstream of the quorum, in the election — and rotates reads
#: so diverged copies actually get exposed.
_QUORUM_CONFIGS = {
    "replicated": (2, 2, "nearest"),
    "underquorum": (1, 1, "roundrobin"),
    "splitbrain": (2, 2, "roundrobin"),
    # R + W > N with the region-aware read order: reads make first contact
    # in-region, the quorum overlap keeps them linearizable anyway.
    "regional": (2, 2, "regional"),
}

#: The driver runs one anti-entropy sweep every this many operations for
#: the election-mode ``replicated`` deployment (never for ``splitbrain`` —
#: background repair would paper over the very divergence the canary must
#: exhibit).
MAINT_EVERY = 8

#: Service rotation for cases that don't pin one (seed-indexed).
SERVICE_CYCLE = ("kv", "counter", "lock", "queue")

_SERVICE_CLASSES = {"kv": KVStore, "counter": Counter, "lock": LockService,
                    "queue": WorkQueue}

#: Keys / lock names the generators draw from (small on purpose: contention
#: is where linearizability violations live).
_KV_KEYS = ("k0", "k1", "k2", "k3")
_LOCK_NAMES = ("l0", "l1")


def _shard_ring() -> list:
    """The ring the shard deployments use: one point per workload key.

    A generated ring would scatter this tiny key set arbitrarily (with 4
    hot keys it usually lands them all on one shard and the rebalance
    sweep moves empty arcs for epochs on end).  Placing a ring point *at*
    each key's hash makes every key the top of its own arc: the keys
    spread round-robin over the three shards, and each maintenance sweep
    (epoch ``e`` moves ring point ``e % len(ring)``) hands off exactly
    one key's data — so the battery genuinely exercises mid-traffic arc
    transfer, fencing, and (for the canary) staleness on every run.
    """
    labels = _KV_KEYS + _LOCK_NAMES + (shards.WHOLE_OBJECT,)
    points = sorted(shards.stable_hash(label) for label in labels)
    return [[point, index % 3] for index, point in enumerate(points)]


@register_policy
class DirtyCachingProxy(CachingProxy):
    """A caching proxy with the coherence machinery *removed*.

    No server-side invalidation control is installed, no callback is
    registered, and entries never expire — so any write by one client
    leaves every other client's cache permanently stale.  This is the
    harness's canary: the linearizability checker must convict it.
    """

    policy_name = "dirtycache"

    def proxy_install(self) -> None:
        pass    # never register for invalidations

    def _effective_ttl(self) -> float | None:
        return None    # cache forever

    @classmethod
    def on_export(cls, space, entry) -> None:
        pass    # no server-side coherence either


@register_policy
class SplitBrainProxy(ReplicatedProxy):
    """An election-mode replicated proxy with the vote step *removed*.

    Before its first operation, each client's proxy unilaterally announces
    a per-client favourite replica as the leader of term 2 — no status
    round, no votes, no candidate sync.  Different clients crown different
    favourites, and because every favourite is still at the bootstrap term
    1, each accepts its own coronation: two-plus leaders of the **same**
    term now assign versions independently.  A lost apply then leaves two
    replicas holding different entries at equal ``(term, version)`` pairs,
    which the idempotent-apply check cannot tell apart — precisely the
    split brain that one-vote-per-term makes impossible in the real
    protocol.  The checker must convict this canary.
    """

    policy_name = "splitbrain"

    def invoke(self, verb: str, args: tuple, kwargs: dict):
        if not getattr(self, "_usurped", False):
            self._usurped = True
            self._usurp()
        return super().invoke(verb, args, kwargs)

    def _usurp(self) -> None:
        """Crown this client's favourite replica, collecting no votes."""
        replicas = self._resolve_replicas()
        if not replicas:
            return
        digits = [ch for ch in self.proxy_context.context_id
                  if ch.isdigit()]
        favourite = int(digits[0]) % len(replicas) if digits else 0
        try:
            self._control_call(favourite, ["announce", 2, favourite], ())
        except DistributionError:
            pass
        self._term, self._leader = 2, favourite

    def _run_election(self, replicas: list) -> None:
        # The bug, part two: instead of electing, re-assert the favourite.
        try:
            self._control_call(self._leader,
                               ["announce", self._term, self._leader], ())
        except DistributionError:
            pass
        raise DistributionError("splitbrain canary never elects")


@register_policy
class StaleShardProxy(ShardedProxy):
    """A sharded proxy whose routing never learns the ring moved.

    Two overrides sever routing from ring maintenance: the routing state
    is a **frozen copy** of the first map the proxy ever resolves, and
    every envelope is stamped with a far-future epoch so the shard-side
    fence (which only refuses *older* epochs) waves the misroute
    through.  The honest machinery is otherwise untouched — the
    maintenance pump's ``proxy_rebalance`` genuinely moves arcs and the
    live state adopts every new map — so after the first sweep the
    frozen ring names owners whose handoffs already discarded the moved
    keys.  Reads then return the new owner's data *absence* (or writes
    land where no honest reader looks): a linearizability violation
    manufactured purely from stale routing, with no fault injection
    needed.  The checker must convict this canary.
    """

    policy_name = "staleshard"

    def _routing_state(self, state):
        frozen = getattr(self, "_frozen", None)
        if frozen is None:
            frozen = shards.ShardState(state.index, state.epoch,
                                       state.ring, state.shards)
            self._frozen = frozen
        return frozen

    def _route_epoch(self, route):
        return 10 ** 9    # never fenced: the shard believes we are newer


def topology(policy: str, clients: int) -> tuple[list[str], list[str]]:
    """Node names for a case: ``(server_names, client_names)``.

    Replica/shard groups get three servers; so do the bank deployments
    (``s0`` the facade, ``s1``/``s2`` the two stores — the fault menu
    aims at all three, so partitions genuinely strand a participant).
    """
    multi = _REPLICA_POLICIES + _SHARD_POLICIES + BANK_POLICIES
    servers = 3 if policy in multi else 1
    return ([f"s{i}" for i in range(servers)],
            [f"c{i}" for i in range(clients)])


@dataclass
class Deployment:
    """A built system, ready to drive: one bound proxy per client."""

    system: object
    interface: Interface
    model: Model
    clients: list    # (name, context, proxy) triples, driver order
    maintenance: object = None    # background sweep thunk, or None
    grade: object = None    # post-run invariant hook -> Violation | None


def deploy(case) -> Deployment:
    """Build the case's system and deployment (no faults active yet)."""
    if case.policy not in FAULT_MENUS:
        raise ValueError(f"unknown policy {case.policy!r}")
    if (case.service == "bank") != (case.policy in BANK_POLICIES):
        raise ValueError(
            f"service {case.service!r} does not fit policy {case.policy!r}: "
            f"the bank workload and the bank policies go together")
    system = make_system(seed=case.seed)
    server_names, client_names = topology(case.policy, case.clients)
    server_ctxs = [system.add_node(name).create_context("main")
                   for name in server_names]
    client_ctxs = [system.add_node(name).create_context("main")
                   for name in client_names]
    if case.policy == "regional":
        _regionalise(system, server_ctxs, client_ctxs)
    if case.policy in BANK_POLICIES:
        return _deploy_bank(case, system, server_ctxs, client_ctxs,
                            client_names)
    service_cls = _SERVICE_CLASSES.get(case.service)
    if service_cls is None:
        raise ValueError(f"unknown service {case.service!r}")
    interface = Interface.of(service_cls)
    ref = _export(case.policy, server_ctxs, service_cls, interface,
                  case.service)
    clients = [(name, ctx, get_space(ctx).bind_ref(ref, handshake=True))
               for name, ctx in zip(client_names, client_ctxs)]
    admission = _ADMISSION_CONFIGS.get(case.policy)
    if admission is not None:
        # Install *after* the bind handshakes: deployment traffic is not
        # offered load and must not spend tokens or queue slots.
        install_admission(server_ctxs[0].node, **admission)
    maintenance = None
    if case.policy == "replicated":
        # The first client's proxy doubles as the anti-entropy pump (the
        # sweep costs that client virtual time, which the min-clock driver
        # absorbs deterministically).  splitbrain never sweeps: background
        # repair would heal the divergence the canary must exhibit.
        maintenance = clients[0][2].proxy_anti_entropy
    elif case.policy in _SHARD_POLICIES:
        # Same pump slot, rebalance sweep: arcs move under live traffic.
        # The staleshard canary's pump is the *honest* inherited
        # rebalance — only its routing is frozen — so the ring genuinely
        # changes underneath the frozen copy it routes by.
        maintenance = clients[0][2].proxy_rebalance
    return Deployment(system=system, interface=interface,
                      model=MODELS[case.service](), clients=clients,
                      maintenance=maintenance)


def _regionalise(system, server_ctxs: list, client_ctxs: list) -> None:
    """Split the case's nodes into two regions with WAN links between.

    ``s0``/``s1`` and the even clients are *east* (so the home region
    holds a write quorum by itself); ``s2`` and the odd clients are
    *west* — a west client's region-aware reads stay on ``s2`` while its
    writes pay the WAN to the east primary.
    """
    east = server_ctxs[:2] + client_ctxs[0::2]
    west = server_ctxs[2:] + client_ctxs[1::2]
    for ctx in east:
        ctx.node.region = "east"
    for ctx in west:
        ctx.node.region = "west"
    costs = system.costs
    wan = LinkSpec(latency=costs.remote_latency * _REGION_WAN_FACTOR,
                   byte_cost=costs.byte_cost)
    for ctx_a in east:
        for ctx_b in west:
            system.network.set_link(ctx_a.node.name, ctx_b.node.name, wan)


def _deploy_bank(case, system, server_ctxs: list, client_ctxs: list,
                 client_names: list) -> Deployment:
    """The bank deployment: facade on ``s0``, one store each on ``s1``/``s2``.

    The stores are exported as plain stubs and seeded *before* any client
    traffic (direct object writes: no virtual time, no wire bytes); the
    facade binds store proxies in its own context, so every hop it takes
    on a client's behalf is charged honestly.  The returned deployment
    carries the :func:`~repro.simtest.bank.grade_bank` audit as its
    ``grade`` hook and a fault-guarded ``settle`` pump as maintenance.
    """
    facade_ctx, store_ctxs = server_ctxs[0], server_ctxs[1:]
    store_interface = Interface.of(VersionedKVStore)
    store_refs = []
    for ctx in store_ctxs:
        store = VersionedKVStore()
        store_refs.append(get_space(ctx).export(
            store, interface=store_interface, policy="stub"))
        for account in ACCOUNTS:
            if store_ctxs[store_index(account)] is ctx:
                store.write(account, INITIAL)
    store_proxies = [get_space(facade_ctx).bind_ref(ref, handshake=True)
                     for ref in store_refs]
    facade_cls = BANK_FACADES[case.policy]
    facade = facade_cls(store_proxies)
    interface = Interface.of(facade_cls)
    facade_ref = get_space(facade_ctx).export(facade, interface=interface,
                                              policy="stub")
    clients = [(name, ctx, get_space(ctx).bind_ref(facade_ref,
                                                   handshake=True))
               for name, ctx in zip(client_names, client_ctxs)]

    def pump():
        # The settle pump rides the first client like the anti-entropy
        # sweep; a pump that lands mid-partition must not kill the driver.
        try:
            clients[0][2].invoke("settle", (), {})
        except DistributionError:
            pass

    return Deployment(system=system, interface=interface,
                      model=MODELS["bank"](), clients=clients,
                      maintenance=pump,
                      grade=lambda: grade_bank(facade, clients))


def _export(policy: str, server_ctxs: list, service_cls, interface,
            service: str):
    primary = server_ctxs[0]
    if policy in _SHARD_POLICIES:
        # Keyed services shard per key (argument 0, like the replicated
        # version_key convention); the single-state services shard as one
        # unit — the ring still fences and rebalances, it just moves the
        # whole object's arc set between owners.
        shard_key = 0 if service in ("kv", "lock") else None
        return shard(server_ctxs, service_cls, interface=interface,
                     shard_key=shard_key, ring=_shard_ring(),
                     policy=policy)
    quorum = _QUORUM_CONFIGS.get(policy)
    if quorum is not None:
        write_quorum, read_quorum, read_policy = quorum
        # Keyed services version per key (their model partitions the same
        # way); the single-state services serialise under one object log.
        version_key = "arg0" if service in ("kv", "lock") else "object"
        extra = {}
        if policy == "replicated":
            extra = {"elect": True}
        elif policy == "regional":
            # Fixed primary in the home region; the config carries each
            # replica's region label so the proxy can rank by it.
            extra = {"policy": "regional",
                     "extra_config": {
                         "regions": [ctx.node.region
                                     for ctx in server_ctxs]}}
        elif policy == "splitbrain":
            # A practically-infinite lease keeps the legitimate election
            # machinery quiet; only the canary's vote-free coronations
            # change leadership.
            extra = {"elect": True, "lease_ttl": 1e9,
                     "policy": "splitbrain"}
        return replicate(server_ctxs, service_cls, interface=interface,
                         read_policy=read_policy, write_quorum=write_quorum,
                         read_quorum=read_quorum, version_key=version_key,
                         **extra)
    if policy in _REPLICA_POLICIES:
        extra = ["caching"] if policy == "composite" else None
        return replicate(server_ctxs, service_cls, interface=interface,
                         read_policy="nearest", extra_layers=extra)
    obj = service_cls()
    if policy in ("stub", "admitted", "shedless"):
        # The overload deployments are plain stub exports: the whole
        # admission stack is node-side (installed in deploy()), invisible
        # to the proxy policy — the paper's encapsulation claim on display.
        return get_space(primary).export(obj, interface=interface,
                                         policy="stub")
    if policy == "caching":
        return get_space(primary).export(obj, interface=interface,
                                         policy="caching",
                                         config={"invalidation": True})
    if policy == "dirtycache":
        return get_space(primary).export(obj, interface=interface,
                                         policy="dirtycache", config={})
    if policy == "resilient":
        return get_space(primary).export(
            obj, interface=interface, policy="resilient",
            config={"replicas": [], "stale_reads": False,
                    "retry": {"attempts": 3}})
    raise ValueError(f"unknown policy {policy!r}")


# -- op generation -------------------------------------------------------------


def _kv_op(rng, client: str, index: int) -> tuple[str, tuple]:
    key = _KV_KEYS[rng.randrange(len(_KV_KEYS))]
    r = rng.random()
    if r < 0.40:
        return "get", (key,)
    if r < 0.75:
        return "put", (key, index)    # op index: globally unique values
    if r < 0.85:
        return "delete", (key,)
    return "contains", (key,)


def _counter_op(rng, client: str, index: int) -> tuple[str, tuple]:
    r = rng.random()
    if r < 0.40:
        return "incr", (1 + rng.randrange(3),)
    if r < 0.60:
        return "decr", (1 + rng.randrange(2),)
    if r < 0.90:
        return "read", ()
    return "reset", ()


def _lock_op(rng, client: str, index: int) -> tuple[str, tuple]:
    name = _LOCK_NAMES[rng.randrange(len(_LOCK_NAMES))]
    r = rng.random()
    if r < 0.35:
        return "try_acquire", (name, client)
    if r < 0.60:
        return "release", (name, client)
    if r < 0.85:
        return "holder", (name,)
    if r < 0.95:
        return "enqueue", (name, client)
    return "queue_length", (name,)


def _queue_op(rng, client: str, index: int) -> tuple[str, tuple]:
    r = rng.random()
    if r < 0.40:
        return "submit", (f"task-{index}",)
    if r < 0.70:
        return "take", (client,)
    if r < 0.85:
        return "ack", (1 + rng.randrange(max(2, index + 1)),)
    if r < 0.95:
        return "depth", ()
    return "stats", ()


def _bank_op(rng, client: str, index: int) -> tuple[str, tuple]:
    r = rng.random()
    if r < 0.45:
        src = ACCOUNTS[rng.randrange(len(ACCOUNTS))]
        dst = ACCOUNTS[rng.randrange(len(ACCOUNTS))]
        while dst == src:
            dst = ACCOUNTS[rng.randrange(len(ACCOUNTS))]
        return "transfer", (src, dst, 1 + rng.randrange(3))
    if r < 0.85:
        return "balance", (ACCOUNTS[rng.randrange(len(ACCOUNTS))],)
    return "total", ()


_OPGENS = {"kv": _kv_op, "counter": _counter_op, "lock": _lock_op,
           "queue": _queue_op, "bank": _bank_op}


# -- the driver ----------------------------------------------------------------


def drive(deployment: Deployment, case,
          schedule: ChaosSchedule | None) -> History:
    """Run the case's workload; returns the recorded history.

    Min-clock scheduling: each step drives the client whose virtual clock
    is furthest behind (ties break on client order).  One operation runs
    to completion per step — the simulation applies effects eagerly — so
    the Python execution order is a valid linearization of the history
    whenever the policy under test is actually linearizable.
    """
    history = History()
    rng = deployment.system.seeds.stream("simtest.ops")
    opgen = _OPGENS[case.service]
    if schedule is not None:
        schedule.reset()
    try:
        for index in range(case.ops):
            if schedule is not None:
                schedule.tick(deployment.system)
            if deployment.maintenance is not None and index \
                    and index % MAINT_EVERY == 0:
                deployment.maintenance()
            name, ctx, proxy = min(deployment.clients,
                                   key=lambda c: c[1].clock.now)
            verb, args = opgen(rng, name, index)
            readonly = deployment.interface.operation(verb).readonly
            invoke = ctx.clock.now
            try:
                result = proxy.invoke(verb, tuple(args), {})
            except CircuitOpen as exc:
                # The breaker refused before any transmission: the op
                # definitely did not execute.
                history.record(client=name, verb=verb, args=list(args),
                               invoke=invoke, complete=ctx.clock.now,
                               status="fail", error=type(exc).__name__)
            except RemoteError as exc:
                # An application exception of a type the protocol cannot
                # reconstruct: the server executed the op.
                history.record(client=name, verb=verb, args=list(args),
                               invoke=invoke, complete=ctx.clock.now,
                               status="ok",
                               result=f"!{exc.remote_type}")
            except Overloaded as exc:
                # Shed at admission before any execution: unlike a lost
                # reply, the server *said so*, so even a mutator is a
                # definite "fail" — never a "maybe".
                history.record(client=name, verb=verb, args=list(args),
                               invoke=invoke, complete=ctx.clock.now,
                               status="fail", error=type(exc).__name__)
            except DistributionError as exc:
                # Lost request or lost reply — indistinguishable.  A
                # failed read cannot move state either way; a failed
                # mutator is a "maybe" with an open completion time.
                history.record(client=name, verb=verb, args=list(args),
                               invoke=invoke,
                               complete=ctx.clock.now if readonly else None,
                               status="fail" if readonly else "maybe",
                               error=type(exc).__name__)
            except ReproError:
                raise    # a harness or kernel bug, not an outcome
            except Exception as exc:
                # A reconstructed application exception (PermissionError
                # and friends): the server executed the op and raised.
                history.record(client=name, verb=verb, args=list(args),
                               invoke=invoke, complete=ctx.clock.now,
                               status="ok",
                               result=f"!{type(exc).__name__}")
            else:
                history.record(client=name, verb=verb, args=list(args),
                               invoke=invoke, complete=ctx.clock.now,
                               status="ok", result=canonical(result))
    finally:
        if schedule is not None:
            schedule.finish()
    return history
