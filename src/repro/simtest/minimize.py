"""Greedy shrinking of a violating simulation case.

Once a seed produces a linearizability violation, the raw case is noisy:
faults that played no part, operations issued after the damage was done.
:func:`minimize_case` shrinks it on two axes, both preserving the prefix
property of the deterministic driver (removing a fault or truncating the
op count never changes what the surviving prefix of operations does):

1. **fault removal** — drop one fault at a time, keep the drop whenever
   the violation survives, iterate to a fixpoint;
2. **op truncation** — repeatedly halve the operation count while the
   violation survives, then walk back up in quarter-steps to the shortest
   still-violating count the budget allows.

The procedure is deterministic (fixed iteration order, no randomness) and
budgeted: at most ``max_runs`` re-executions, so minimization cost is
bounded even for stubborn cases.
"""

from __future__ import annotations

from typing import Callable


def minimize_case(case, violates: Callable[[object], bool],
                  max_runs: int = 64):
    """Shrink ``case`` while ``violates(candidate)`` stays true.

    ``violates`` re-runs a candidate case end-to-end and reports whether
    the linearizability violation is still present.  Returns the smallest
    still-violating case found (possibly ``case`` itself).
    """
    runs = 0

    def attempt(candidate) -> bool:
        nonlocal runs
        if runs >= max_runs:
            return False
        runs += 1
        return violates(candidate)

    # Phase 1: drop faults, one at a time, to a fixpoint.
    faults = list(case.faults)
    changed = True
    while changed and faults:
        changed = False
        for index in range(len(faults)):
            candidate_faults = faults[:index] + faults[index + 1:]
            candidate = case.with_faults(tuple(candidate_faults))
            if attempt(candidate):
                faults = candidate_faults
                case = candidate
                changed = True
                break

    # Phase 2: halve the op count while the violation survives.
    ops = case.ops
    while ops > 4:
        candidate = case.with_ops(ops // 2)
        if not attempt(candidate):
            break
        ops //= 2
        case = candidate

    # Phase 3: one quarter-step refinement between the last two halvings.
    if ops > 6:
        candidate = case.with_ops((ops * 3) // 4)
        if attempt(candidate):
            case = candidate

    return case
