"""Operation histories: what each client saw, on the virtual timeline.

A :class:`History` is the harness's ground truth — one :class:`Op` per
client invocation, carrying the invoke/complete virtual-time interval and
the observed outcome.  Three statuses partition the outcomes:

``ok``
    The call returned (an application-level exception such as the lock
    service's ``PermissionError`` still counts: the server *executed* the
    operation; the result is recorded as an ``"!ExceptionName"`` marker).
``maybe``
    A mutating call failed with a distribution error after at least one
    transmission attempt — the request or its reply may have been lost, so
    the operation *may or may not* have taken effect.  The checker treats
    these as optional, with an open-ended completion time.
``fail``
    The call definitely did not execute: a breaker fast-fail
    (:class:`~repro.kernel.errors.CircuitOpen`), or a failed *read-only*
    call (which cannot affect state either way).  Excluded from checking.

Histories marshal to JSON losslessly (:meth:`History.to_json` /
:meth:`History.from_json`) with canonicalised values, so a history file is
diffable byte-for-byte between runs of the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Op statuses, in the order defined above.
STATUSES = ("ok", "maybe", "fail")


def canonical(value: Any) -> Any:
    """Normalise a value into JSON-shaped Python (the comparison domain).

    Tuples become lists, dict keys become strings (sorted), sets become
    sorted lists — so a model's native result and the service's
    over-the-wire result compare equal whenever they denote the same value.
    """
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): canonical(value[key])
                for key in sorted(value, key=str)}
    if isinstance(value, (set, frozenset)):
        return sorted((canonical(item) for item in value), key=repr)
    return value


@dataclass
class Op:
    """One client invocation on the virtual timeline.

    Attributes:
        index: global issue order (ties in invoke time break on this).
        client: issuing client's name.
        verb: operation name.
        args: positional arguments, canonicalised.
        invoke: virtual time the call was issued.
        complete: virtual time the call returned; ``None`` for ``maybe``
            ops, whose effect could land any time after ``invoke``.
        status: ``"ok"`` | ``"maybe"`` | ``"fail"``.
        result: canonical return value (``ok`` only; application
            exceptions appear as ``"!ExceptionName"`` markers).
        error: error type name (``maybe``/``fail`` only).
    """

    index: int
    client: str
    verb: str
    args: list
    invoke: float
    complete: float | None
    status: str
    result: Any = None
    error: str = ""

    def to_json(self) -> dict:
        """Marshal to a plain dict with stable keys."""
        out: dict = {"index": self.index, "client": self.client,
                     "verb": self.verb, "args": canonical(self.args),
                     "invoke": self.invoke, "complete": self.complete,
                     "status": self.status}
        if self.status == "ok":
            out["result"] = canonical(self.result)
        if self.error:
            out["error"] = self.error
        return out

    @classmethod
    def from_json(cls, data: dict) -> "Op":
        """Rebuild an op from :meth:`to_json` output."""
        return cls(index=int(data["index"]), client=data["client"],
                   verb=data["verb"], args=list(data["args"]),
                   invoke=float(data["invoke"]),
                   complete=(None if data.get("complete") is None
                             else float(data["complete"])),
                   status=data["status"], result=data.get("result"),
                   error=data.get("error", ""))


@dataclass
class History:
    """The full recorded history of one simulation run."""

    ops: list[Op] = field(default_factory=list)

    def record(self, **kwargs) -> Op:
        """Append one op (keyword form of the :class:`Op` fields)."""
        op = Op(index=len(self.ops), **kwargs)
        self.ops.append(op)
        return op

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def checkable(self) -> list[Op]:
        """The ops the checker consumes: definite-fails dropped, and failed
        reads (which cannot move state) dropped with them."""
        return [op for op in self.ops if op.status != "fail"]

    def to_json(self) -> list[dict]:
        """Marshal every op, in issue order."""
        return [op.to_json() for op in self.ops]

    @classmethod
    def from_json(cls, data: list[dict]) -> "History":
        """Rebuild a history from :meth:`to_json` output."""
        return cls(ops=[Op.from_json(item) for item in data])
