"""A Wing–Gong linearizability checker with "maybe happened" semantics.

Given a recorded :class:`~repro.simtest.history.History` and a sequential
:class:`~repro.simtest.models.Model`, decide whether some total order of
the operations (a) respects real time — an operation that completed before
another was invoked must precede it — and (b) yields each ``ok``
operation's recorded result when replayed through the model.

Algorithm (Wing & Gong 1993, with the standard refinements):

* **Per-key partitioning**: operations on disjoint ``partition_key``\\ s
  commute, so each key is checked independently.
* **Minimal-op candidates**: at each step only operations whose invoke
  time does not follow another pending operation's completion may be
  linearized next.
* **Memoization**: the search state is ``(remaining ops, model state)``;
  a configuration seen once is never re-explored (this is what keeps the
  search sub-exponential on realistic histories).
* **Maybe ops**: a mutator that failed with a distribution error has an
  open completion time (it constrains nobody) and is *optional* — the
  search may apply it at any point after its invoke, or never.  Its
  result is unconstrained.

The search is budgeted: pathological histories return verdict
``"unknown"`` rather than hanging CI (``capped=True`` on the result).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .history import History, Op, canonical
from .models import Model

#: Default cap on memoized configurations explored per partition.
DEFAULT_MAX_NODES = 200_000


@dataclass
class Violation:
    """Evidence that one partition's sub-history is not linearizable."""

    partition: str
    ops: list[dict]
    longest_prefix: int

    def to_json(self) -> dict:
        """Marshal with stable keys."""
        return {"partition": self.partition, "ops": self.ops,
                "longest_prefix": self.longest_prefix}

    @classmethod
    def from_json(cls, data: dict) -> "Violation":
        """Rebuild from :meth:`to_json` output."""
        return cls(partition=data["partition"], ops=list(data["ops"]),
                   longest_prefix=int(data["longest_prefix"]))


@dataclass
class CheckResult:
    """Outcome of one full history check."""

    ok: bool
    violation: Violation | None = None
    explored: int = 0
    capped: bool = False
    partitions: int = 0

    @property
    def verdict(self) -> str:
        """``"ok"``, ``"violation"``, or ``"unknown"`` (budget exceeded)."""
        if self.capped and self.ok:
            return "unknown"
        return "ok" if self.ok else "violation"


def check_history(history: History, model: Model,
                  max_nodes: int = DEFAULT_MAX_NODES) -> CheckResult:
    """Check a history against a model; returns a :class:`CheckResult`."""
    groups: dict[str, list[Op]] = {}
    for op in history.checkable():
        key = model.partition_key(op.verb, tuple(op.args))
        groups.setdefault(repr(key), []).append(op)
    total_explored = 0
    capped = False
    for key in sorted(groups):
        ops = sorted(groups[key], key=lambda op: (op.invoke, op.index))
        linearizable, explored, prefix = _search(ops, model, max_nodes)
        total_explored += explored
        if explored >= max_nodes:
            capped = True
        if not linearizable:
            return CheckResult(
                ok=False,
                violation=Violation(partition=key,
                                    ops=[op.to_json() for op in ops],
                                    longest_prefix=prefix),
                explored=total_explored, capped=capped,
                partitions=len(groups))
    return CheckResult(ok=True, explored=total_explored, capped=capped,
                       partitions=len(groups))


def _search(ops: list[Op], model: Model,
            max_nodes: int) -> tuple[bool, int, int]:
    """DFS over linearization orders of one partition's operations.

    Returns ``(linearizable, configurations explored, longest prefix of
    required ops ever applied)``.  When the budget is exhausted the history
    is *presumed* linearizable (the caller reports ``capped``).
    """
    required = frozenset(i for i, op in enumerate(ops)
                         if op.status == "ok")
    infinity = float("inf")
    completes = [op.complete if op.complete is not None else infinity
                 for op in ops]
    expected = [canonical(op.result) if op.status == "ok" else None
                for op in ops]
    initial = model.initial()
    if not required and all(op.status != "ok" for op in ops):
        # Nothing is required to have happened: trivially linearizable.
        return True, 0, 0

    seen: set[tuple[frozenset, object]] = set()
    explored = 0
    best_applied = 0
    # Each stack frame: (remaining index set, state, candidate iterator).
    remaining = frozenset(range(len(ops)))
    stack = [(remaining, initial, iter(_candidates(ops, completes,
                                                   remaining)))]
    seen.add((remaining, initial))
    while stack:
        remaining, state, candidates = stack[-1]
        if not (remaining & required):
            return True, explored, best_applied
        advanced = False
        for index in candidates:
            op = ops[index]
            try:
                result, new_state = model.step(state, op.verb,
                                               tuple(op.args))
            except Exception:
                continue    # the model rejects this order outright
            if op.status == "ok" and canonical(result) != expected[index]:
                continue
            new_remaining = remaining - {index}
            key = (new_remaining, new_state)
            if key in seen:
                continue
            seen.add(key)
            explored += 1
            applied = len(required) - len(new_remaining & required)
            best_applied = max(best_applied, applied)
            if explored >= max_nodes:
                return True, explored, best_applied    # presumed; capped
            stack.append((new_remaining, new_state,
                          iter(_candidates(ops, completes, new_remaining))))
            advanced = True
            break
        if not advanced:
            stack.pop()
    return False, explored, best_applied


def _candidates(ops: list[Op], completes: list[float],
                remaining: frozenset) -> list[int]:
    """Indices that may linearize next: nothing pending completed before
    their invoke."""
    if not remaining:
        return []
    horizon = min(completes[i] for i in remaining)
    return sorted(i for i in remaining if ops[i].invoke <= horizon)
