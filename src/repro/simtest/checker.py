"""A Wing–Gong linearizability checker with "maybe happened" semantics —
plus two weaker consistency modes (sequential, read-your-writes).

Given a recorded :class:`~repro.simtest.history.History` and a sequential
:class:`~repro.simtest.models.Model`, decide whether some total order of
the operations (a) respects the mode's ordering constraint and (b) yields
each ``ok`` operation's recorded result when replayed through the model.

**Consistency modes** (:data:`CONSISTENCY_MODES`):

* ``"linearizable"`` — the total order must respect *real time*: an
  operation that completed before another was invoked must precede it.
  Checked per partition key (operations on disjoint keys commute).
* ``"sequential"`` — the total order must respect each client's *program
  order* only; no real-time constraint.  Sequential consistency is not
  compositional, so this mode searches one combined partition
  (:class:`~repro.simtest.models.CombinedModel`).
* ``"read-your-writes"`` — each client, taken alone, must observe its own
  acknowledged writes: the client's projection (its ops verbatim, other
  clients' mutators as optional ``maybe`` ops, other clients' reads
  dropped — :func:`~repro.simtest.models.ryw_projection`) must be
  linearizable.  This is the contract a write-through cache actually
  offers under faults that eat invalidations.
* ``"causal"`` — each client's projection (as in RYW) must be explainable
  by a total order respecting that client's *program order* alone, with
  no real-time constraint — i.e. the client may read arbitrarily stale
  prefixes, but never a state that contradicts its own session or the
  write order it has already observed.  Like the sequential mode it is
  not compositional, so each projection searches one combined partition.
  This checker is a sound convictor for causal consistency (anything it
  flags genuinely breaks the session guarantees that causal implies —
  RYW + monotonic reads within the projection), not a complete decision
  procedure for full causal+ semantics across clients.

Algorithm (Wing & Gong 1993, with the standard refinements):

* **Per-key partitioning** (linearizable/RYW modes): operations touching
  disjoint ``partition_key``\\ s commute, so each key is checked
  independently.
* **Minimal-op candidates**: at each step only operations whose ordering
  constraint allows them next may be linearized next.
* **Memoization**: the search state is ``(remaining ops, model state)``;
  a configuration seen once is never re-explored (this is what keeps the
  search sub-exponential on realistic histories).
* **Maybe ops**: a mutator that failed with a distribution error has an
  open completion time (it constrains nobody) and is *optional* — the
  search may apply it at any point after its invoke, or never.  Its
  result is unconstrained.

The search is budgeted: pathological histories return verdict
``"unknown"`` rather than hanging CI (``capped=True`` on the result).
"""

from __future__ import annotations

from dataclasses import dataclass

from .history import History, Op, canonical
from .models import CombinedModel, Model, ryw_projection

#: Default cap on memoized configurations explored per partition.
DEFAULT_MAX_NODES = 200_000

#: The checker's consistency modes, strongest first.
CONSISTENCY_MODES = ("linearizable", "sequential", "causal",
                     "read-your-writes")


@dataclass
class Violation:
    """Evidence that one partition's sub-history breaks the checked mode."""

    partition: str
    ops: list[dict]
    longest_prefix: int

    def to_json(self) -> dict:
        """Marshal with stable keys."""
        return {"partition": self.partition, "ops": self.ops,
                "longest_prefix": self.longest_prefix}

    @classmethod
    def from_json(cls, data: dict) -> "Violation":
        """Rebuild from :meth:`to_json` output."""
        return cls(partition=data["partition"], ops=list(data["ops"]),
                   longest_prefix=int(data["longest_prefix"]))


@dataclass
class CheckResult:
    """Outcome of one full history check."""

    ok: bool
    violation: Violation | None = None
    explored: int = 0
    capped: bool = False
    partitions: int = 0

    @property
    def verdict(self) -> str:
        """``"ok"``, ``"violation"``, or ``"unknown"`` (budget exceeded)."""
        if self.capped and self.ok:
            return "unknown"
        return "ok" if self.ok else "violation"


def check_history(history: History, model: Model,
                  max_nodes: int = DEFAULT_MAX_NODES,
                  consistency: str = "linearizable") -> CheckResult:
    """Check a history against a model; returns a :class:`CheckResult`.

    ``consistency`` selects the mode (:data:`CONSISTENCY_MODES`).
    """
    if consistency not in CONSISTENCY_MODES:
        raise ValueError(f"unknown consistency mode {consistency!r}; "
                         f"known: {CONSISTENCY_MODES}")
    ops = history.checkable()
    if consistency == "linearizable":
        return _check_groups(_by_key(ops, model), model, max_nodes,
                             order="realtime")
    if consistency == "sequential":
        ordered = sorted(ops, key=lambda op: (op.invoke, op.index))
        return _check_groups({"*": ordered}, CombinedModel(model),
                             max_nodes, order="program")
    if consistency == "causal":
        return _check_causal(ops, model, max_nodes)
    return _check_ryw(ops, model, max_nodes)


def _by_key(ops: list[Op], model: Model,
            label: str = "") -> dict[str, list[Op]]:
    """Partition checkable ops by the model's key (labels prefixed)."""
    groups: dict[str, list[Op]] = {}
    for op in ops:
        key = model.partition_key(op.verb, tuple(op.args))
        groups.setdefault(label + repr(key), []).append(op)
    return groups


def _check_groups(groups: dict[str, list[Op]], model: Model, max_nodes: int,
                  order: str) -> CheckResult:
    """Run the search over each partition; first violation wins."""
    total_explored = 0
    capped = False
    for key in sorted(groups):
        ops = sorted(groups[key], key=lambda op: (op.invoke, op.index))
        admissible, explored, prefix = _search(ops, model, max_nodes, order)
        total_explored += explored
        if explored >= max_nodes:
            capped = True
        if not admissible:
            return CheckResult(
                ok=False,
                violation=Violation(partition=key,
                                    ops=[op.to_json() for op in ops],
                                    longest_prefix=prefix),
                explored=total_explored, capped=capped,
                partitions=len(groups))
    return CheckResult(ok=True, explored=total_explored, capped=capped,
                       partitions=len(groups))


def _check_ryw(ops: list[Op], model: Model, max_nodes: int) -> CheckResult:
    """Read-your-writes: each client's projection must be linearizable."""
    total_explored = 0
    capped = False
    partitions = 0
    for client in sorted({op.client for op in ops}):
        groups = _by_key(ryw_projection(ops, client, model), model,
                         label=f"{client}:")
        result = _check_groups(groups, model, max_nodes, order="realtime")
        total_explored += result.explored
        capped = capped or result.capped
        partitions += result.partitions
        if not result.ok:
            return CheckResult(ok=False, violation=result.violation,
                               explored=total_explored, capped=capped,
                               partitions=partitions)
    return CheckResult(ok=True, explored=total_explored, capped=capped,
                       partitions=partitions)


def _check_causal(ops: list[Op], model: Model,
                  max_nodes: int) -> CheckResult:
    """Causal mode: each client's projection, program order, one partition.

    The projection is the RYW one; the ordering constraint drops to
    program order (the client may observe stale prefixes), but unlike RYW
    the search runs over one *combined* partition so cross-key session
    anomalies — e.g. reading the effect of a write whose causal
    predecessor on another key is missing — still convict.
    """
    total_explored = 0
    capped = False
    partitions = 0
    for client in sorted({op.client for op in ops}):
        projected = sorted(ryw_projection(ops, client, model),
                           key=lambda op: (op.invoke, op.index))
        result = _check_groups({f"{client}:*": projected},
                               CombinedModel(model), max_nodes,
                               order="program")
        total_explored += result.explored
        capped = capped or result.capped
        partitions += result.partitions
        if not result.ok:
            return CheckResult(ok=False, violation=result.violation,
                               explored=total_explored, capped=capped,
                               partitions=partitions)
    return CheckResult(ok=True, explored=total_explored, capped=capped,
                       partitions=partitions)


def _search(ops: list[Op], model: Model, max_nodes: int,
            order: str = "realtime") -> tuple[bool, int, int]:
    """DFS over admissible total orders of one partition's operations.

    ``order`` is the mode's constraint: ``"realtime"`` (an op may go next
    only if nothing pending completed before its invoke) or ``"program"``
    (an op may go next only if no *required* earlier op of the same client
    is still pending — failed maybe-ops never block their session).

    Returns ``(admissible, configurations explored, longest prefix of
    required ops ever applied)``.  When the budget is exhausted the history
    is *presumed* admissible (the caller reports ``capped``).
    """
    required = frozenset(i for i, op in enumerate(ops)
                         if op.status == "ok")
    infinity = float("inf")
    completes = [op.complete if op.complete is not None else infinity
                 for op in ops]
    expected = [canonical(op.result) if op.status == "ok" else None
                for op in ops]
    if order == "program":
        predecessor = _required_predecessors(ops, required)

        def candidates(remaining: frozenset) -> list[int]:
            return sorted(i for i in remaining
                          if predecessor[i] is None
                          or predecessor[i] not in remaining)
    else:
        def candidates(remaining: frozenset) -> list[int]:
            return _candidates(ops, completes, remaining)

    initial = model.initial()
    if not required and all(op.status != "ok" for op in ops):
        # Nothing is required to have happened: trivially admissible.
        return True, 0, 0

    seen: set[tuple[frozenset, object]] = set()
    explored = 0
    best_applied = 0
    # Each stack frame: (remaining index set, state, candidate iterator).
    remaining = frozenset(range(len(ops)))
    stack = [(remaining, initial, iter(candidates(remaining)))]
    seen.add((remaining, initial))
    while stack:
        remaining, state, frontier = stack[-1]
        if not (remaining & required):
            return True, explored, best_applied
        advanced = False
        for index in frontier:
            op = ops[index]
            try:
                result, new_state = model.step(state, op.verb,
                                               tuple(op.args))
            except Exception:
                continue    # the model rejects this order outright
            if op.status == "ok" and canonical(result) != expected[index]:
                continue
            new_remaining = remaining - {index}
            key = (new_remaining, new_state)
            if key in seen:
                continue
            seen.add(key)
            explored += 1
            applied = len(required) - len(new_remaining & required)
            best_applied = max(best_applied, applied)
            if explored >= max_nodes:
                return True, explored, best_applied    # presumed; capped
            stack.append((new_remaining, new_state,
                          iter(candidates(new_remaining))))
            advanced = True
            break
        if not advanced:
            stack.pop()
    return False, explored, best_applied


def _candidates(ops: list[Op], completes: list[float],
                remaining: frozenset) -> list[int]:
    """Indices that may linearize next: nothing pending completed before
    their invoke."""
    if not remaining:
        return []
    horizon = min(completes[i] for i in remaining)
    return sorted(i for i in remaining if ops[i].invoke <= horizon)


def _required_predecessors(ops: list[Op],
                           required: frozenset) -> list[int | None]:
    """For each op, the nearest earlier *required* op of the same client.

    Program order per client is ``(invoke, index)``.  Chasing only the
    nearest required predecessor suffices: an applied predecessor was
    itself a candidate once, so its own required predecessors were applied
    first (induction).
    """
    last_required: dict[str, int] = {}
    predecessor: list[int | None] = [None] * len(ops)
    for position in sorted(range(len(ops)),
                           key=lambda i: (ops[i].invoke, ops[i].index)):
        client = ops[position].client
        predecessor[position] = last_required.get(client)
        if position in required:
            last_required[client] = position
    return predecessor
