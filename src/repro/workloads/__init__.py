"""Workload generation: key distributions, sessions, interleaving driver,
and open-loop arrival processes."""

from .arrivals import (
    DiurnalShape,
    OpenLoopResult,
    SpikeShape,
    merge_arrivals,
    poisson_arrivals,
    run_open_loop,
    shaped_arrivals,
)
from .distributions import (
    HotspotSampler,
    SingleKeySampler,
    UniformSampler,
    ZipfSampler,
    key_name,
    payload,
)
from .sessions import (
    OpMix,
    RunResult,
    Session,
    dsm_session,
    proxy_session,
    run_interleaved,
)

__all__ = [
    "DiurnalShape", "HotspotSampler", "OpMix", "OpenLoopResult", "RunResult",
    "Session", "SingleKeySampler", "SpikeShape", "UniformSampler",
    "ZipfSampler", "dsm_session", "key_name", "merge_arrivals", "payload",
    "poisson_arrivals", "proxy_session", "run_interleaved", "run_open_loop",
    "shaped_arrivals",
]
