"""Workload generation: key distributions, sessions, interleaving driver."""

from .distributions import (
    HotspotSampler,
    SingleKeySampler,
    UniformSampler,
    ZipfSampler,
    key_name,
    payload,
)
from .sessions import (
    OpMix,
    RunResult,
    Session,
    dsm_session,
    proxy_session,
    run_interleaved,
)

__all__ = [
    "HotspotSampler", "OpMix", "RunResult", "Session", "SingleKeySampler",
    "UniformSampler", "ZipfSampler", "dsm_session", "key_name", "payload",
    "proxy_session", "run_interleaved",
]
