"""Open-loop arrival processes: offered load decoupled from completions.

The closed-loop drivers (:func:`~repro.workloads.sessions.run_interleaved`)
can never create a backlog: each client has at most one call outstanding,
so the offered rate sags to whatever the servers sustain and overload is
unobservable.  Worse, measuring latency from the *issue* time of a client
that was itself stuck behind a slow reply hides the stall entirely — the
coordinated-omission trap.

An **open-loop** workload fixes the arrival schedule in advance: requests
arrive at seeded, rate-controlled virtual times whether or not earlier
ones finished, and every latency is measured from the *scheduled* arrival.
A drowning server therefore shows up as it should — per-op latency that
grows with the backlog — instead of as a politely reduced throughput.

Three generators (all drawing from seeded streams, so a schedule is a pure
function of its seed):

* :func:`poisson_arrivals` — homogeneous Poisson at a fixed rate,
* :class:`DiurnalShape` / :class:`SpikeShape` — time-varying rate curves,
* :func:`shaped_arrivals` — an inhomogeneous process from any rate curve,
  by thinning a Poisson process at the curve's peak rate.

:func:`run_open_loop` drives one or more client *lanes* (pools sharing an
arrival stream and an issue function) through a merged schedule, assigning
each arrival to the lane's least-advanced client — min-clock, like the
closed-loop driver, but paced by the schedule rather than the replies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from math import log
from typing import Any, Callable

from ..kernel.errors import ConfigurationError, DistributionError, Overloaded


def poisson_arrivals(rate: float, count: int, rng: random.Random,
                     start: float = 0.0) -> list[float]:
    """``count`` Poisson arrival times at ``rate`` per virtual second.

    Exponential inter-arrival gaps drawn from the seeded ``rng`` via
    inverse transform — deterministic given the stream.
    """
    if rate <= 0:
        raise ConfigurationError(f"arrival rate must be > 0, got {rate}")
    times = []
    now = start
    for _ in range(count):
        now += -log(1.0 - rng.random()) / rate
        times.append(now)
    return times


class DiurnalShape:
    """A raised-cosine day/night rate curve (one period = one "day").

    Rate swings sinusoidally between ``base_rate`` (the trough, at t=0)
    and ``peak_rate`` (the crest, half a period in).
    """

    def __init__(self, base_rate: float, peak_rate: float,
                 period: float) -> None:
        if not 0 < base_rate <= peak_rate:
            raise ConfigurationError(
                f"need 0 < base_rate <= peak_rate, got "
                f"{base_rate} / {peak_rate}")
        if period <= 0:
            raise ConfigurationError(f"period must be > 0, got {period}")
        self.base_rate = base_rate
        self.peak_rate = peak_rate
        self.period = period

    def __call__(self, t: float) -> float:
        from math import cos, pi
        swing = (self.peak_rate - self.base_rate) / 2.0
        return self.base_rate + swing * (1.0 - cos(2.0 * pi * t / self.period))


class SpikeShape:
    """A flash crowd: ``base_rate`` with a ``spike_rate`` burst window."""

    def __init__(self, base_rate: float, spike_rate: float,
                 at: float, duration: float) -> None:
        if not 0 < base_rate <= spike_rate:
            raise ConfigurationError(
                f"need 0 < base_rate <= spike_rate, got "
                f"{base_rate} / {spike_rate}")
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        self.base_rate = base_rate
        self.spike_rate = spike_rate
        self.at = at
        self.duration = duration

    def __call__(self, t: float) -> float:
        if self.at <= t < self.at + self.duration:
            return self.spike_rate
        return self.base_rate


def shaped_arrivals(shape: Callable[[float], float], peak_rate: float,
                    count: int, rng: random.Random,
                    start: float = 0.0) -> list[float]:
    """``count`` arrivals from a time-varying rate curve, by thinning.

    Candidates are generated at the constant ``peak_rate`` and each kept
    with probability ``shape(t) / peak_rate`` (Lewis–Shedler thinning), so
    ``peak_rate`` must dominate the curve everywhere.  Both draws come
    from the one seeded ``rng``, keeping the schedule deterministic.
    """
    if peak_rate <= 0:
        raise ConfigurationError(f"peak rate must be > 0, got {peak_rate}")
    times = []
    now = start
    while len(times) < count:
        now += -log(1.0 - rng.random()) / peak_rate
        rate = shape(now - start)
        if rate > peak_rate:
            raise ConfigurationError(
                f"shape rate {rate} at t={now - start:.3f} exceeds the "
                f"thinning peak {peak_rate}")
        if rng.random() < rate / peak_rate:
            times.append(now)
    return times


def merge_arrivals(streams: dict[str, list[float]]) -> list[tuple[float, str]]:
    """Interleave per-lane schedules into one ``(when, lane)`` timeline.

    Ties break on the lane name so the merged order is deterministic.
    """
    merged = [(when, lane)
              for lane, times in streams.items() for when in times]
    merged.sort()
    return merged


@dataclass
class OpenLoopResult:
    """Per-lane outcome counts and schedule-anchored latencies.

    ``latencies[i]`` is completion time minus *scheduled* arrival time for
    the i-th completed op — client queueing (a busy min-clock client
    issuing late) and server queueing both count, which is the point.
    """

    attempted: int = 0
    completed: int = 0
    shed: int = 0          #: ``Overloaded`` — refused at admission
    failed: int = 0        #: other ``DistributionError`` outcomes
    latencies: list[float] = field(default_factory=list)
    first_arrival: float | None = None
    last_done: float = 0.0

    @property
    def span(self) -> float:
        """Virtual seconds from the first scheduled arrival to the last
        client finishing (however that op ended)."""
        if self.first_arrival is None:
            return 0.0
        return self.last_done - self.first_arrival

    def goodput(self, slo: float | None = None) -> float:
        """Completions per virtual second over the lane's span — counting
        only ops within ``slo`` when one is given (a late answer is not
        *good* throughput, it's a liability that kept a slot busy)."""
        if self.span <= 0:
            return 0.0
        good = self.completed if slo is None else sum(
            1 for latency in self.latencies if latency <= slo)
        return good / self.span


def run_open_loop(lanes: dict[str, tuple[list, Callable[[Any, int], Any]]],
                  arrivals: list[tuple[float, str]],
                  ) -> dict[str, OpenLoopResult]:
    """Drive scheduled arrivals through per-lane client pools.

    ``lanes`` maps a lane name to ``(clients, issue)`` where ``clients``
    is a list of ``(name, context, slot)`` triples (``slot`` is whatever
    ``issue`` needs — typically a bound proxy) and ``issue(slot, index)``
    performs the lane's ``index``-th operation.  ``arrivals`` is the
    merged ``(when, lane)`` timeline (see :func:`merge_arrivals`; a single
    lane just tags every time with its name).

    Each arrival goes to its lane's least-advanced client (ties by name).
    An on-time client waits for the scheduled instant; a *late* client —
    still digesting an earlier reply — issues immediately, and the lost
    time lands in the op's latency, as coordinated-omission correction
    demands.  Outcomes: :class:`~repro.kernel.errors.Overloaded` counts as
    shed, other :class:`~repro.kernel.errors.DistributionError` as failed,
    anything returned as completed.
    """
    results = {lane: OpenLoopResult() for lane in lanes}
    counts = dict.fromkeys(lanes, 0)
    for when, lane in arrivals:
        clients, issue = lanes[lane]
        result = results[lane]
        name, ctx, slot = min(clients, key=lambda c: (c[1].clock.now, c[0]))
        ctx.clock.advance_to(when)
        index = counts[lane]
        counts[lane] += 1
        result.attempted += 1
        if result.first_arrival is None:
            result.first_arrival = when
        try:
            issue(slot, index)
        except Overloaded:
            result.shed += 1
        except DistributionError:
            result.failed += 1
        else:
            result.completed += 1
            result.latencies.append(ctx.clock.now - when)
        if ctx.clock.now > result.last_done:
            result.last_done = ctx.clock.now
    return results
