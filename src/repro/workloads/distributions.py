"""Key-popularity distributions for workload generation.

All samplers draw from an injected :class:`random.Random`, so workloads are
reproducible through the system seed machinery.
"""

from __future__ import annotations

import bisect
import random

from ..kernel.errors import ConfigurationError


def key_name(index: int) -> str:
    """The canonical key string for an index (stable across runs)."""
    return f"k{index:05d}"


class UniformSampler:
    """Every key equally likely."""

    def __init__(self, num_keys: int, rng: random.Random):
        if num_keys <= 0:
            raise ConfigurationError("need at least one key")
        self.num_keys = num_keys
        self.rng = rng

    def sample(self) -> str:
        """Draw one key."""
        return key_name(self.rng.randrange(self.num_keys))


class ZipfSampler:
    """Zipf(s) popularity over a fixed key universe.

    Key 0 is the most popular.  Uses an inverse-CDF table, so sampling is
    O(log n).
    """

    def __init__(self, num_keys: int, rng: random.Random, s: float = 1.1):
        if num_keys <= 0:
            raise ConfigurationError("need at least one key")
        self.num_keys = num_keys
        self.s = s
        self.rng = rng
        weights = [1.0 / (rank ** s) for rank in range(1, num_keys + 1)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf: list[float] = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)

    def sample(self) -> str:
        """Draw one key, popularity-weighted."""
        point = self.rng.random()
        index = bisect.bisect_left(self._cdf, point)
        return key_name(min(index, self.num_keys - 1))


class HotspotSampler:
    """A fraction of accesses hit a small hot set; the rest are uniform."""

    def __init__(self, num_keys: int, rng: random.Random,
                 hot_fraction: float = 0.9, hot_keys: int = 8):
        if num_keys <= 0:
            raise ConfigurationError("need at least one key")
        self.num_keys = num_keys
        self.rng = rng
        self.hot_fraction = hot_fraction
        self.hot_keys = max(1, min(hot_keys, num_keys))

    def sample(self) -> str:
        """Draw one key."""
        if self.rng.random() < self.hot_fraction:
            return key_name(self.rng.randrange(self.hot_keys))
        return key_name(self.rng.randrange(self.num_keys))


class SingleKeySampler:
    """Always the same key — maximal contention (E4's worst case)."""

    def __init__(self, index: int = 0):
        self.index = index

    def sample(self) -> str:
        """The one key."""
        return key_name(self.index)


def payload(size: int, fill: str = "x") -> str:
    """A value string of roughly ``size`` bytes."""
    return fill * max(0, size)
