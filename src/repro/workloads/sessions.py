"""Client sessions and the interleaving workload driver.

A :class:`Session` is one client activity: a context, a read function, a
write function, and an operation mix.  :func:`run_interleaved` steps many
sessions round-robin (one operation each per round), which is how concurrent
clients are modelled: their virtual clocks advance independently while
shared server resources (busy lines, caches, the DSM manager) couple them.

The read/write functions abstract over access technique — a proxy method, a
raw stub, or a DSM accessor — so the same driver powers E1, E2, E4, E5, E7
and E9.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from ..failures.injectors import CrashPlan
from ..kernel.context import Context
from ..kernel.errors import DistributionError
from ..metrics.latency import LatencyRecorder
from .distributions import payload


@dataclass
class OpMix:
    """What a session does.

    Attributes:
        read_fraction: probability an operation is a read.
        key_sampler: object with ``sample() -> str``.
        value_size: bytes of payload written by each write.
    """

    read_fraction: float
    key_sampler: Any
    value_size: int = 32


class Session:
    """One client activity issuing a stream of reads and writes."""

    def __init__(self, name: str, context: Context,
                 reader: Callable[[str], Any],
                 writer: Callable[[str, str], Any],
                 mix: OpMix, rng: random.Random):
        self.name = name
        self.context = context
        self.reader = reader
        self.writer = writer
        self.mix = mix
        self.rng = rng
        self.latencies = LatencyRecorder(name)
        self.reads = 0
        self.writes = 0
        self.failures = 0
        self._sequence = 0

    def step(self) -> bool:
        """Run one operation; returns whether it succeeded."""
        key = self.mix.key_sampler.sample()
        is_read = self.rng.random() < self.mix.read_fraction
        started = self.context.clock.now
        try:
            if is_read:
                self.reader(key)
                self.reads += 1
            else:
                self._sequence += 1
                value = payload(self.mix.value_size)
                self.writer(key, f"{value}:{self.name}:{self._sequence}")
                self.writes += 1
        except DistributionError:
            self.failures += 1
            self.latencies.record(self.context.clock.now - started)
            return False
        self.latencies.record(self.context.clock.now - started)
        return True


@dataclass
class RunResult:
    """Outcome of one :func:`run_interleaved` drive.

    Attributes:
        sessions: the driven sessions (latencies and counts inside).
        operations: total operations attempted.
        failures: operations that raised a distribution error.
        elapsed: max virtual time advance across the session clocks.
    """

    sessions: list[Session]
    operations: int = 0
    failures: int = 0
    elapsed: float = 0.0

    def all_latencies(self) -> list[float]:
        """Every sample from every session."""
        samples: list[float] = []
        for session in self.sessions:
            samples.extend(session.latencies.samples)
        return samples

    def mean_latency(self) -> float:
        """Mean over all sessions' samples (0 when empty)."""
        samples = self.all_latencies()
        return sum(samples) / len(samples) if samples else 0.0


def run_interleaved(sessions: list[Session], ops_per_session: int,
                    crash_plan: CrashPlan | None = None) -> RunResult:
    """Drive sessions concurrently for ``ops_per_session`` operations each.

    Scheduling is least-virtual-clock-first (conservative discrete-event
    order): at every step the session whose context clock is furthest
    behind issues its next operation.  This keeps server arrivals in
    near-timestamp order, so shared busy lines model *contention* rather
    than artefacts of the stepping order — important when sessions have
    very different per-operation costs (e.g. one LAN and one WAN client).

    When a crash plan is given it ticks once per operation, so outages are
    positioned deterministically within the run.
    """
    result = RunResult(sessions=list(sessions))
    if not sessions:
        return result
    started = {session.name: session.context.clock.now for session in sessions}
    remaining = {session.name: ops_per_session for session in sessions}
    by_name = {session.name: session for session in sessions}
    while any(count > 0 for count in remaining.values()):
        # Ties break by name, keeping runs deterministic.
        name = min((session.name for session in sessions
                    if remaining[session.name] > 0),
                   key=lambda n: (by_name[n].context.clock.now, n))
        session = by_name[name]
        if crash_plan is not None:
            crash_plan.tick(session.context.system)
        ok = session.step()
        remaining[name] -= 1
        result.operations += 1
        if not ok:
            result.failures += 1
    result.elapsed = max(session.context.clock.now - started[session.name]
                         for session in sessions)
    return result


def proxy_session(name: str, context: Context, proxy: Any, mix: OpMix,
                  rng: random.Random,
                  read_verb: str = "get", write_verb: str = "put") -> Session:
    """A session whose reads/writes are operations on a proxy (or object)."""
    reader = getattr(proxy, read_verb)
    writer = getattr(proxy, write_verb)
    return Session(name, context, reader, writer, mix, rng)


def dsm_session(name: str, context: Context, dsm_kv: Any, mix: OpMix,
                rng: random.Random) -> Session:
    """A session over a :class:`repro.dsm.heap.DsmKV` (context-explicit API)."""
    return Session(
        name, context,
        reader=lambda key: dsm_kv.get(context, key),
        writer=lambda key, value: dsm_kv.put(context, key, value),
        mix=mix, rng=rng)
