"""repro — a reproduction of Shapiro's proxy principle (ICDCS 1986).

A complete, simulated distributed object system in which every remote
interaction goes through a *proxy*: a local representative whose
implementation the **service** chooses.  See ``DESIGN.md`` for the system
inventory and ``EXPERIMENTS.md`` for the evaluation.

Quickstart::

    import repro

    system = repro.make_system(seed=42)
    server = system.add_node("server").create_context("main")
    client = system.add_node("client").create_context("main")
    repro.install_name_service(server)

    class Greeter(repro.Service):
        @repro.operation(readonly=True)
        def greet(self, whom):
            return f"hello, {whom}"

    repro.register(server, "greeter", Greeter())
    greeter = repro.bind(client, "greeter")     # a proxy
    assert greeter.greet("world") == "hello, world"
"""

from __future__ import annotations

from . import core  # noqa: F401  (re-exported below)
from .core import policies as _policies  # noqa: F401  registers built-ins
from .core.export import ObjectSpace, get_space
from .core.factory import Codebase, register_policy
from .core.leases import ensure_lease_service, expire_leases
from .core.policies import replicate
from .core.principle import assert_principle, audit
from .core.proxy import Proxy, is_proxy
from .core.service import Service
from .core.views import export_view, readonly_view, restrict
from .iface.interface import Interface, Operation, operation
from .kernel.context import Context
from .kernel.node import Node
from .kernel.params import DEFAULT_COSTS, CostModel
from .kernel.system import System
from .migration.mover import ensure_mover, migrate
from .persistence.manager import (
    PersistenceManager,
    crash_node,
    recover_context,
)
from .persistence.store import stable_store
from .naming.bootstrap import (
    bind,
    install_name_service,
    register,
    resolve,
    unregister,
)
from .rpc.promises import Promise, call_async, gather, pipeline_calls
from .rpc.protocol import RpcProtocol
from .rpc.transport import Transport
from .wire.refs import ObjectRef

__version__ = "1.0.0"

__all__ = [
    "Codebase", "Context", "CostModel", "DEFAULT_COSTS", "Interface", "Node",
    "ObjectRef", "ObjectSpace", "Operation", "PersistenceManager", "Promise",
    "Proxy", "RpcProtocol", "Service", "System", "Transport",
    "assert_principle", "audit", "bind", "call_async", "crash_node",
    "ensure_lease_service", "ensure_mover", "expire_leases", "export",
    "export_view", "gather", "get_space", "install_name_service", "is_proxy",
    "make_system", "migrate", "operation", "pipeline_calls", "readonly_view",
    "recover_context", "register", "register_policy", "replicate",
    "resolve", "restrict", "stable_store", "unregister",
]


def make_system(seed: int = 0, costs: CostModel | None = None) -> System:
    """Create a fully wired simulated distributed system.

    Wires the kernel, the transport, the RPC protocol, and the codebase
    (with every built-in proxy policy registered).  Add nodes and contexts,
    install a name service, and go.
    """
    system = System(seed=seed, costs=costs)
    transport = Transport(system)
    RpcProtocol(system, transport)
    Codebase(system)
    return system


def export(context: Context, obj, **kwargs) -> ObjectRef:
    """Export ``obj`` from ``context``; see :meth:`ObjectSpace.export`."""
    return get_space(context).export(obj, **kwargs)
