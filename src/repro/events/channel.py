"""Event channels: publish/subscribe over the proxy machinery.

The caching policy's invalidation callbacks, generalised: subscribers
export a callback object; the channel fans every matching event out to the
callbacks as one-way messages.  The pattern is pure proxy principle — the
channel holds *proxies* for its subscribers and neither side ever sees an
address.

Delivery semantics are honest for one-way messaging: **at-most-once** per
event.  Reliability is layered on top, pull-style: every event gets a
sequence number and lands in the channel's replay log; a subscriber that
spots a gap (or reconnects) calls ``replay`` to fill in what it missed —
see :class:`repro.events.subscriber.EventSubscriber`.

Topics are slash-separated; a subscription pattern matches exactly or by
prefix with a trailing ``/*`` (``"builds/*"`` matches ``"builds/linux"``).
"""

from __future__ import annotations

from typing import Any

from ..core.service import Service
from ..iface.interface import operation
from ..kernel.errors import DistributionError

#: Default replay-log capacity (events).
DEFAULT_LOG_CAPACITY = 1024


def topic_matches(pattern: str, topic: str) -> bool:
    """Whether a subscription pattern covers a topic."""
    if pattern.endswith("/*"):
        prefix = pattern[:-1]          # keep the slash: "builds/"
        return topic.startswith(prefix) or topic == pattern[:-2]
    return pattern == topic


class EventChannel(Service):
    """A named fan-out point with a bounded replay log."""

    default_policy = "stub"

    def __init__(self, log_capacity: int = DEFAULT_LOG_CAPACITY):
        self._subscribers: dict[int, tuple[Any, list[str]]] = {}
        self._next_sid = 1
        self._next_seq = 1
        self._log: list[tuple[int, str, Any]] = []
        self._log_capacity = log_capacity
        self.stats = {"published": 0, "deliveries": 0, "delivery_failures": 0,
                      "replays": 0}

    @operation(compute=5e-6)
    def subscribe(self, callback, patterns: list) -> int:
        """Register a callback for the given topic patterns; returns the
        subscription id.  ``callback`` must export an ``on_event(seq, topic,
        payload)`` operation (it arrives here as a proxy)."""
        sid = self._next_sid
        self._next_sid += 1
        self._subscribers[sid] = (callback, list(patterns))
        return sid

    @operation(compute=3e-6)
    def unsubscribe(self, sid: int) -> bool:
        """Drop a subscription; returns whether it existed."""
        return self._subscribers.pop(sid, None) is not None

    @operation(compute=8e-6)
    def publish(self, topic: str, payload) -> int:
        """Log one event and fan it out; returns its sequence number.

        Fan-out is one-way and best-effort: a crashed subscriber costs a
        delivery failure, never an error to the publisher.
        """
        seq = self._next_seq
        self._next_seq += 1
        self._log.append((seq, topic, payload))
        if len(self._log) > self._log_capacity:
            del self._log[0]
        self.stats["published"] += 1
        for callback, patterns in list(self._subscribers.values()):
            if not any(topic_matches(pattern, topic) for pattern in patterns):
                continue
            try:
                callback.on_event(seq, topic, payload)
                self.stats["deliveries"] += 1
            except DistributionError:
                self.stats["delivery_failures"] += 1
        return seq

    @operation(readonly=True, compute=1e-5)
    def replay(self, patterns: list, since_seq: int) -> list:
        """Logged events matching ``patterns`` with seq > ``since_seq``.

        Returns ``[seq, topic, payload]`` triples in order; the pull-side
        of the reliability story.
        """
        self.stats["replays"] += 1
        return [[seq, topic, payload] for seq, topic, payload in self._log
                if seq > since_seq
                and any(topic_matches(p, topic) for p in patterns)]

    @operation(readonly=True, compute=2e-6)
    def last_seq(self) -> int:
        """Sequence number of the most recent event (0 when none)."""
        return self._next_seq - 1

    @operation(readonly=True, compute=2e-6)
    def subscriber_count(self) -> int:
        """Number of live subscriptions."""
        return len(self._subscribers)
