"""Events: publish/subscribe channels with pull-based reliability."""

from .channel import DEFAULT_LOG_CAPACITY, EventChannel, topic_matches
from .subscriber import EventCallback, EventSubscriber

__all__ = [
    "DEFAULT_LOG_CAPACITY", "EventCallback", "EventChannel",
    "EventSubscriber", "topic_matches",
]
