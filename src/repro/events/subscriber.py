"""The subscriber side: callback export, gap detection, catch-up.

:class:`EventSubscriber` wraps the boilerplate a reliable consumer needs:
it exports the callback object, subscribes, buffers received events in
order, notices sequence gaps (one-way fan-out is at-most-once), and closes
them by pulling the channel's replay log.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.export import get_space
from ..iface.interface import operation
from ..kernel.context import Context


class EventCallback:
    """The exported sink; one per subscriber."""

    def __init__(self, owner: "EventSubscriber"):
        self._owner = owner

    @operation(oneway=True)
    def on_event(self, seq: int, topic: str, payload) -> None:
        """Receive one pushed event (may be lost, may arrive after a gap)."""
        self._owner._receive(seq, topic, payload)


class EventSubscriber:
    """A reliable consumer over an at-most-once event channel."""

    def __init__(self, context: Context, channel, patterns: list[str],
                 on_event: Callable[[int, str, Any], None] | None = None):
        self.context = context
        self.channel = channel
        self.patterns = list(patterns)
        self.events: list[tuple[int, str, Any]] = []
        self._seen: set[int] = set()
        self._handler = on_event
        self._callback = EventCallback(self)
        get_space(context).export(self._callback)
        self.sid = channel.subscribe(self._callback, self.patterns)
        self._baseline = channel.last_seq()

    def _receive(self, seq: int, topic: str, payload) -> None:
        if seq in self._seen:
            return
        self._seen.add(seq)
        self.events.append((seq, topic, payload))
        if self._handler is not None:
            self._handler(seq, topic, payload)

    @property
    def last_seen_seq(self) -> int:
        """Highest sequence number received so far (or the baseline)."""
        return max(self._seen) if self._seen else self._baseline

    def gaps(self) -> bool:
        """Whether any matching event between baseline and the channel's
        head is missing locally (requires one RPC to ask the head)."""
        head = self.channel.last_seq()
        expected = self.channel.replay(self.patterns, self._baseline)
        return any(seq not in self._seen for seq, _, _ in expected) \
            or head > self.last_seen_seq

    def catch_up(self) -> int:
        """Pull missed events from the replay log; returns how many were
        recovered.  Events arrive through the same ``_receive`` path, so
        ordering in ``self.events`` is by recovery time, with ``seq``
        available for re-sorting."""
        recovered = 0
        for seq, topic, payload in self.channel.replay(self.patterns,
                                                       self._baseline):
            if seq not in self._seen:
                self._receive(seq, topic, payload)
                recovered += 1
        return recovered

    def ordered_events(self) -> list[tuple[int, str, Any]]:
        """All received events, sorted by sequence number."""
        return sorted(self.events)

    def close(self) -> None:
        """Unsubscribe and withdraw the callback export."""
        self.channel.unsubscribe(self.sid)
        get_space(self.context).unexport(self._callback)
