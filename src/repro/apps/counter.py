"""Counters — tiny state, ideal for exercising migration and replication."""

from __future__ import annotations

from ..core.service import Service
from ..iface.interface import operation


class Counter(Service):
    """A single integer with increment/decrement."""

    default_policy = "stub"

    def __init__(self, value: int = 0):
        self.value = value

    @operation(compute=2e-6)
    def incr(self, amount: int = 1) -> int:
        """Add ``amount``; returns the new value."""
        self.value += amount
        return self.value

    @operation(compute=2e-6)
    def decr(self, amount: int = 1) -> int:
        """Subtract ``amount``; returns the new value."""
        self.value -= amount
        return self.value

    @operation(readonly=True, compute=1e-6)
    def read(self) -> int:
        """Current value."""
        return self.value

    @operation(compute=2e-6)
    def reset(self) -> int:
        """Zero the counter; returns the previous value."""
        previous, self.value = self.value, 0
        return previous

    # -- shard partitioning hooks ------------------------------------------------
    # A counter has no key space: it shards as one unit under the
    # whole-object key, so a rebalance moves the entire value or nothing.

    def shard_keys(self) -> list:
        return ["*"]

    def shard_fragment(self, keys) -> dict:
        return {"value": self.value} if keys else {}

    def shard_absorb(self, fragment: dict) -> None:
        if "value" in fragment:
            self.value = fragment["value"]

    def shard_discard(self, keys) -> None:
        if keys:
            self.value = 0


class MigratingCounter(Counter):
    """A counter that follows its hottest client around."""

    default_policy = "migrating"
    default_config = {"migrate_after": 4}


class StatsAccumulator(Service):
    """Running mean/min/max — slightly richer migratable state."""

    default_policy = "migrating"
    default_config = {"migrate_after": 6}

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    @operation(compute=3e-6)
    def observe(self, value: float) -> int:
        """Record one observation; returns the sample count."""
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        return self.count

    @operation(readonly=True, compute=2e-6)
    def summary(self) -> dict:
        """Mean/min/max/count of everything observed so far."""
        mean = self.total / self.count if self.count else 0.0
        return {"count": self.count, "mean": mean,
                "min": self.minimum, "max": self.maximum}
