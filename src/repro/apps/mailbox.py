"""A mailbox service — append-heavy, the batching policy's natural habitat."""

from __future__ import annotations

from ..core.service import Service
from ..iface.interface import operation


class Mailbox(Service):
    """Ordered message queue with cursor-style fetch."""

    default_policy = "batching"
    default_config = {"batch_size": 8, "batch_ops": ["post"]}

    def __init__(self, capacity: int = 100_000):
        self.capacity = capacity
        self._messages: list[tuple[str, str]] = []

    @operation(compute=5e-6)
    def post(self, sender: str, body: str) -> bool:
        """Append one message (drops oldest beyond capacity)."""
        self._messages.append((sender, body))
        if len(self._messages) > self.capacity:
            del self._messages[0]
        return True

    @operation(readonly=True, compute=1e-5)
    def fetch(self, start: int, limit: int) -> list:
        """Messages ``[start, start+limit)`` as ``[sender, body]`` pairs."""
        return [list(item) for item in self._messages[start:start + limit]]

    @operation(readonly=True, compute=3e-6)
    def count(self) -> int:
        """Number of queued messages."""
        return len(self._messages)

    @operation(compute=1e-5)
    def drain(self) -> int:
        """Drop everything; returns how many messages were dropped."""
        dropped = len(self._messages)
        self._messages.clear()
        return dropped
