"""A lock service — deliberately cache-hostile state.

Locks are the counter-example to caching: the whole point of ``holder`` is
to be current.  The service ships the plain stub policy and demonstrates
(in tests) why its operations' metadata matters: ``try_acquire`` is a
mutator even though it often changes nothing, so no smart proxy may elide
it.
"""

from __future__ import annotations

from ..core.service import Service
from ..iface.interface import operation


class LockService(Service):
    """Named, non-blocking mutual-exclusion locks with FIFO waiters."""

    default_policy = "stub"

    def __init__(self):
        self._holders: dict[str, str] = {}
        self._waiters: dict[str, list[str]] = {}
        self._grants = 0

    @operation(compute=3e-6)
    def try_acquire(self, name: str, owner: str) -> bool:
        """Take the lock if free (re-entrant for the same owner)."""
        current = self._holders.get(name)
        if current is None:
            self._holders[name] = owner
            self._grants += 1
            return True
        return current == owner

    @operation(compute=3e-6)
    def enqueue(self, name: str, owner: str) -> int:
        """Join the FIFO wait queue; returns the queue position (0 = next)."""
        queue = self._waiters.setdefault(name, [])
        if owner not in queue:
            queue.append(owner)
        return queue.index(owner)

    @operation(compute=3e-6)
    def release(self, name: str, owner: str) -> str:
        """Release a held lock; hands it to the first waiter (returned as
        the new holder, or ``""`` when the lock is now free).

        Raises ``PermissionError`` when ``owner`` does not hold the lock.
        """
        if self._holders.get(name) != owner:
            raise PermissionError(f"{owner!r} does not hold {name!r}")
        queue = self._waiters.get(name) or []
        if queue:
            successor = queue.pop(0)
            self._holders[name] = successor
            self._grants += 1
            return successor
        del self._holders[name]
        return ""

    @operation(readonly=True, compute=2e-6)
    def holder(self, name: str) -> str:
        """Current holder (``""`` when free)."""
        return self._holders.get(name, "")

    @operation(readonly=True, compute=2e-6)
    def queue_length(self, name: str) -> int:
        """Number of queued waiters."""
        return len(self._waiters.get(name) or [])

    @operation(readonly=True, compute=2e-6)
    def grant_count(self) -> int:
        """Total grants ever made (diagnostics)."""
        return self._grants

    # -- shard partitioning hooks ------------------------------------------------
    # Locks partition per lock name; a fragment carries ``[holder,
    # waiters]`` per name.  ``grant_count`` stays per-shard (diagnostics).

    def shard_keys(self) -> list:
        return sorted(set(self._holders) | set(self._waiters))

    def shard_fragment(self, keys) -> dict:
        fragment = {}
        for name in keys:
            holder = self._holders.get(name)
            waiters = list(self._waiters.get(name) or [])
            if holder is not None or waiters:
                fragment[name] = [holder, waiters]
        return fragment

    def shard_absorb(self, fragment: dict) -> None:
        for name, (holder, waiters) in fragment.items():
            if holder is None:
                self._holders.pop(name, None)
            else:
                self._holders[name] = holder
            if waiters:
                self._waiters[name] = list(waiters)
            else:
                self._waiters.pop(name, None)

    def shard_discard(self, keys) -> None:
        for name in keys:
            self._holders.pop(name, None)
            self._waiters.pop(name, None)
