"""Example services built on the public API (used by examples/tests/benches)."""

from .counter import Counter, MigratingCounter, StatsAccumulator
from .documents import DocumentStore
from .files import BLOCK_SIZE, BlockFileService, FileService
from .kv import CachedKVStore, KVStore, MigratingKVStore
from .locks import LockService
from .mailbox import Mailbox
from .queue import WorkQueue

__all__ = [
    "BLOCK_SIZE", "BlockFileService", "CachedKVStore", "Counter",
    "DocumentStore", "FileService", "KVStore", "LockService", "Mailbox",
    "MigratingCounter", "MigratingKVStore", "StatsAccumulator", "WorkQueue",
]
