"""A work queue — producers and consumers decoupled by a service.

Shows the interplay of metadata and policies: ``submit`` is batchable
(producers trade latency for message count), while ``take`` is a mutator
that must never be cached or deferred — exactly the distinction the
operation metadata encodes.
"""

from __future__ import annotations

from typing import Any

from ..core.service import Service
from ..iface.interface import operation


class WorkQueue(Service):
    """FIFO task queue with acknowledgement tracking."""

    default_policy = "batching"
    default_config = {"batch_size": 8, "batch_ops": ["submit"]}

    def __init__(self):
        self._pending: list[tuple[int, Any]] = []
        self._in_flight: dict[int, tuple[str, Any]] = {}
        self._done: set[int] = set()
        self._next_id = 1

    @operation(compute=4e-6)
    def submit(self, task) -> int:
        """Enqueue a task; returns its id (``None`` through a batching
        proxy — producers that need the id should flush first)."""
        task_id = self._next_id
        self._next_id += 1
        self._pending.append((task_id, task))
        return task_id

    @operation(compute=5e-6)
    def take(self, worker: str):
        """Pop the oldest task for ``worker``; ``None`` when empty.

        Returns ``[task_id, task]``.
        """
        if not self._pending:
            return None
        task_id, task = self._pending.pop(0)
        self._in_flight[task_id] = (worker, task)
        return [task_id, task]

    @operation(compute=3e-6)
    def ack(self, task_id: int) -> bool:
        """Acknowledge completion; returns whether the id was in flight."""
        if task_id in self._in_flight:
            del self._in_flight[task_id]
            self._done.add(task_id)
            return True
        return False

    @operation(compute=3e-6)
    def requeue_worker(self, worker: str) -> int:
        """Return a dead worker's in-flight tasks to the queue (front);
        returns how many were requeued."""
        stranded = sorted((task_id, task) for task_id, (who, task)
                          in self._in_flight.items() if who == worker)
        for task_id, task in reversed(stranded):
            del self._in_flight[task_id]
            self._pending.insert(0, (task_id, task))
        return len(stranded)

    @operation(readonly=True, compute=2e-6)
    def depth(self) -> int:
        """Number of pending (not yet taken) tasks."""
        return len(self._pending)

    @operation(readonly=True, compute=2e-6)
    def stats(self) -> dict:
        """Pending / in-flight / done counts."""
        return {"pending": len(self._pending),
                "in_flight": len(self._in_flight),
                "done": len(self._done)}

    # -- shard partitioning hooks ------------------------------------------------
    # A FIFO queue cannot be split without breaking its ordering contract,
    # so it shards as one unit under the whole-object key (like Counter):
    # a rebalance moves the entire queue state or nothing.

    def shard_keys(self) -> list:
        return ["*"]

    def shard_fragment(self, keys) -> dict:
        if not keys:
            return {}
        return {"pending": [[task_id, task] for task_id, task
                            in self._pending],
                "in_flight": [[task_id, who, task] for task_id, (who, task)
                              in sorted(self._in_flight.items())],
                "done": sorted(self._done),
                "next_id": self._next_id}

    def shard_absorb(self, fragment: dict) -> None:
        if not fragment:
            return
        self._pending = [(task_id, task) for task_id, task
                         in fragment.get("pending", [])]
        self._in_flight = {task_id: (who, task) for task_id, who, task
                           in fragment.get("in_flight", [])}
        self._done = set(fragment.get("done", []))
        self._next_id = int(fragment.get("next_id", 1))

    def shard_discard(self, keys) -> None:
        if keys:
            self._pending = []
            self._in_flight = {}
            self._done = set()
            self._next_id = 1
