"""A key-value store service — the workhorse of the evaluation.

The interface carries the metadata smart proxies need: ``get``/``contains``
are ``readonly`` (cacheable, replica-servable), ``put``/``delete`` declare
``invalidates=("key",)`` so caches drop exactly the affected entries, and a
small per-operation compute cost models server work.
"""

from __future__ import annotations

from typing import Any

from ..core.service import Service
from ..iface.interface import operation


class KVStore(Service):
    """In-memory key-value store."""

    default_policy = "stub"

    def __init__(self):
        self.data: dict[str, Any] = {}

    @operation(readonly=True, compute=5e-6)
    def get(self, key: str) -> Any:
        """The value for ``key``, or ``None``."""
        return self.data.get(key)

    @operation(invalidates=("key",), compute=8e-6)
    def put(self, key: str, value: Any) -> bool:
        """Store ``value`` under ``key``."""
        self.data[key] = value
        return True

    @operation(invalidates=("key",), compute=8e-6)
    def delete(self, key: str) -> bool:
        """Remove ``key``; returns whether it existed."""
        return self.data.pop(key, None) is not None

    @operation(readonly=True, compute=5e-6)
    def contains(self, key: str) -> bool:
        """Whether ``key`` is present."""
        return key in self.data

    @operation(readonly=True, compute=2e-5)
    def size(self) -> int:
        """Number of stored keys."""
        return len(self.data)

    @operation(readonly=True, compute=5e-5)
    def keys_with_prefix(self, prefix: str) -> list:
        """All keys starting with ``prefix``, sorted."""
        return sorted(key for key in self.data if key.startswith(prefix))

    # -- shard partitioning hooks ------------------------------------------------
    # Plain methods (not operations): invisible to the interface, used only
    # server-side by the sharded policy's arc handoff (repro.wire.shards).
    # A KV store partitions per key, so an arc's fragment is a sub-dict.

    def shard_keys(self) -> list:
        return sorted(self.data)

    def shard_fragment(self, keys) -> dict:
        return {key: self.data[key] for key in keys if key in self.data}

    def shard_absorb(self, fragment: dict) -> None:
        self.data.update(fragment)

    def shard_discard(self, keys) -> None:
        for key in keys:
            self.data.pop(key, None)


class CachedKVStore(KVStore):
    """The same store, shipped with the caching proxy.

    Demonstrates the encapsulation claim literally: this subclass changes
    *two class attributes* and thereby changes the distribution protocol of
    every client — no client code differs between the two stores.
    """

    default_policy = "caching"
    default_config = {"invalidation": True}


class MigratingKVStore(KVStore):
    """The same store, shipped with the migrating proxy."""

    default_policy = "migrating"
    default_config = {"migrate_after": 4}
