"""A block file service — the paper's own motivating example.

"A proxy for a remote file object may cache recently accessed data to speed
up access" [Shapiro86 via Guedes91].  :class:`FileService` stores whole
files as byte blocks; :class:`BlockFileService` exposes block-granular reads
(cache-friendly: each ``read_block`` result is independently cacheable, and
``write_block`` invalidates exactly its path+block).
"""

from __future__ import annotations

from ..core.service import Service
from ..iface.interface import operation

#: Block size of :class:`BlockFileService`, in bytes.
BLOCK_SIZE = 1024


class FileService(Service):
    """Whole-file storage keyed by path."""

    default_policy = "caching"
    default_config = {"invalidation": True}

    def __init__(self):
        self._files: dict[str, bytes] = {}

    @operation(invalidates=("path",), compute=2e-5)
    def write_file(self, path: str, data: bytes) -> int:
        """Store a file; returns its size."""
        self._files[path] = bytes(data)
        return len(data)

    @operation(readonly=True, compute=2e-5)
    def read_file(self, path: str) -> bytes:
        """The file's contents; raises ``FileNotFoundError`` when absent."""
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    @operation(invalidates=("path",), compute=1e-5)
    def delete_file(self, path: str) -> bool:
        """Remove a file; returns whether it existed."""
        return self._files.pop(path, None) is not None

    @operation(readonly=True, compute=1e-5)
    def stat(self, path: str) -> dict:
        """Size metadata; raises ``FileNotFoundError`` when absent."""
        try:
            data = self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None
        return {"path": path, "size": len(data)}

    @operation(readonly=True, compute=3e-5)
    def list_files(self, prefix: str) -> list:
        """Paths starting with ``prefix``, sorted."""
        return sorted(path for path in self._files if path.startswith(prefix))


class BlockFileService(Service):
    """Block-granular file storage (better cache behaviour for large files)."""

    default_policy = "caching"
    default_config = {"invalidation": True}

    def __init__(self, block_size: int = BLOCK_SIZE):
        self.block_size = block_size
        self._blocks: dict[tuple[str, int], bytes] = {}
        self._lengths: dict[str, int] = {}

    @operation(invalidates=("path", "index"), compute=2e-5)
    def write_block(self, path: str, index: int, data: bytes) -> bool:
        """Write one block of a file."""
        data = bytes(data)[: self.block_size]
        self._blocks[(path, index)] = data
        end = index * self.block_size + len(data)
        self._lengths[path] = max(self._lengths.get(path, 0), end)
        return True

    @operation(readonly=True, compute=2e-5)
    def read_block(self, path: str, index: int) -> bytes:
        """Read one block (empty bytes beyond end of file)."""
        if path not in self._lengths:
            raise FileNotFoundError(path)
        return self._blocks.get((path, index), b"")

    @operation(readonly=True, compute=1e-5)
    def file_length(self, path: str) -> int:
        """Length in bytes; raises ``FileNotFoundError`` when absent."""
        try:
            return self._lengths[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    @operation(invalidates=("path",), compute=2e-5)
    def truncate(self, path: str) -> bool:
        """Drop a file entirely; returns whether it existed."""
        existed = self._lengths.pop(path, None) is not None
        victims = [key for key in self._blocks if key[0] == path]
        for key in victims:
            del self._blocks[key]
        return existed
