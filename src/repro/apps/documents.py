"""A collaborative document service — the SOMIW office-automation anchor.

The paper's system (SOS) came out of the SOMIW Esprit project, whose
flagship application was distributed office automation (later CIDRE).  This
service is that workload in miniature: documents made of sections, edited
concurrently by users on different machines, with optimistic per-section
version checks so two editors cannot silently overwrite each other.

Interface metadata is tuned for caching proxies: section reads are
cacheable per ``(doc, section)``; an edit invalidates exactly its document
(coarse-grained on purpose — outlines change when sections do).
"""

from __future__ import annotations

from ..core.service import Service
from ..iface.interface import operation


class DocumentStore(Service):
    """Sectioned documents with optimistic per-section versioning."""

    default_policy = "caching"
    default_config = {"invalidation": True}

    def __init__(self):
        #: doc -> section -> (text, version, author)
        self._docs: dict[str, dict[str, tuple[str, int, str]]] = {}

    @operation(compute=1e-5)
    def create_document(self, doc: str) -> bool:
        """Create an empty document; returns False when it already exists."""
        if doc in self._docs:
            return False
        self._docs[doc] = {}
        return True

    @operation(readonly=True, compute=5e-6)
    def list_documents(self) -> list:
        """All document names, sorted."""
        return sorted(self._docs)

    @operation(readonly=True, compute=5e-6)
    def outline(self, doc: str) -> list:
        """Section names of a document, sorted; raises ``KeyError``."""
        return sorted(self._sections(doc))

    @operation(readonly=True, compute=8e-6)
    def read_section(self, doc: str, section: str) -> list:
        """``[text, version, author]`` (``["", 0, ""]`` when absent)."""
        cell = self._sections(doc).get(section, ("", 0, ""))
        return list(cell)

    @operation(invalidates=("doc",), compute=1.5e-5)
    def edit_section(self, doc: str, section: str, text: str,
                     expected_version: int, author: str) -> int:
        """Replace a section's text if nobody edited it meanwhile.

        Returns the new version; raises ``ValueError`` on a version
        conflict (the caller re-reads and merges — optimistic editing).
        """
        sections = self._sections(doc)
        current = sections.get(section, ("", 0, ""))
        if current[1] != expected_version:
            raise ValueError(
                f"section {doc}/{section} is at version {current[1]}, "
                f"edit expected {expected_version}")
        version = current[1] + 1
        sections[section] = (text, version, author)
        return version

    @operation(invalidates=("doc",), compute=1e-5)
    def delete_section(self, doc: str, section: str) -> bool:
        """Remove a section; returns whether it existed."""
        return self._sections(doc).pop(section, None) is not None

    @operation(readonly=True, compute=2e-5)
    def render(self, doc: str) -> str:
        """The document as text: sections in order, attributed."""
        parts = []
        for section in sorted(self._sections(doc)):
            text, version, author = self._docs[doc][section]
            parts.append(f"== {section} (v{version}, {author}) ==\n{text}")
        return "\n\n".join(parts)

    @operation(readonly=True, compute=5e-6)
    def word_count(self, doc: str) -> int:
        """Total words across all sections."""
        return sum(len(text.split())
                   for text, _, _ in self._sections(doc).values())

    def _sections(self, doc: str) -> dict:
        try:
            return self._docs[doc]
        except KeyError:
            raise KeyError(f"no document {doc!r}") from None

    # Documents are migratable/persistable like any state capsule.
    def migrate_state(self):
        return {"docs": {doc: {section: list(cell)
                               for section, cell in sections.items()}
                         for doc, sections in self._docs.items()}}

    @classmethod
    def from_migration_state(cls, state):
        obj = cls()
        obj._docs = {doc: {section: tuple(cell)
                           for section, cell in sections.items()}
                     for doc, sections in state["docs"].items()}
        return obj
