"""RPC substrate: transport, dispatcher, request/reply protocol, stubs."""

from .dispatcher import Dispatcher, ExportEntry, ensure_dispatcher
from .lightweight import (
    fast_path_available,
    lrpc_disabled,
    lrpc_enabled,
    same_context,
    same_node,
)
from .promises import Promise, call_async, gather, pipeline_calls
from .protocol import RemoteError, RpcProtocol
from .stubs import RemoteStub
from .transport import Transport

__all__ = [
    "Dispatcher", "ExportEntry", "Promise", "RemoteError", "RemoteStub",
    "RpcProtocol", "Transport", "call_async", "ensure_dispatcher",
    "fast_path_available", "gather", "lrpc_disabled", "lrpc_enabled",
    "pipeline_calls", "same_context", "same_node",
]
