"""Server-side dispatch: the skeleton half of RPC.

Each context that exports objects gets a :class:`Dispatcher`, installed as
the context's message handler.  It implements:

* export-table lookup (oid → object + interface),
* interface checking (undeclared verbs are rejected, not ducked),
* **at-most-once execution** via a replay cache keyed ``(caller, msg_id)`` —
  retransmitted requests return the cached reply instead of re-executing
  (togglable, ablation E11),
* migration redirects: a request for an object that moved away answers with
  an ``ObjectMoved`` exception carrying the forwarding reference,
* admission control: when the node carries an
  :class:`~repro.kernel.admission.AdmissionControl`, every request is
  offered to it *before* dispatch (but after dedup, so retransmissions of
  executed requests are never shed) — refused calls answer ``Overloaded``
  with a retry-after hint in the :data:`~repro.wire.frames.K_OVERLOAD`
  header and are never cached, admitted calls pay the control's modelled
  service time on the busy line and release their queue slot when they
  drain,
* virtual-time accounting: queueing behind earlier requests, unmarshal,
  dispatch, declared per-operation compute, and reply marshalling.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..iface.interface import Interface
from ..kernel.context import Context
from ..kernel.errors import DanglingReference, InterfaceError, ReproError
from ..resilience.deadline import Deadline
from ..wire import shards, versions
from ..wire.frames import K_OVERLOAD, ONEWAY, REQUEST, Frame
from ..wire.refs import ObjectRef


@dataclass
class ExportEntry:
    """One exported object in a context's export table.

    Attributes:
        obj: the implementation object (lives only in this context).
        interface: the interface it is exported under.
        ref: the reference under which remote contexts know it.
        moved_to: forwarding reference if the object migrated away.
        revoked: true once unexported; requests answer ``DanglingReference``.
        policy_name: name of the proxy factory the exporter chose (the
            service-selected client-side representative; see repro.core).
        policy_config: marshallable configuration shipped with the factory.
        mutation_hooks: server-side components whose ``after(verb, args,
            kwargs)`` runs after each successful mutating operation — the
            caching policy's invalidation broadcaster and the persistence
            manager's checkpointer live here.
        replica_log: per-key version log, created lazily on the first
            quorum-enveloped request (see :mod:`repro.wire.versions`);
            ``None`` for every entry that never serves versioned traffic.
        election: the replica's :class:`~repro.failures.election.
            ElectionState` when the group runs leader election; ``None``
            otherwise.  Its presence switches the versioned protocol
            steps into term-fencing mode.
        sharding: the shard's :class:`~repro.wire.shards.ShardState` when
            the object is one partition of a sharded deployment; ``None``
            otherwise.  Its presence switches on ring-epoch fencing: an
            enveloped call with a stale epoch gets a redirect wrapper, a
            plain call after the first rebalance gets ``StaleShardRing``.
    """

    obj: object
    interface: Interface
    ref: ObjectRef
    moved_to: ObjectRef | None = None
    revoked: bool = False
    policy_name: str = "stub"
    policy_config: dict = field(default_factory=dict)
    mutation_hooks: list = field(default_factory=list)
    replica_log: object | None = None
    election: object | None = None
    sharding: object | None = None

    def run_mutation_hooks(self, verb: str, args: tuple, kwargs: dict) -> None:
        """Notify every hook of one successful mutating operation."""
        for hook in self.mutation_hooks:
            hook.after(verb, args, kwargs)


class Dispatcher:
    """Demultiplexes inbound frames onto a context's exported objects."""

    def __init__(self, context: Context, transport, replay_capacity: int = 4096):
        self.context = context
        self.transport = transport
        # Fixed for the context's lifetime; cached off the per-frame path
        # (ctx.system is two attribute hops per read).
        self._system = context.system
        self._costs = self._system.costs
        self.at_most_once = True
        self.replay_capacity = replay_capacity
        self._replay: OrderedDict[tuple[str, int], bytes] = OrderedDict()
        self.stats = {"requests": 0, "duplicates": 0, "exceptions": 0,
                      "oneways": 0, "redirects": 0, "deadline_rejects": 0,
                      "sheds": 0}
        context.handler = self.handle

    # -- entry point -----------------------------------------------------------

    def handle(self, data: bytes, arrive: float) -> tuple[bytes, float] | None:
        """Process one inbound frame; returns ``(reply_bytes, ready_time)``.

        Returns ``None`` for one-way frames.

        Virtual-time model: requests serialise through the context's busy
        line — work starts at ``max(arrive, line.busy_until)``.  The
        context's activity clock is rebased to that start for the duration
        of the request (so nested outbound calls the handler makes are
        timed correctly), then restored to the latest time the context has
        seen.  An *idle* server therefore never delays a request just
        because its clock ran ahead serving someone else — or standing
        around.
        """
        ctx = self.context
        frame = None
        admitted_target = None
        admission = ctx.node.admission
        if admission is not None:
            # Admission is a *front-door* check at the arrival instant —
            # before the busy-line wait, because a server whose queue is
            # full must refuse on arrival, not after the refused request
            # waited out the very backlog it was refused to bound.  Dedup
            # runs first so a retransmission of an executed request hits
            # the replay cache (below) and is never shed.  Rejection is
            # modelled free: a header peek, off the serving path.
            frame = self.transport.decode_frame(data, ctx)
            if frame.kind == REQUEST and not (
                    self.at_most_once
                    and (frame.src, frame.msg_id) in self._replay):
                retry_at = admission.admit(frame.target, arrive)
                if retry_at is not None:
                    self.stats["sheds"] += 1
                    reply = frame.exception_to(
                        "Overloaded",
                        f"{frame.verb!r} shed at admission on "
                        f"{ctx.node.name!r}")
                    reply.headers[K_OVERLOAD] = retry_at
                    # Deliberately not remembered: the operation never
                    # executed, so a retransmission must be re-admitted
                    # (and may then succeed) rather than served the
                    # stale refusal.
                    return self.transport.encode_frame(reply, ctx), arrive
                admitted_target = frame.target
        start = max(arrive, ctx.line.busy_until)
        resume_at = max(ctx.clock.now, start)
        ctx.clock.reset(start)
        if admitted_target is not None and admission.service_time > 0.0:
            # The modelled per-request work: this is what makes admitted
            # calls queue and drain in virtual time on the context busy
            # line instead of executing instantaneously.
            ctx.charge(admission.service_time)
        # One staging window per dispatch tick: oneways the handler fans
        # out (event publishes, cache invalidations) coalesce per link
        # and flush when the tick ends (or earlier, if program order
        # demands it — see RpcProtocol._maybe_stage).
        rpc = self._system.rpc
        if rpc is not None and rpc.reply_batching:
            rpc.open_reply_window()
        else:
            rpc = None
        try:
            outcome = self._handle_at(data, frame)
        finally:
            if rpc is not None:
                rpc.close_reply_window()
            end = ctx.clock.now
            if admitted_target is not None:
                # Release the queue slot at the call's busy-line end —
                # the slot drains when the work does, not at dispatch.
                admission.finish(admitted_target, end)
            if end > start:
                ctx.line.occupy(start, end - start)
            ctx.clock.reset(max(resume_at, end))
        return outcome

    def _handle_at(self, data: bytes,
                   frame: Frame | None = None) -> tuple[bytes, float] | None:
        """Body of :meth:`handle`, running on the rebased context clock.

        ``frame`` is the already-decoded frame when the admission front
        door ran (the unmarshal *cost* is still charged here, on the busy
        line, where serving pays it)."""
        ctx = self.context
        system = self._system
        costs = self._costs
        ctx.charge(costs.marshal_fixed + len(data) * costs.marshal_byte_cost)
        if frame is None:
            frame = self.transport.decode_frame(data, ctx)
        if frame.kind == ONEWAY:
            self.stats["oneways"] += 1
            ctx.charge(costs.dispatch_cost)
            self._execute(frame)
            return None
        if frame.kind != REQUEST:
            return None
        self.stats["requests"] += 1
        dedup_key = (frame.src, frame.msg_id)
        if self.at_most_once and dedup_key in self._replay:
            self.stats["duplicates"] += 1
            ctx.charge(costs.dispatch_cost)
            return self._replay[dedup_key], ctx.clock.now
        ctx.charge(costs.dispatch_cost)
        deadline = Deadline.from_headers(frame.headers) if frame.headers \
            else None
        if deadline is not None and deadline.expired(ctx.clock.now):
            # The caller's budget is already spent: executing the operation
            # can no longer help anyone, so skip dispatch entirely and tell
            # the (possibly still waiting) caller why.
            self.stats["deadline_rejects"] += 1
            reply = frame.exception_to(
                "DeadlineExceeded",
                f"budget spent before dispatch of {frame.verb!r}")
            return self.transport.encode_frame(reply, ctx), ctx.clock.now
        # Park the deadline on the serving context so nested outbound calls
        # the handler makes inherit the root caller's budget.
        enclosing = ctx.current_deadline
        if deadline is None and enclosing is None:
            ctx.current_deadline = None
        else:
            ctx.current_deadline = Deadline.merge(deadline, enclosing)
        try:
            reply = self._dispatch(frame)
        finally:
            ctx.current_deadline = enclosing
        rpc = system.rpc
        if rpc is not None and rpc._windows and rpc._windows[-1]:
            # Oneways the handler fanned out (mutation hooks) preceded
            # this event inline; flush staged ones now so the trace keeps
            # the original emission order.
            rpc.flush_reply_window()
        system.trace.emit(ctx.clock.now, "invoke", frame.src, ctx.context_id,
                          frame.verb)
        reply_data = self.transport.encode_frame(reply, ctx)
        if reply_data.__class__ is not bytes:
            # A zero-copy reply may hold mutable segments the service still
            # owns; snapshot them now so the wire (and the replay cache)
            # carries what was sent, not what the buffer later becomes.
            reply_data = reply_data.freeze()
        if self.at_most_once:
            self._remember(dedup_key, reply_data)
        return reply_data, ctx.clock.now

    # -- internals ---------------------------------------------------------------

    def _dispatch(self, frame: Frame) -> Frame:
        entry = self.context.exports.get(frame.target)
        if entry is None or entry.revoked:
            return frame.exception_to(
                "DanglingReference",
                f"context {self.context.context_id!r} exports no object "
                f"{frame.target!r}")
        if entry.moved_to is not None:
            self.stats["redirects"] += 1
            fwd = entry.moved_to
            return frame.exception_to(
                "ObjectMoved",
                f"object {frame.target!r} migrated to {fwd.context_id!r}",
                detail=(fwd.context_id, fwd.oid, fwd.interface, fwd.epoch,
                        fwd.policy))
        headers = frame.headers
        if headers:
            if versions.has_envelope(headers):
                # Quorum-enveloped request (replicated policy, versioned
                # mode): the protocol steps in repro.wire.versions wrap the
                # result and run the mutation hooks themselves.  Control
                # frames (repair log transfers) are verb-less, so this must
                # precede the interface check.
                return self._dispatch_versioned(entry, frame)
            if shards.has_envelope(headers):
                # Shard-enveloped request (sharded policy): epoch fencing
                # and ring controls, same shape as the quorum path above.
                return self._dispatch_sharded(entry, frame)
        if entry.sharding is not None and entry.sharding.epoch > 1:
            # A plain call on a shard whose ring has been rebalanced: the
            # caller routed without (or with a pre-rebalance) ring, so it
            # may well be at the wrong owner.  Redirect with the current
            # map — the sharded counterpart of the ObjectMoved chain.
            self.stats["redirects"] += 1
            return frame.exception_to(
                "StaleShardRing",
                f"shard {frame.target!r} is at ring epoch "
                f"{entry.sharding.epoch}; re-route with the current map",
                detail=entry.sharding.map())
        op = entry.interface.operations.get(frame.verb)
        if op is None:
            return frame.exception_to(
                "InterfaceError",
                f"interface {entry.interface.name!r} declares no operation "
                f"{frame.verb!r}")
        if op.compute > 0:
            self.context.charge(op.compute)
        try:
            result = self._call(entry, frame)
        except ReproError as exc:
            self.stats["exceptions"] += 1
            return frame.exception_to(type(exc).__name__, str(exc))
        except Exception as exc:  # application error: ship it, don't die
            self.stats["exceptions"] += 1
            return frame.exception_to(type(exc).__name__, str(exc))
        if entry.mutation_hooks and not op.readonly:
            args, kwargs = frame.body if frame.body else ((), {})
            entry.run_mutation_hooks(frame.verb, args, kwargs)
        return frame.reply_to(result)

    def _dispatch_versioned(self, entry: ExportEntry, frame: Frame) -> Frame:
        """Serve one quorum-enveloped request (see :mod:`repro.wire.versions`).

        Versioned reads and replica applies fold application exceptions
        into the reply wrapper (the caller needs the replica's version
        either way); a primary write propagates them here so the usual
        exception frame travels back and nothing is logged.
        """
        args, kwargs = frame.body if frame.body else ((), {})
        # Election mode fences on the serving context's clock: the term
        # check and lease check happen at dispatch time, mirroring how the
        # migration redirect chain consults ``moved_to`` here.
        now = self.context.clock.now
        try:
            if versions.H_CONTROL in frame.headers:
                result = versions.serve_control(
                    entry, frame.headers[versions.H_CONTROL], args,
                    self._entry_invoke(entry), headers=frame.headers,
                    now=now)
            else:
                op = entry.interface.operations.get(frame.verb)
                if op is None:
                    return frame.exception_to(
                        "InterfaceError",
                        f"interface {entry.interface.name!r} declares no "
                        f"operation {frame.verb!r}")
                if op.compute > 0:
                    self.context.charge(op.compute)
                result = versions.serve_envelope(
                    entry, frame.verb, args, kwargs, frame.headers, now=now)
        except ReproError as exc:
            self.stats["exceptions"] += 1
            return frame.exception_to(type(exc).__name__, str(exc))
        except Exception as exc:  # a primary write's application error
            self.stats["exceptions"] += 1
            return frame.exception_to(type(exc).__name__, str(exc))
        return frame.reply_to(result)

    def _dispatch_sharded(self, entry: ExportEntry, frame: Frame) -> Frame:
        """Serve one shard-enveloped request (see :mod:`repro.wire.shards`).

        Ring controls (map reads, commits, arc installs, handoffs) are
        verb-less; enveloped operations get the usual interface check and
        compute accounting before the fencing step runs.
        """
        args, kwargs = frame.body if frame.body else ((), {})
        try:
            if shards.H_CONTROL in frame.headers:
                result = shards.serve_control(
                    entry, frame.headers[shards.H_CONTROL], args,
                    call_shard=self._shard_call)
            else:
                op = entry.interface.operations.get(frame.verb)
                if op is None:
                    return frame.exception_to(
                        "InterfaceError",
                        f"interface {entry.interface.name!r} declares no "
                        f"operation {frame.verb!r}")
                if op.compute > 0:
                    self.context.charge(op.compute)
                result = shards.serve_verb(
                    entry, frame.verb, args, kwargs, frame.headers,
                    readonly=op.readonly)
        except ReproError as exc:
            self.stats["exceptions"] += 1
            return frame.exception_to(type(exc).__name__, str(exc))
        except Exception as exc:  # an application error inside the shard
            self.stats["exceptions"] += 1
            return frame.exception_to(type(exc).__name__, str(exc))
        return frame.reply_to(result)

    def _shard_call(self, shard_spec: list, control: list,
                    body_args: tuple) -> dict:
        """Nested ring-control call to a peer shard (handoff's install and
        commit legs).  A co-located peer is served through its local entry;
        a remote one gets an ordinary enveloped request — nested outbound
        calls inside a handler are legal (migration's mover does the same).
        """
        ctx = self.context
        context_id, oid = shard_spec[0], shard_spec[1]
        if context_id == ctx.context_id:
            peer = ctx.exports.get(oid)
            if peer is None or peer.revoked:
                raise DanglingReference(
                    f"context {context_id!r} exports no object {oid!r}")
            ctx.charge(ctx.system.costs.local_call)
            return shards.serve_control(peer, control, tuple(body_args),
                                        call_shard=self._shard_call)
        ref = ObjectRef(*shard_spec)
        return ctx.system.rpc.call(ctx, ref, "", tuple(body_args), {},
                                   headers={shards.H_CONTROL: control})

    def _entry_invoke(self, entry: ExportEntry):
        """An invoke thunk for repair pushes: replayed log entries get the
        same interface check and compute accounting as a direct request."""
        def invoke(verb: str, args: tuple, kwargs: dict):
            op = entry.interface.operations.get(verb)
            if op is None:
                raise InterfaceError(
                    f"interface {entry.interface.name!r} declares no "
                    f"operation {verb!r}")
            if op.compute > 0:
                self.context.charge(op.compute)
            return getattr(entry.obj, verb)(*args, **kwargs)
        return invoke

    def _execute(self, frame: Frame) -> None:
        """Best-effort execution for one-way frames (errors are dropped)."""
        entry = self.context.exports.get(frame.target)
        if entry is None or entry.revoked or entry.moved_to is not None:
            return
        if frame.verb not in entry.interface:
            return
        try:
            self._call(entry, frame)
        except Exception:
            pass

    def _call(self, entry: ExportEntry, frame: Frame):
        args, kwargs = frame.body if frame.body else ((), {})
        method = getattr(entry.obj, frame.verb)
        return method(*args, **kwargs)

    def _remember(self, key: tuple[str, int], reply_data: bytes) -> None:
        self._replay[key] = reply_data
        while len(self._replay) > self.replay_capacity:
            self._replay.popitem(last=False)

    def forget_caller(self, context_id: str) -> int:
        """Drop replay entries for one caller (used when a caller context
        is torn down); returns how many entries were evicted."""
        stale = [key for key in self._replay if key[0] == context_id]
        for key in stale:
            del self._replay[key]
        return len(stale)


def ensure_dispatcher(context: Context, transport) -> Dispatcher:
    """Get or create the dispatcher of a context."""
    handler = context.handler
    if handler is not None and hasattr(handler, "__self__") \
            and isinstance(handler.__self__, Dispatcher):
        return handler.__self__
    return Dispatcher(context, transport)
