"""Dynamic client stubs — the pre-proxy baseline.

A :class:`RemoteStub` is what 1984-style RPC gives you: a thin,
client-instantiated forwarder with **no** service-supplied intelligence.
Every attribute access resolves (via ``__getattr__``) to a bound remote
invocation.  Contrast with :mod:`repro.core.proxy`, where the *service*
chooses the representative's implementation.

Stubs exist in this library for two reasons: they are the E1/E5 baseline the
proxy principle is measured against, and they demonstrate that the proxy
mechanism strictly generalises stubs (the ``stub`` policy in
:mod:`repro.core.policies` behaves identically).
"""

from __future__ import annotations


from typing import Any

from ..iface.interface import Interface
from ..kernel.context import Context
from ..kernel.errors import InterfaceError
from ..wire.refs import ObjectRef


class RemoteStub:
    """Client-side forwarder for one remote object.

    Attributes prefixed ``stub_`` are local; everything else is treated as a
    remote operation name.
    """

    def __init__(self, context: Context, ref: ObjectRef,
                 interface: Interface | None = None, protocol=None):
        self.stub_context = context
        self.stub_ref = ref
        self.stub_interface = interface
        self.stub_protocol = protocol or context.system.rpc

    def __getattr__(self, verb: str) -> Any:
        if verb.startswith("stub_") or verb.startswith("_"):
            raise AttributeError(verb)
        iface = self.stub_interface
        if iface is not None and verb not in iface:
            raise InterfaceError(
                f"interface {iface.name!r} declares no operation {verb!r}")
        if iface is not None and iface.operation(verb).oneway:
            return _BoundOperation(self, verb, oneway=True)
        return _BoundOperation(self, verb)

    def __repr__(self) -> str:
        return f"RemoteStub({self.stub_ref})"


class _BoundOperation:
    """One callable remote operation, bound to a stub."""

    __slots__ = ("_stub", "_verb", "_oneway")

    def __init__(self, stub: RemoteStub, verb: str, oneway: bool = False):
        self._stub = stub
        self._verb = verb
        self._oneway = oneway

    def __call__(self, *args, **kwargs):
        stub = self._stub
        if self._oneway:
            return stub.stub_protocol.send_oneway(
                stub.stub_context, stub.stub_ref, self._verb, args, kwargs)
        return stub.stub_protocol.call(stub.stub_context, stub.stub_ref,
                                       self._verb, args, kwargs)

    def __repr__(self) -> str:
        return f"<remote operation {self._verb!r} on {self._stub.stub_ref}>"
