"""The client half of RPC: request/reply with retries and timeouts.

Implements the Birrell–Nelson discipline over the unreliable transport:

* a request is retransmitted on timeout, up to a retry budget;
* together with the server's replay cache this yields **at-most-once**
  execution with at-least-once delivery attempts;
* remote exceptions are re-raised locally, mapped back to library types
  where known;
* a **lightweight fast path** (cf. Bershad et al. 1989) short-circuits calls
  whose target lives in the calling context to a plain procedure call.

This module is deliberately proxy-agnostic: both the dumb stubs of
:mod:`repro.rpc.stubs` and the smart proxies of :mod:`repro.core.policies`
bottom out in :meth:`RpcProtocol.call`.
"""

from __future__ import annotations

from typing import Any

from ..kernel import errors as kernel_errors
from ..kernel.context import Context
from ..kernel.errors import (
    DanglingReference,
    DeadlineExceeded,
    DistributionError,
    InterfaceError,
    ObjectMoved,
    Overloaded,
    ReproError,
    RpcTimeout,
    StaleShardRing,
)
from ..resilience.deadline import Deadline
from ..resilience.retry import DEFAULT_RETRY, RetryPolicy
from ..wire.frames import (
    EXCEPTION,
    K_OVERLOAD,
    ONEWAY,
    REPLY,
    REQUEST,
    Frame,
    MessageIdMinter,
)
from ..wire.refs import ObjectRef
from .transport import Transport


class RemoteError(DistributionError):
    """An application exception raised by the remote object.

    Attributes:
        remote_type: class name of the original exception on the server.
    """

    def __init__(self, remote_type: str, message: str):
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type


#: Exception classes that are reconstructed as themselves when they cross the
#: wire (library errors plus common Python errors services raise).
_RAISABLE: dict[str, type[BaseException]] = {
    name: obj for name, obj in vars(kernel_errors).items()
    if isinstance(obj, type) and issubclass(obj, ReproError)
}
_RAISABLE.update({
    "KeyError": KeyError, "ValueError": ValueError, "TypeError": TypeError,
    "IndexError": IndexError, "FileNotFoundError": FileNotFoundError,
    "PermissionError": PermissionError, "RuntimeError": RuntimeError,
    "LookupError": LookupError, "ZeroDivisionError": ZeroDivisionError,
})


def remote_exception(name: str, message: str) -> BaseException:
    """Rebuild a remote exception from its class name and message.

    Known library and common Python exception types are reconstructed as
    themselves; everything else degrades to :class:`RemoteError`.  Shared
    by the reply acceptor below and by proxies that carry exceptions in
    marshalled wrappers (the replicated policy's versioned reads).
    """
    klass = _RAISABLE.get(name)
    if klass is not None:
        return klass(message)
    return RemoteError(name, message)


class RpcProtocol:
    """Synchronous request/reply over the simulated transport."""

    def __init__(self, system, transport: Transport | None = None):
        self.system = system
        self.transport = transport or system.transport or Transport(system)
        # Fixed for the system's lifetime (System.__init__ never swaps them);
        # cached to keep attribute chains off the per-call path.
        self._costs = system.costs
        self._network = system.network
        self.lrpc_enabled = True
        #: Coalesce same-window oneways per link into multi-reply frames.
        self.reply_batching = True
        #: Send time of the most recent call's first attempt (promise layer).
        self.last_sent_at: float | None = None
        #: Retry engine used when a call names no policy of its own.
        self.retry_policy: RetryPolicy = DEFAULT_RETRY
        self._minters: dict[str, MessageIdMinter] = {}
        self._retry_rng = system.seeds.stream("rpc.retry.jitter")
        # Attempt budget of the last policy seen (RetryPolicy is frozen
        # and the cost model is fixed, so the pair fully determines it).
        self._budget_policy: RetryPolicy | None = None
        self._budget_attempts = 0
        #: Stack of open staging windows (one per in-flight dispatch).
        self._windows: list[list] = []
        self.stats = {"calls": 0, "oneways": 0, "retries": 0, "timeouts": 0,
                      "local_fast_path": 0, "remote_exceptions": 0,
                      "deadline_exceeded": 0, "overload_sheds": 0,
                      "retry_after_waits": 0, "reply_batches": 0,
                      "coalesced_oneways": 0}
        system.rpc = self

    # -- public API ---------------------------------------------------------

    def call(self, src: Context, ref: ObjectRef, verb: str,
             args: tuple = (), kwargs: dict | None = None, *,
             retry: RetryPolicy | None = None,
             deadline: Deadline | None = None,
             headers: dict | None = None) -> Any:
        """Invoke ``verb`` on the object named by ``ref``, blocking for the reply.

        ``retry`` overrides the protocol's retransmission schedule for this
        call; ``deadline`` caps the call's total wait and travels in the
        request headers (merged with any deadline the serving context is
        itself under, so nested chains inherit the root caller's budget).
        ``headers`` are extra request-header entries (protocol extensions,
        e.g. the quorum envelopes of :mod:`repro.wire.versions`); they only
        apply to remote frames — the same-context fast path carries none.

        Raises the remote exception locally; raises
        :class:`~repro.kernel.errors.RpcTimeout` when the retry budget is
        exhausted without a reply, or :class:`~repro.kernel.errors.
        DeadlineExceeded` when the deadline expires first.
        """
        kwargs = kwargs or {}
        self.stats["calls"] += 1
        if self._windows and self._windows[-1]:
            # Staged oneways precede this call in program order; their
            # handlers (and any RNG they draw) must run before the
            # synchronous round trip below, exactly as the inline sends
            # did.
            self.flush_reply_window()
        enclosing = src.current_deadline
        if deadline is not None or enclosing is not None:
            deadline = Deadline.merge(deadline, enclosing)
        if self.lrpc_enabled and ref.context_id == src.context_id:
            return self._local_call(src, ref, verb, args, kwargs)
        if deadline is not None and deadline.expired(src.clock.now):
            self.stats["deadline_exceeded"] += 1
            raise DeadlineExceeded(
                f"{verb!r} on {ref}: budget spent before the first attempt")
        policy = retry or self.retry_policy
        frame = Frame(REQUEST, self._mint(src), src.context_id, ref.context_id,
                      target=ref.oid, verb=verb, body=(tuple(args), kwargs))
        if headers:
            frame.headers.update(headers)
        if deadline is not None:
            deadline.to_headers(frame.headers)
        data = self.transport.encode_frame(frame, src)
        if policy is self._budget_policy:
            attempts = self._budget_attempts
        else:
            attempts = policy.budget(self._costs)
            self._budget_policy = policy
            self._budget_attempts = attempts
        tracker = self.system.latency
        # The retransmission-timer interval is pure arithmetic for
        # jitter-free policies, and an attempt that gets its reply never
        # consults the timer — so ``patience`` and ``wait_until`` are
        # computed lazily, on the first timed-out attempt.  Jittered
        # policies draw from the seeded stream inside ``interval`` and must
        # keep drawing eagerly, once per attempt, in the original order.
        jittered = policy.jitter > 0.0
        patience = None
        for attempt in range(attempts):
            if attempt > 0:
                self.stats["retries"] += 1
            sent_at = src.clock.now
            if attempt == 0:
                # Consumed by the promise layer to overlap round trips.
                self.last_sent_at = sent_at
            if jittered:
                if patience is None:
                    patience = self._patience(src, ref, policy, tracker,
                                              len(data))
                wait_until = sent_at + policy.interval(attempt, patience,
                                                       self._retry_rng)
                if deadline is not None:
                    # A wait must never outlive the call's budget: the final
                    # attempt's timer is cut at the deadline instead of
                    # charging the full interval after the budget is spent.
                    wait_until = deadline.clamp(wait_until)
            else:
                wait_until = None
            reply = self._attempt(src, frame, data, sent_at)
            if reply is not None:
                hint = reply.headers.get(K_OVERLOAD) if reply.headers \
                    else None
                if hint is not None and policy.honor_retry_after:
                    # The server shed this attempt at admission and said
                    # when it expects capacity.  The shed reply was never
                    # cached server-side, so retransmitting the same
                    # frame is safe and will be re-admitted.  The server
                    # answered, so the breaker sees a success either way.
                    self.stats["overload_sheds"] += 1
                    exhausted = attempt + 1 >= attempts
                    beyond = deadline is not None \
                        and hint >= deadline.expires_at
                    if exhausted or beyond:
                        # No attempt can land within the budget: surface
                        # the rejection (``Overloaded``) rather than wait
                        # out a hint the deadline already forbids.
                        self._feed_breaker(src, ref, success=True)
                        return self._accept(src, ref, reply)
                    # Honor the hint exactly: wait until the server's
                    # stated time, not the backoff schedule.
                    self.stats["retry_after_waits"] += 1
                    src.clock.advance_to(hint)
                    continue
                if tracker is not None:
                    # Karn's rule analogue: only successful attempts are
                    # sampled, each against its own send time.
                    tracker.observe(src.context_id, ref.context_id,
                                    src.clock.now - sent_at)
                self._feed_breaker(src, ref, success=True)
                return self._accept(src, ref, reply)
            if wait_until is None:
                if patience is None:
                    patience = self._patience(src, ref, policy, tracker,
                                              len(data))
                wait_until = sent_at + policy.interval(attempt, patience,
                                                       self._retry_rng)
                if deadline is not None:
                    wait_until = deadline.clamp(wait_until)
            src.clock.advance_to(wait_until)
            if deadline is not None and deadline.expired(src.clock.now):
                self.stats["deadline_exceeded"] += 1
                self._feed_breaker(src, ref, success=False)
                raise DeadlineExceeded(
                    f"{verb!r} on {ref}: deadline spent after "
                    f"{attempt + 1} attempts")
        self.stats["timeouts"] += 1
        self._feed_breaker(src, ref, success=False)
        if patience is None:
            patience = self._patience(src, ref, policy, tracker, len(data))
        raise RpcTimeout(
            f"{verb!r} on {ref} failed after {attempts} attempts "
            f"({patience * 1e3:.1f} ms base timeout)")

    def _patience(self, src: Context, ref: ObjectRef, policy: RetryPolicy,
                  tracker, nbytes: int) -> float:
        """Base retransmission timeout for one call.

        Scales with the request size: a bulk argument legitimately takes
        longer than the base timeout to even reach the server
        (Birrell-Nelson RPC used per-packet acks for the same reason).
        """
        patience = self._costs.rpc_timeout + 2 * self._network.transit_time(
            src.node.name, ref.node_name, nbytes)
        if tracker is not None and getattr(policy, "adaptive", False):
            # Per-link patience: the Jacobson RTO from observed RTTs, with
            # the global constant as the cold-link fallback.
            patience = tracker.patience(src.context_id, ref.context_id,
                                        patience)
        return patience

    def send_oneway(self, src: Context, ref: ObjectRef, verb: str,
                    args: tuple = (), kwargs: dict | None = None) -> None:
        """Fire-and-forget invocation: no reply, no delivery guarantee."""
        self.stats["oneways"] += 1
        kwargs = kwargs or {}
        if self.lrpc_enabled and ref.context_id == src.context_id:
            if self._windows and self._windows[-1]:
                # Keep program order: earlier staged oneways ran before
                # this local invocation when sends were inline.
                self.flush_reply_window()
            try:
                self._local_call(src, ref, verb, args, kwargs)
            except ReproError:
                pass
            return
        frame = Frame(ONEWAY, self._mint(src), src.context_id, ref.context_id,
                      target=ref.oid, verb=verb, body=(tuple(args), kwargs))
        data = self.transport.encode_frame(frame, src)
        if self._windows and self._maybe_stage(src, frame, data):
            return
        delivery = self.transport.transmit(frame, data, src.clock.now)
        if delivery.delivered:
            try:
                dst = self.system.context(ref.context_id)
            except kernel_errors.ConfigurationError:
                return
            # Same liveness discipline as _attempt: a context whose node is
            # down must not execute, even if the message was already in
            # flight when the crash hit.
            if dst.handler is not None and dst.alive:
                dst.handler(data, delivery.arrive_time)

    # -- reply batching ------------------------------------------------------

    def open_reply_window(self) -> None:
        """Begin a staging window (one per in-flight dispatch tick)."""
        self._windows.append([])

    def close_reply_window(self) -> None:
        """End the current window, flushing anything still staged."""
        staged = self._windows.pop()
        if staged:
            self._flush_staged(staged)

    def flush_reply_window(self) -> None:
        """Deliver everything staged in the current window, keeping it
        open."""
        stack = self._windows
        if not stack:
            return
        staged = stack[-1]
        if staged:
            stack[-1] = []
            self._flush_staged(staged)

    def _maybe_stage(self, src: Context, frame: Frame, data) -> bool:
        """Stage an encoded oneway for the window flush, when safe.

        Safe means: the link is :meth:`~repro.kernel.network.Network.
        reliable` right now (delivery certain, no RNG draw to preserve)
        and the destination would accept the frame right now (same
        liveness discipline as the inline send).  Everything observable
        is pinned at stage time — the arrival instant uses the same
        float arithmetic as ``Network.transmit``, so deferring the
        handler call to the flush changes nothing in virtual time.
        Returns ``False`` when the caller must take the inline path,
        after flushing so program order survives (a lossy link's RNG
        draw has to happen after the staged handlers ran, exactly as it
        would have inline).
        """
        transport = self.transport
        src_node = src.node.name
        dst_node = transport.node_of(frame.dst)
        if not self._network.reliable(src_node, dst_node):
            if self._windows[-1]:
                self.flush_reply_window()
            return False
        try:
            dst = self.system.context(frame.dst)
        except kernel_errors.ConfigurationError:
            # Inline delivery would have been a silent no-op; staging it
            # would only inflate the batch.  Emit the send and move on.
            if self._windows[-1]:
                self.flush_reply_window()
            return False
        if dst.handler is None or not dst.alive:
            if self._windows[-1]:
                self.flush_reply_window()
            return False
        sent_at = src.clock.now
        arrive = sent_at + self._network.transit_time(src_node, dst_node,
                                                      len(data))
        if data.__class__ is not bytes:
            # A zero-copy message may hold mutable segments the caller
            # still owns; snapshot them once at stage time.
            data = data.freeze()
        self._windows[-1].append(
            (frame, data, sent_at, arrive, dst.handler, src, dst_node))
        return True

    def _flush_staged(self, staged: list) -> None:
        """Deliver staged oneways in program order, coalescing runs.

        Consecutive frames sharing one ``(src context, dst node)`` link
        collapse into a single multi-reply frame — one ``send`` event,
        one wire header, message count down by ``run - 1``.  A frame
        with no same-link neighbour replays the exact inline send (same
        trace event, same arrival).  Handlers run strictly in staging
        order either way, so cross-node interleavings — busy-line
        occupancy, seeded RNG consumers — are untouched.
        """
        transport = self.transport
        stats = self.stats
        n = len(staged)
        i = 0
        while i < n:
            frame, data, sent_at, arrive, handler, src, dst_node = staged[i]
            j = i + 1
            src_id = frame.src
            while j < n and staged[j][0].src == src_id \
                    and staged[j][6] == dst_node:
                j += 1
            if j - i == 1:
                transport.trace_send(frame, len(data), sent_at)
                handler(data, arrive)
            else:
                run = staged[i:j]
                subs = tuple(
                    (d if d.__class__ is bytes else d.to_bytes(), arr)
                    for _, d, _, arr, _, _, _ in run)
                batch = transport.encode_batch(src, dst_node, subs)
                # The sender already paid full marshal cost per sub-frame;
                # the batch header is free framing, so encode without a
                # charge.  Sent when its last member was produced.
                batch_data = batch.encode_message(transport.encoder_for(src))
                transport.trace_send(batch, len(batch_data), run[-1][2])
                stats["reply_batches"] += 1
                stats["coalesced_oneways"] += j - i
                for _, d, _, arr, h, _, _ in run:
                    h(d, arr)
            i = j

    def _feed_breaker(self, src: Context, ref: ObjectRef,
                      success: bool) -> None:
        """Report one call outcome to the breaker registry, when installed."""
        registry = self.system.breakers
        if registry is None:
            return
        if success:
            registry.record_success(src.context_id, ref.context_id,
                                    src.clock.now)
        else:
            registry.record_failure(src.context_id, ref.context_id,
                                    src.clock.now)

    # -- one attempt -----------------------------------------------------------

    def _attempt(self, src: Context, frame: Frame, data: bytes,
                 sent_at: float):
        """One request transmission; returns the decoded reply frame or None."""
        transport = self.transport
        delivery = transport.transmit(frame, data, sent_at)
        if not delivery.delivered:
            return None
        try:
            dst = self.system.context(frame.dst)
        except kernel_errors.ConfigurationError:
            return None
        if dst.handler is None or not dst.alive:
            return None
        outcome = dst.handler(data, delivery.arrive_time)
        if outcome is None:
            return None
        reply_data, ready = outcome
        back = transport.transmit_reply(frame.dst, frame.src,
                                        reply_data, ready)
        if not back.delivered:
            return None
        # Birrell-Nelson semantics: the retransmission timer exists to
        # detect *loss*, not slow servers — a live server's retransmission
        # acks keep the caller waiting as long as work is in progress.  In
        # the simulation, "both legs delivered" is exactly that case, so
        # the reply is accepted whenever it arrives; only a lost leg
        # triggers the timeout path.  (The caller's retry loop still paces
        # the waits between retransmissions on the loss path.)
        src.clock.advance_to(back.arrive_time)
        costs = self._costs
        src.charge(costs.marshal_fixed + len(reply_data) * costs.marshal_byte_cost)
        return transport.decode_frame(reply_data, src)

    def _accept(self, src: Context, ref: ObjectRef, reply: Frame) -> Any:
        """Turn a reply frame into a return value or a raised exception."""
        if reply.kind == REPLY:
            return reply.body
        if reply.kind == EXCEPTION:
            self.stats["remote_exceptions"] += 1
            name, message, detail = reply.body
            if name == "ObjectMoved":
                forward = None
                if detail is not None:
                    ctx_id, oid, iface, epoch, policy = detail
                    forward = ObjectRef(ctx_id, oid, iface, epoch, policy)
                raise ObjectMoved(message, forward=forward)
            if name == "StaleShardRing":
                raise StaleShardRing(message, ring_map=detail)
            if name == "Overloaded":
                hint = reply.headers.get(K_OVERLOAD) if reply.headers \
                    else None
                raise Overloaded(message, retry_after=hint)
            raise remote_exception(name, message)
        raise kernel_errors.ProtocolError(f"unexpected reply kind {reply.kind!r}")

    # -- local fast path ---------------------------------------------------------

    def _local_call(self, src: Context, ref: ObjectRef, verb: str,
                    args: tuple, kwargs: dict) -> Any:
        """Same-context invocation: plain procedure call, no marshalling."""
        self.stats["local_fast_path"] += 1
        entry = src.exports.get(ref.oid)
        if entry is None or entry.revoked:
            raise DanglingReference(
                f"context {src.context_id!r} exports no object {ref.oid!r}")
        if entry.moved_to is not None:
            raise ObjectMoved(f"object {ref.oid!r} migrated", forward=entry.moved_to)
        if verb not in entry.interface:
            raise InterfaceError(
                f"interface {entry.interface.name!r} declares no operation {verb!r}")
        op = entry.interface.operation(verb)
        src.charge(self.system.costs.local_call + op.compute)
        self.system.trace.emit(src.clock.now, "invoke", src.context_id,
                               src.context_id, verb)
        return getattr(entry.obj, verb)(*args, **kwargs)

    def _mint(self, src: Context) -> int:
        minter = self._minters.get(src.context_id)
        if minter is None:
            minter = MessageIdMinter()
            self._minters[src.context_id] = minter
        return minter.mint()
