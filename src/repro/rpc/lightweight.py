"""Lightweight-RPC helpers (cf. Bershad et al., SOSP 1989).

The observation the LRPC work made — most invocations in practice are local —
is implemented in :class:`~repro.rpc.protocol.RpcProtocol` as the
same-context fast path.  This module provides the predicates and the
experiment toggle used by E8.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..kernel.context import Context
from ..wire.refs import ObjectRef


def same_context(context: Context, ref: ObjectRef) -> bool:
    """Whether ``ref``'s target lives in ``context`` itself."""
    return ref.context_id == context.context_id


def same_node(context: Context, ref: ObjectRef) -> bool:
    """Whether ``ref``'s target lives on the same node as ``context``."""
    return ref.node_name == context.node.name


def fast_path_available(protocol, context: Context, ref: ObjectRef) -> bool:
    """Whether a call through ``protocol`` would take the LRPC fast path."""
    return protocol.lrpc_enabled and same_context(context, ref)


@contextmanager
def lrpc_disabled(protocol):
    """Temporarily force every call onto the full marshalling path.

    Used by the E8 bench to measure what the fast path saves; real systems
    cannot turn it off, which is rather the point.
    """
    previous = protocol.lrpc_enabled
    protocol.lrpc_enabled = False
    try:
        yield protocol
    finally:
        protocol.lrpc_enabled = previous


@contextmanager
def lrpc_enabled(protocol):
    """Temporarily enable the fast path (symmetric with :func:`lrpc_disabled`)."""
    previous = protocol.lrpc_enabled
    protocol.lrpc_enabled = True
    try:
        yield protocol
    finally:
        protocol.lrpc_enabled = previous
