"""Promises: asynchronous invocation with deferred synchronisation.

The synchronous call of :mod:`repro.rpc.protocol` wastes the network round
trip: the client idles while the request travels.  Promises (cf. Liskov &
Shrira's promises, 1988 — a direct descendant of the proxy lineage) let a
client issue several invocations back-to-back and synchronise later::

    p1 = call_async(kv, "get", "a")
    p2 = call_async(kv, "get", "b")     # overlaps with p1's round trip
    a, b = p1.wait(), p2.wait()

Simulation model: the call executes eagerly (the simulated server processes
it at its true arrival time, queueing behind earlier work), but the
*client's* clock is rewound to the moment the request left, so client-side
time overlaps outstanding calls exactly as a real asynchronous runtime
would.  ``wait`` advances the client to the reply's arrival (no-op if it
already passed).  Server-side effect ordering follows issue order.

Promises are also the concurrency primitive under hedged requests
(:mod:`repro.resilience.policy`): the hedging proxy issues the primary and
a delayed backup as promises, waits the winner, and :meth:`Promise.discard`
s the loser — a discarded result is recorded in the trace (kind
``"promise"``, label ``"dropped-unwaited"``) so dropped work stays visible
to debugging.
"""

from __future__ import annotations

from typing import Any

from ..kernel.context import Context
from ..kernel.errors import ReproError, SimulationError
from ..core.proxy import Proxy


class Promise:
    """A value (or error) that becomes available at a known virtual time."""

    __slots__ = ("_context", "_value", "_error", "_ready_at", "_waited",
                 "_discarded")

    def __init__(self, context: Context, value: Any, error: ReproError | None,
                 ready_at: float):
        self._context = context
        self._value = value
        self._error = error
        self._ready_at = ready_at
        self._waited = False
        self._discarded = False

    @property
    def ready_at(self) -> float:
        """Virtual time at which the result is available."""
        return self._ready_at

    @property
    def succeeded(self) -> bool:
        """Whether the call completed without an error (pre-synchronisation
        peek — consumers still :meth:`wait` or :meth:`discard`)."""
        return self._error is None

    @property
    def error(self) -> ReproError | None:
        """The call's error, if any, without raising it."""
        return self._error

    def is_ready(self) -> bool:
        """Whether the result has arrived by the caller's current time."""
        return self._context.clock.now >= self._ready_at

    @property
    def discarded(self) -> bool:
        """Whether the result was abandoned via :meth:`discard`."""
        return self._discarded

    def wait(self) -> Any:
        """Block (advance virtual time) until the result arrives, then
        return it — or raise the call's error.

        A discarded promise cannot be waited on: its result was abandoned
        (and traced as dropped), so consuming it afterwards is a logic
        error and raises :class:`~repro.kernel.errors.SimulationError`.
        """
        if self._discarded:
            raise SimulationError(
                "cannot wait on a discarded promise; its result was "
                "abandoned")
        self._context.clock.advance_to(self._ready_at)
        self._waited = True
        if self._error is not None:
            raise self._error
        return self._value

    def discard(self) -> bool:
        """Abandon the result without synchronising on it.  Idempotent.

        Used for hedged losers: the race is settled, the slower answer is
        garbage.  Returns ``True`` when an unconsumed result was actually
        dropped (and records exactly one ``"promise"``/``"dropped-unwaited"``
        trace event so silently discarded work is debuggable); ``False``
        when the promise had already been waited on or discarded — a
        repeated discard, or a discard after :meth:`wait`, is a no-op that
        emits nothing.
        """
        if self._waited or self._discarded:
            return False
        self._discarded = True
        self._context.system.trace.emit(
            self._context.clock.now, "promise", self._context.context_id,
            "", "dropped-unwaited")
        return True

    def __repr__(self) -> str:
        state = "ready" if self.is_ready() else f"at {self._ready_at:.6f}"
        return f"Promise({state})"


def call_async(target: Proxy, verb: str, *args, retry=None, deadline=None,
               **kwargs) -> Promise:
    """Issue an invocation without waiting for the reply.

    ``target`` must be a proxy (or stub-compatible object exposing
    ``proxy_context``/``proxy_ref``).  The request is sent through the raw
    binding — policy intelligence (caches, batches) is deliberately not
    consulted: a promise is a handle on one real round trip.

    ``retry`` and ``deadline`` (:mod:`repro.resilience`) pass straight
    through to :meth:`~repro.rpc.protocol.RpcProtocol.call`; remote
    operations taking keyword arguments of those names must be invoked
    synchronously instead.
    """
    context = target.proxy_context
    ref = target.proxy_ref
    protocol = target.proxy_protocol
    issue_time = context.clock.now
    error: ReproError | None = None
    value: Any = None
    try:
        value = protocol.call(context, ref, verb, args, kwargs,
                              retry=retry, deadline=deadline)
    except ReproError as exc:
        error = exc
    ready_at = context.clock.now
    # Rewind the client to the instant the request left; the reply's true
    # arrival is stored on the promise.  (The server already processed the
    # request on the un-rewound timeline, so its queueing is exact.)
    sent_at = getattr(protocol, "last_sent_at", None)
    if sent_at is None or sent_at < issue_time:
        sent_at = issue_time
    context.clock.reset(max(issue_time, min(sent_at, ready_at)))
    return Promise(context, value, error, ready_at)


def gather(promises: list[Promise]) -> list[Any]:
    """Wait for every promise, in order; returns their values."""
    return [promise.wait() for promise in promises]


def pipeline_calls(target: Proxy, calls: list[tuple],
                   window: int | None = None) -> list[Any]:
    """Issue ``calls`` (``(verb, *args)`` tuples) with overlap and collect
    all results.  ``window`` bounds the number outstanding at once."""
    results: list[Any] = []
    outstanding: list[Promise] = []
    for call in calls:
        verb, *args = call
        outstanding.append(call_async(target, verb, *args))
        if window is not None and len(outstanding) >= window:
            results.append(outstanding.pop(0).wait())
    results.extend(promise.wait() for promise in outstanding)
    return results
