"""Transport: context-to-context frame carriage.

Sits between the RPC protocol and the kernel network.  Encoding happens with
the *sender's* marshalling hooks and decoding with the *receiver's* — this is
where the proxy principle's reference swizzling physically occurs: an
exported object leaves its home context as an :class:`ObjectRef` and
materialises in the destination context as a proxy.

The transport also charges marshalling CPU to the sender and unmarshalling
CPU to the receiver, and records every transmission in the system trace.

Hot path: a :class:`~repro.wire.marshal.Marshaller` is stateless apart from
its hooks, so the transport keeps one encoder and one decoder per context
instead of allocating a fresh pair for every frame.  The cache is validated
against the context's *current* hook on every use (hooks are installed once,
when the object space attaches, which may be after the first frame), so a
stale marshaller can never be applied.
"""

from __future__ import annotations

from ..kernel.system import System
from ..wire.frames import MREPLY, Frame
from ..wire.marshal import Marshaller


class Transport:
    """Frame carriage over the simulated network."""

    def __init__(self, system: System):
        self.system = system
        # Fixed for the system's lifetime; cached off the per-frame path.
        self._trace = system.trace
        self._network = system.network
        self._costs = system.costs
        self._encoders: dict[str, Marshaller] = {}
        self._decoders: dict[str, Marshaller] = {}
        self._labels: dict[tuple[str, str], str] = {}
        self._node_names: dict[str, str] = {}
        system.transport = self

    # -- marshalling with per-context hooks -----------------------------------

    def encoder_for(self, context) -> Marshaller:
        """Marshaller applying ``context``'s outbound swizzle hook."""
        hook = context.encoder_hook
        marshaller = self._encoders.get(context.context_id)
        if marshaller is None or marshaller.encoder_hook is not hook:
            marshaller = Marshaller(encoder_hook=hook)
            self._encoders[context.context_id] = marshaller
        return marshaller

    def decoder_for(self, context) -> Marshaller:
        """Marshaller applying ``context``'s inbound swizzle hook."""
        hook = context.decoder_hook
        marshaller = self._decoders.get(context.context_id)
        if marshaller is None or marshaller.decoder_hook is not hook:
            marshaller = Marshaller(decoder_hook=hook)
            self._decoders[context.context_id] = marshaller
        return marshaller

    def encode_frame(self, frame: Frame, src_ctx=None) -> bytes:
        """Encode ``frame`` with the sending context's hooks, charging CPU.

        Callers that already hold the sending context pass it as ``src_ctx``
        to skip the id lookup; it must be the context named by ``frame.src``.
        """
        if src_ctx is None:
            src_ctx = self.system.context(frame.src)
        data = frame.encode_message(self.encoder_for(src_ctx))
        costs = self._costs
        src_ctx.charge(costs.marshal_fixed + len(data) * costs.marshal_byte_cost)
        return data

    def decode_frame(self, data, dst_context) -> Frame:
        """Decode wire bytes (or a ``WireMessage``) with the receiving
        context's hooks.

        CPU is charged by the caller (the dispatcher), which knows the
        receiving activity's time cursor.
        """
        return Frame.decode_message(data, self.decoder_for(dst_context))

    # -- reply batching --------------------------------------------------------

    def encode_batch(self, src_ctx, dst_node: str, subs: tuple) -> Frame:
        """Build the multi-reply frame carrying ``subs`` to ``dst_node``.

        ``subs`` is a tuple of ``(wire_image, arrive)`` pairs — each the
        contiguous bytes of an already-encoded (and already-charged)
        sub-frame plus its original arrival instant.  The batch frame
        itself is *not* charged: the sender paid full marshal cost per
        sub-frame when it encoded them, and coalescing is pure framing.
        The frame is unminted (``msg_id == 0``) — nothing replies to it.
        """
        return Frame(MREPLY, 0, src_ctx.context_id, dst_node, body=subs)

    @staticmethod
    def unbatch(frame: Frame) -> tuple:
        """The ``(wire_image, arrive)`` pairs carried by a multi-reply
        frame."""
        return frame.body

    def unmarshal_cost(self, nbytes: int) -> float:
        """CPU seconds to unmarshal an ``nbytes`` frame."""
        costs = self._costs
        return costs.marshal_fixed + nbytes * costs.marshal_byte_cost

    # -- transmission ----------------------------------------------------------

    def transmit(self, frame: Frame, data: bytes, at: float):
        """Send pre-encoded frame bytes; returns the kernel `Delivery`.

        Records a ``send`` trace event regardless of outcome (the sender did
        the work); drops are recorded by the network itself.
        """
        src = frame.src
        dst = frame.dst
        key = (frame.kind, frame.verb)
        label = self._labels.get(key)
        if label is None:
            label = f"{frame.kind}:{frame.verb}" if frame.verb else frame.kind
            self._labels[key] = label
        nbytes = len(data)
        self._trace.emit(at, "send", src, dst, label, nbytes)
        names = self._node_names
        src_node = names.get(src)
        if src_node is None:
            src_node = names[src] = src.split("/", 1)[0]
        dst_node = names.get(dst)
        if dst_node is None:
            dst_node = names[dst] = dst.split("/", 1)[0]
        return self._network.transmit(src_node, dst_node, nbytes, at)

    def trace_send(self, frame: Frame, nbytes: int, at: float) -> None:
        """Record the ``send`` trace event of :meth:`transmit` without
        touching the network.

        Used by the reply-batching flush for frames whose delivery was
        already committed at stage time over a link that
        :meth:`~repro.kernel.network.Network.reliable` vouched for — on
        such a link :meth:`transmit` has no observable effect beyond
        this event (no drop, no RNG draw), so the flush replays exactly
        the event the inline send would have produced.
        """
        key = (frame.kind, frame.verb)
        label = self._labels.get(key)
        if label is None:
            label = f"{frame.kind}:{frame.verb}" if frame.verb else frame.kind
            self._labels[key] = label
        self._trace.emit(at, "send", frame.src, frame.dst, label, nbytes)

    def node_of(self, context_id: str) -> str:
        """Node name of a context id (memoised split)."""
        names = self._node_names
        node = names.get(context_id)
        if node is None:
            node = names[context_id] = context_id.split("/", 1)[0]
        return node

    def transmit_reply(self, src: str, dst: str, data: bytes, at: float):
        """Send reply bytes back to the caller.

        Identical trace and network behaviour to :meth:`transmit` with a
        verb-less reply frame — without requiring the caller to build one
        just to carry the four header fields.
        """
        nbytes = len(data)
        self._trace.emit(at, "send", src, dst, "rep", nbytes)
        names = self._node_names
        src_node = names.get(src)
        if src_node is None:
            src_node = names[src] = src.split("/", 1)[0]
        dst_node = names.get(dst)
        if dst_node is None:
            dst_node = names[dst] = dst.split("/", 1)[0]
        return self._network.transmit(src_node, dst_node, nbytes, at)
