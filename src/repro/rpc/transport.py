"""Transport: context-to-context frame carriage.

Sits between the RPC protocol and the kernel network.  Encoding happens with
the *sender's* marshalling hooks and decoding with the *receiver's* — this is
where the proxy principle's reference swizzling physically occurs: an
exported object leaves its home context as an :class:`ObjectRef` and
materialises in the destination context as a proxy.

The transport also charges marshalling CPU to the sender and unmarshalling
CPU to the receiver, and records every transmission in the system trace.
"""

from __future__ import annotations

from ..kernel.system import System
from ..wire.frames import Frame
from ..wire.marshal import Marshaller


class Transport:
    """Frame carriage over the simulated network."""

    def __init__(self, system: System):
        self.system = system
        system.transport = self

    # -- marshalling with per-context hooks -----------------------------------

    def encoder_for(self, context) -> Marshaller:
        """Marshaller applying ``context``'s outbound swizzle hook."""
        return Marshaller(encoder_hook=context.encoder_hook)

    def decoder_for(self, context) -> Marshaller:
        """Marshaller applying ``context``'s inbound swizzle hook."""
        return Marshaller(decoder_hook=context.decoder_hook)

    def encode_frame(self, frame: Frame) -> bytes:
        """Encode ``frame`` with the sending context's hooks, charging CPU."""
        src_ctx = self.system.context(frame.src)
        data = frame.encode(self.encoder_for(src_ctx))
        costs = self.system.costs
        src_ctx.charge(costs.marshal_fixed + len(data) * costs.marshal_byte_cost)
        return data

    def decode_frame(self, data: bytes, dst_context) -> Frame:
        """Decode wire bytes with the receiving context's hooks.

        CPU is charged by the caller (the dispatcher), which knows the
        receiving activity's time cursor.
        """
        return Frame.decode(data, self.decoder_for(dst_context))

    def unmarshal_cost(self, nbytes: int) -> float:
        """CPU seconds to unmarshal an ``nbytes`` frame."""
        costs = self.system.costs
        return costs.marshal_fixed + nbytes * costs.marshal_byte_cost

    # -- transmission ----------------------------------------------------------

    def transmit(self, frame: Frame, data: bytes, at: float):
        """Send pre-encoded frame bytes; returns the kernel `Delivery`.

        Records a ``send`` trace event regardless of outcome (the sender did
        the work); drops are recorded by the network itself.
        """
        src_node = frame.src.split("/", 1)[0]
        dst_node = frame.dst.split("/", 1)[0]
        self.system.trace.emit(at, "send", frame.src, frame.dst,
                               f"{frame.kind}:{frame.verb}" if frame.verb else frame.kind,
                               len(data))
        return self.system.network.transmit(src_node, dst_node, len(data), at)
