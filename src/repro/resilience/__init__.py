"""Resilience: backoff, deadlines, circuit breakers, and failover.

The primitives that keep a proxy useful when the network is lossy and nodes
crash — each one client-side distribution policy in the paper's sense,
packaged so services can ship them inside the proxies they choose:

* :class:`RetryPolicy` — the pluggable retransmission schedule behind
  :meth:`repro.rpc.protocol.RpcProtocol.call` (fixed = the 1984 discipline,
  exponential-with-jitter = the modern one);
* :class:`Deadline` — an absolute virtual-time budget that travels in frame
  headers, stopping nested call chains from retrying past the root caller's
  patience;
* :class:`CircuitBreaker` / :class:`BreakerRegistry` — per caller→target
  fail-fast gates fed by RPC outcomes, exchanged with the failure detector;
* :class:`LinkEstimator` / :class:`LatencyTracker` — Jacobson RTT EWMAs per
  caller→target link, fed by RPC outcomes, behind adaptive retry patience,
  hedge delays, and derived deadline budgets;
* :class:`HedgePolicy` — the hedged-request schedule consumed by the
  ``resilient`` policy's read path;
* :class:`ResilientProxy` / :func:`resilient_group` — the policy that
  composes all of the above with read failover and graceful degradation.

Attributes resolve lazily (PEP 562): the RPC layer imports
``repro.resilience.deadline`` while ``repro`` itself is still initialising,
so this ``__init__`` must not eagerly pull in :mod:`repro.metrics` (via the
breaker) or :mod:`repro.core` (via the policy).
"""

from __future__ import annotations

from importlib import import_module

#: Public name -> defining submodule.
_EXPORTS = {
    "CLOSED": "breaker",
    "HALF_OPEN": "breaker",
    "OPEN": "breaker",
    "BreakerRegistry": "breaker",
    "CircuitBreaker": "breaker",
    "ensure_breakers": "breaker",
    "DEADLINE_HEADER": "deadline",
    "Deadline": "deadline",
    "LatencyTracker": "latency",
    "LinkEstimator": "latency",
    "ensure_latency": "latency",
    "ResilientProxy": "policy",
    "resilient_group": "policy",
    "DEFAULT_RETRY": "retry",
    "HedgePolicy": "retry",
    "RetryPolicy": "retry",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(f".{module}", __name__), name)
    globals()[name] = value  # cache: resolve each name once
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
