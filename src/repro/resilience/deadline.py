"""Per-call deadlines: an absolute virtual-time budget that travels.

A :class:`Deadline` is the resilience layer's answer to retry amplification:
without one, a chain of proxies each retrying on its own clock multiplies
the root caller's wait by the depth of the chain.  With one,

* the client stamps the expiry into the request frame's headers
  (:data:`DEADLINE_HEADER`), so the budget crosses the wire;
* the server skips dispatch entirely when the request arrives past its
  expiry (the caller has given up — executing would waste server time and
  can no longer help anyone);
* while a request *is* dispatched, the dispatcher parks the deadline on the
  serving context (``context.current_deadline``), so any nested outbound
  call the handler makes inherits the tightest enclosing budget.

Deadlines are absolute virtual times, not durations: every context clock in
the simulation advances on the same timeline, so an absolute expiry needs no
translation between caller and server (the 1986 equivalent would assume
loosely synchronised clocks; gRPC ships absolute deadlines the same way).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernel.errors import DeadlineExceeded

#: Frame-header key under which a deadline crosses the wire.
DEADLINE_HEADER = "deadline"


@dataclass(frozen=True)
class Deadline:
    """An absolute virtual-time expiry for one call tree.

    Attributes:
        expires_at: virtual time after which the work is worthless.
    """

    expires_at: float

    @classmethod
    def after(cls, now: float, budget: float) -> "Deadline":
        """A deadline ``budget`` seconds from ``now``."""
        return cls(now + budget)

    def remaining(self, now: float) -> float:
        """Budget left at ``now`` (negative once expired)."""
        return self.expires_at - now

    def expired(self, now: float) -> bool:
        """Whether the budget is spent at ``now``."""
        return now >= self.expires_at

    def clamp(self, when: float) -> float:
        """``when``, cut back to the expiry — a wait must not outlive it."""
        return min(when, self.expires_at)

    def check(self, now: float, what: str = "call") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        if self.expired(now):
            raise DeadlineExceeded(
                f"{what}: deadline passed {now - self.expires_at:.6f}s ago")

    @staticmethod
    def merge(*deadlines: "Deadline | None") -> "Deadline | None":
        """The tightest of the given deadlines (``None`` entries ignored)."""
        tightest: Deadline | None = None
        for deadline in deadlines:
            if deadline is None:
                continue
            if tightest is None or deadline.expires_at < tightest.expires_at:
                tightest = deadline
        return tightest

    @staticmethod
    def from_headers(headers: dict | None) -> "Deadline | None":
        """Recover a deadline from frame headers (``None`` when absent)."""
        if not headers:
            return None
        expires_at = headers.get(DEADLINE_HEADER)
        return None if expires_at is None else Deadline(float(expires_at))

    def to_headers(self, headers: dict) -> dict:
        """Stamp this deadline into a frame-header dict; returns it."""
        headers[DEADLINE_HEADER] = self.expires_at
        return headers

    def __repr__(self) -> str:
        return f"Deadline(expires_at={self.expires_at:.6f})"
