"""The ``resilient`` policy: backoff, deadlines, breakers, and failover.

This proxy composes the resilience primitives into one client-side
representative — which is the proxy principle's point: the *service* ships
the distribution policy, and the client gets availability engineering it
never wrote.  Per operation the proxy

1. consults the circuit breaker for the destination and **fails fast**
   (:class:`~repro.kernel.errors.CircuitOpen`, one local check's worth of
   virtual time) instead of burning a retry budget against a dead context;
2. calls through with an **exponential-backoff** retry schedule and a
   per-call **deadline** (both from ``proxy_config``), so a struggling
   destination is neither hammered in lockstep nor waited on forever;
3. on failure **fails over reads** to the configured replicas, nearest
   breaker-admitted candidate first;
4. optionally **hedges reads**: the primary request is issued as a
   single-attempt promise, and after a per-link p95-ish delay
   (``system.latency``) a backup request races it to the nearest
   breaker-admitted replica — first answer wins, the loser is
   :meth:`~repro.rpc.promises.Promise.discard`-ed, both outcomes land in
   the breaker registry, and if both legs lose the serial walk of step 3
   takes over with the full retry budget;
5. when every candidate is down, **degrades gracefully**: a read is served
   from the proxy's stale-value cache (last successfully read value), and
   any operation can fall back to a user-installed ``proxy_fallback`` hook
   before the error finally propagates.

Configuration (all marshallable, shipped by the exporter):

* ``retry`` — dict for :meth:`RetryPolicy.from_config` (default:
  exponential, 4 attempts, multiplier 2.0, jitter 0.1); add
  ``"adaptive": true`` to pace retransmissions by the link's observed RTT
  instead of the global ``costs.rpc_timeout``;
* ``call_budget`` — per-call deadline budget in virtual seconds (optional;
  when omitted and a latency tracker is installed, a default budget is
  derived from the link's RTO once it is warm — disable with
  ``"adaptive_budget": false``);
* ``hedge`` — ``true`` or a dict for :meth:`HedgePolicy.from_config`
  (default off): hedge read-only operations after the per-link delay (or
  an explicit ``{"delay": seconds}``);
* ``replicas`` — list of :class:`~repro.wire.refs.ObjectRef` read-failover
  candidates (optional);
* ``breaker`` — dict of :class:`~repro.resilience.breaker.BreakerRegistry`
  defaults (``failure_threshold``/``reset_timeout``/``half_open_probes``);
* ``stale_reads`` — serve cached reads when all candidates fail
  (default true).

Deployment helper: :func:`resilient_group` deploys a primary plus read
replicas and returns the client-facing reference, mirroring
:func:`repro.core.policies.replicating.replicate`.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.factory import register_policy
from ..core.proxy import Proxy
from ..kernel.errors import (
    CircuitOpen,
    DistributionError,
    ObjectMoved,
    Overloaded,
)
from ..wire.refs import ObjectRef
from .breaker import ensure_breakers
from .deadline import Deadline
from .latency import ensure_latency
from .retry import HedgePolicy, RetryPolicy


@register_policy
class ResilientProxy(Proxy):
    """Breaker-gated, deadline-bounded, backoff-paced forwarding proxy."""

    policy_name = "resilient"

    def __init__(self, context, ref, interface, config=None):
        super().__init__(context, ref, interface, config)
        self._replicas: list | None = None
        self._retry: RetryPolicy | None = None
        self._hedge: HedgePolicy | None = None
        self._stale: dict = {}
        #: Last-resort hook: ``fallback(verb, args, kwargs) -> value``,
        #: consulted after every candidate and the stale cache failed.
        self.proxy_fallback: Callable | None = None
        self.proxy_stats.update(reads=0, writes=0, fast_fails=0,
                                failovers=0, stale_serves=0, fallbacks=0,
                                hedges=0, hedge_wins=0, overloads=0)

    # -- lifecycle ----------------------------------------------------------

    def proxy_install(self) -> None:
        self._retry = RetryPolicy.from_config(self.proxy_config.get("retry"))
        self._hedge = HedgePolicy.from_config(self.proxy_config.get("hedge"))
        ensure_breakers(self.proxy_context.system,
                        **self.proxy_config.get("breaker", {}))
        if self._retry.adaptive or self._hedge is not None:
            # Both knobs need per-link RTT state; installing the tracker
            # here means every call this system makes from now on feeds it.
            ensure_latency(self.proxy_context.system)

    # -- knobs --------------------------------------------------------------

    @property
    def proxy_retry(self) -> RetryPolicy:
        """The retry schedule this proxy paces calls with."""
        if self._retry is None:
            self.proxy_install()
        return self._retry

    def _breakers(self):
        registry = self.proxy_context.system.breakers
        if registry is None:
            registry = ensure_breakers(self.proxy_context.system,
                                       **self.proxy_config.get("breaker", {}))
        return registry

    def _deadline(self) -> Deadline | None:
        ctx = self.proxy_context
        budget = self.proxy_config.get("call_budget")
        if budget is not None:
            return Deadline.after(ctx.clock.now, float(budget))
        # No explicit budget: derive one from the link's observed RTT once
        # a tracker is installed and the link is warm — the worst-case wall
        # time of the whole retry schedule paced by the Jacobson RTO.
        tracker = ctx.system.latency
        if tracker is None or not self.proxy_config.get("adaptive_budget",
                                                        True):
            return None
        budget = tracker.budget(ctx.context_id, self.proxy_ref.context_id,
                                self.proxy_retry)
        if budget is None:
            return None
        return Deadline.after(ctx.clock.now, budget)

    def _resolve_replicas(self) -> list:
        """Sub-proxies for the read-failover candidates, fetched lazily."""
        if self._replicas is not None:
            return self._replicas
        raw = self.proxy_config.get("replicas")
        if raw is None and not self.proxy_handshaken:
            self.proxy_context.space.upgrade(self)
            raw = self.proxy_config.get("replicas")
        space = self.proxy_context.space
        replicas = []
        for item in raw or []:
            if isinstance(item, ObjectRef):
                item = space.bind_ref(item, handshake=False)
            replicas.append(item)
        self._replicas = replicas
        return replicas

    # -- invocation ---------------------------------------------------------

    def invoke(self, verb: str, args: tuple, kwargs: dict) -> Any:
        self.proxy_stats["invocations"] += 1
        op = self.proxy_interface.operation(verb)
        if op.oneway or self.proxy_is_local:
            return self.proxy_remote(verb, args, kwargs)
        readonly = op.readonly
        self.proxy_stats["reads" if readonly else "writes"] += 1
        deadline = self._deadline()
        candidates: list = [None]  # None = the primary binding
        if readonly:
            candidates += self._resolve_replicas()
        registry = self._breakers()
        ctx = self.proxy_context
        knobs = self.proxy_config.get("breaker", {})
        if readonly and self._hedge is not None:
            hedged = self._try_hedged(verb, args, kwargs, deadline,
                                      candidates[1:], registry, knobs)
            if hedged is not None:
                self._remember(verb, args, kwargs, hedged[0])
                return hedged[0]
            # Not applicable or both legs lost: the serial walk below is
            # the slow path (and redoes the primary with the full budget).
        last_error: DistributionError | None = None
        admitted = 0
        for index, candidate in enumerate(candidates):
            if deadline is not None and deadline.expired(ctx.clock.now):
                break
            target_id = self._target_id(candidate)
            if target_id is not None:
                # configure(), not between(): the pair's breaker usually
                # predates this proxy (handshake traffic created it with
                # registry defaults), and the policy's knobs must win.
                breaker = registry.configure(ctx.context_id, target_id,
                                             **knobs)
                if not breaker.allow(ctx.clock.now):
                    # Fast fail: the refusal costs one local check, not a
                    # retry budget — that asymmetry is the breaker's value.
                    ctx.charge(ctx.system.costs.local_call)
                    self.proxy_stats["fast_fails"] += 1
                    continue
            admitted += 1
            if index > 0:
                self.proxy_stats["failovers"] += 1
            try:
                result = self._call(candidate, verb, args, kwargs, deadline)
            except DistributionError as exc:
                if isinstance(exc, Overloaded):
                    # The destination shed the call at admission; the shed
                    # is definitely-not-executed, so failover is safe even
                    # for writes — but count it so operators can tell
                    # "server said no" apart from "server went away".
                    self.proxy_stats["overloads"] += 1
                last_error = exc
                continue
            if readonly:
                self._remember(verb, args, kwargs, result)
            return result
        return self._degrade(verb, args, kwargs, readonly,
                             last_error, admitted)

    # -- internals ----------------------------------------------------------

    def _target_id(self, candidate) -> str | None:
        """Destination context of one candidate (None = no breaker gate)."""
        if candidate is None:
            return self.proxy_ref.context_id
        if isinstance(candidate, Proxy):
            return candidate.proxy_ref.context_id
        return None  # a co-located raw replica cannot be "down"

    def _call(self, candidate, verb: str, args: tuple, kwargs: dict,
              deadline: Deadline | None) -> Any:
        if candidate is None:
            return self.proxy_remote(verb, args, kwargs,
                                     retry=self.proxy_retry, deadline=deadline)
        if isinstance(candidate, Proxy):
            return candidate.proxy_remote(verb, args, kwargs,
                                          retry=self.proxy_retry,
                                          deadline=deadline)
        self.proxy_context.charge(self.proxy_context.system.costs.local_call)
        return getattr(candidate, verb)(*args, **kwargs)

    # -- hedged reads --------------------------------------------------------

    def _try_hedged(self, verb: str, args: tuple, kwargs: dict,
                    deadline: Deadline | None, replicas: list,
                    registry, knobs: dict):
        """Race the primary against one delayed backup replica.

        Each leg is a **single attempt**: hedging spreads redundancy across
        replicas instead of across time, so a lost request is covered by the
        other leg rather than by its own retransmissions (gRPC draws the
        same line — a call hedges or retries, never both).  The discipline
        also keeps the promise model honest: a multi-attempt leg abandoned
        by the race would still have walked the simulated server's queue
        through its whole retry schedule, and the queueing delay it left
        behind would poison every later RTT sample on the link.

        Returns ``(value,)`` when either leg won.  Returns ``None`` when
        hedging is not applicable right now — no breaker-admitted remote
        replica, primary breaker open, no deadline room for the backup —
        *or* when both single-shot legs lost; either way the caller falls
        through to the serial failover walk, which retries with the full
        budget on a consistent timeline.
        """
        from ..rpc.promises import call_async
        ctx = self.proxy_context
        now = ctx.clock.now
        backup = self._hedge_candidate(replicas, registry, knobs, now)
        if backup is None:
            return None
        primary_breaker = registry.configure(ctx.context_id,
                                             self.proxy_ref.context_id,
                                             **knobs)
        if not primary_breaker.would_allow(now):
            return None
        delay = self._hedge_delay()
        fire_at = now + delay
        if deadline is not None and deadline.expired(fire_at):
            return None
        leg_retry = RetryPolicy(attempts=1,
                                adaptive=self.proxy_retry.adaptive)
        primary_breaker.allow(now)
        primary = call_async(self, verb, *args, retry=leg_retry,
                             deadline=deadline, **kwargs)
        if primary.succeeded and primary.ready_at <= fire_at:
            return (primary.wait(),)    # answered inside the hedge window
        # The primary is late (or already known lost): launch the backup.
        # Both legs' outcomes reach the breaker registry through the
        # protocol's feed, so a hedged loss still counts against its link.
        self.proxy_stats["hedges"] += 1
        registry.configure(ctx.context_id, backup.proxy_ref.context_id,
                           **knobs).allow(fire_at)
        ctx.clock.advance_to(fire_at)
        contender = call_async(backup, verb, *args, retry=leg_retry,
                               deadline=deadline, **kwargs)
        moved = primary.error
        if isinstance(moved, ObjectMoved) and moved.forward is not None:
            # Keep migration transparency: the next call dials the new home
            # instead of paying a doomed primary leg every time.
            self.proxy_rebind(moved.forward)
        racers = [p for p in (primary, contender) if p.succeeded]
        if not racers:
            primary.discard()
            contender.discard()
            return None
        winner = min(racers, key=lambda promise: promise.ready_at)
        if winner is contender:
            self.proxy_stats["hedge_wins"] += 1
        for promise in (primary, contender):
            if promise is not winner:
                promise.discard()
        return (winner.wait(),)

    def _hedge_candidate(self, replicas: list, registry, knobs: dict,
                         now: float):
        """The nearest breaker-admitted remote replica, or ``None``.

        Survey uses :meth:`CircuitBreaker.would_allow` so ranking consumes
        no half-open probes; the chosen backup's probe is consumed by the
        caller when it actually dials.
        """
        ctx = self.proxy_context
        network = ctx.system.network
        best = None
        best_distance = None
        for candidate in replicas:
            if not isinstance(candidate, Proxy):
                continue    # a co-located raw replica has no async binding
            target_id = candidate.proxy_ref.context_id
            if target_id == self.proxy_ref.context_id:
                continue    # a backup to the same context hedges nothing
            breaker = registry.configure(ctx.context_id, target_id, **knobs)
            if not breaker.would_allow(now):
                continue
            distance = network.transit_time(
                ctx.node.name, candidate.proxy_ref.node_name, 0)
            if best_distance is None or distance < best_distance:
                best, best_distance = candidate, distance
        return best

    def _hedge_delay(self) -> float:
        """The backup-launch delay: explicit, else per-link p95-ish."""
        ctx = self.proxy_context
        if self._hedge.delay is not None:
            return self._hedge.delay
        fallback = ctx.system.costs.rpc_timeout / 2.0
        tracker = ctx.system.latency
        if tracker is None:
            return fallback
        return tracker.hedge_delay(ctx.context_id, self.proxy_ref.context_id,
                                   fallback)

    def _degrade(self, verb: str, args: tuple, kwargs: dict, readonly: bool,
                 last_error: DistributionError | None, admitted: int) -> Any:
        """Every candidate failed or was refused: serve stale, fall back,
        or finally raise."""
        if readonly and self.proxy_config.get("stale_reads", True):
            key = self._cache_key(verb, args, kwargs)
            if key is not None and key in self._stale:
                self.proxy_stats["stale_serves"] += 1
                return self._stale[key]
        if self.proxy_fallback is not None:
            self.proxy_stats["fallbacks"] += 1
            return self.proxy_fallback(verb, args, kwargs)
        if last_error is not None:
            raise last_error
        if admitted == 0:
            raise CircuitOpen(
                f"{verb!r} on {self.proxy_ref}: every candidate refused "
                "by an open breaker")
        raise CircuitOpen(f"{verb!r} on {self.proxy_ref}: no candidate answered")

    def _remember(self, verb: str, args: tuple, kwargs: dict,
                  value: Any) -> None:
        key = self._cache_key(verb, args, kwargs)
        if key is not None:
            self._stale[key] = value

    @staticmethod
    def _cache_key(verb: str, args: tuple, kwargs: dict):
        try:
            return (verb, args, tuple(sorted(kwargs.items())))
        except TypeError:
            return None  # unhashable arguments: this read is uncacheable


def resilient_group(contexts: list, factory: Callable[[], object],
                    interface=None, retry: dict | None = None,
                    call_budget: float | None = None,
                    breaker: dict | None = None,
                    stale_reads: bool = True,
                    hedge: bool | dict | None = None) -> ObjectRef:
    """Deploy a primary plus read replicas under the ``resilient`` policy.

    One instance from ``factory`` runs in each of ``contexts``; the first is
    the primary (all writes land there), the rest are read-failover
    candidates.  Replicas receive no writes after deployment — reads served
    from them (or from the proxy's stale cache) may lag the primary, which
    is the availability-over-freshness trade the policy makes explicit.

    Returns the client-facing reference; clients that bind it receive a
    :class:`ResilientProxy`.
    """
    from ..core.export import get_space
    from ..iface.adapters import make_delegate
    from ..iface.interface import Interface
    if not contexts:
        raise ValueError("resilient_group() needs at least one context")
    primary = factory()
    if interface is None:
        interface = Interface.of(type(primary))
    replica_refs = [get_space(ctx).export(factory(), interface=interface,
                                          policy="stub")
                    for ctx in contexts[1:]]
    config: dict = {"replicas": replica_refs, "stale_reads": stale_reads}
    if retry is not None:
        config["retry"] = retry
    if call_budget is not None:
        config["call_budget"] = call_budget
    if breaker is not None:
        config["breaker"] = breaker
    if hedge is not None:
        config["hedge"] = hedge
    coordinator = make_delegate(primary, interface)
    return get_space(contexts[0]).export(coordinator, interface=interface,
                                         policy="resilient", config=config)
