"""The ``resilient`` policy: backoff, deadlines, breakers, and failover.

This proxy composes the resilience primitives into one client-side
representative — which is the proxy principle's point: the *service* ships
the distribution policy, and the client gets availability engineering it
never wrote.  Per operation the proxy

1. consults the circuit breaker for the destination and **fails fast**
   (:class:`~repro.kernel.errors.CircuitOpen`, one local check's worth of
   virtual time) instead of burning a retry budget against a dead context;
2. calls through with an **exponential-backoff** retry schedule and a
   per-call **deadline** (both from ``proxy_config``), so a struggling
   destination is neither hammered in lockstep nor waited on forever;
3. on failure **fails over reads** to the configured replicas, nearest
   breaker-admitted candidate first;
4. when every candidate is down, **degrades gracefully**: a read is served
   from the proxy's stale-value cache (last successfully read value), and
   any operation can fall back to a user-installed ``proxy_fallback`` hook
   before the error finally propagates.

Configuration (all marshallable, shipped by the exporter):

* ``retry`` — dict for :meth:`RetryPolicy.from_config` (default:
  exponential, 4 attempts, multiplier 2.0, jitter 0.1);
* ``call_budget`` — per-call deadline budget in virtual seconds (optional);
* ``replicas`` — list of :class:`~repro.wire.refs.ObjectRef` read-failover
  candidates (optional);
* ``breaker`` — dict of :class:`~repro.resilience.breaker.BreakerRegistry`
  defaults (``failure_threshold``/``reset_timeout``/``half_open_probes``);
* ``stale_reads`` — serve cached reads when all candidates fail
  (default true).

Deployment helper: :func:`resilient_group` deploys a primary plus read
replicas and returns the client-facing reference, mirroring
:func:`repro.core.policies.replicating.replicate`.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.factory import register_policy
from ..core.proxy import Proxy
from ..kernel.errors import CircuitOpen, DistributionError
from ..wire.refs import ObjectRef
from .breaker import ensure_breakers
from .deadline import Deadline
from .retry import RetryPolicy


@register_policy
class ResilientProxy(Proxy):
    """Breaker-gated, deadline-bounded, backoff-paced forwarding proxy."""

    policy_name = "resilient"

    def __init__(self, context, ref, interface, config=None):
        super().__init__(context, ref, interface, config)
        self._replicas: list | None = None
        self._retry: RetryPolicy | None = None
        self._stale: dict = {}
        #: Last-resort hook: ``fallback(verb, args, kwargs) -> value``,
        #: consulted after every candidate and the stale cache failed.
        self.proxy_fallback: Callable | None = None
        self.proxy_stats.update(reads=0, writes=0, fast_fails=0,
                                failovers=0, stale_serves=0, fallbacks=0)

    # -- lifecycle ----------------------------------------------------------

    def proxy_install(self) -> None:
        self._retry = RetryPolicy.from_config(self.proxy_config.get("retry"))
        ensure_breakers(self.proxy_context.system,
                        **self.proxy_config.get("breaker", {}))

    # -- knobs --------------------------------------------------------------

    @property
    def proxy_retry(self) -> RetryPolicy:
        """The retry schedule this proxy paces calls with."""
        if self._retry is None:
            self.proxy_install()
        return self._retry

    def _breakers(self):
        registry = self.proxy_context.system.breakers
        if registry is None:
            registry = ensure_breakers(self.proxy_context.system,
                                       **self.proxy_config.get("breaker", {}))
        return registry

    def _deadline(self) -> Deadline | None:
        budget = self.proxy_config.get("call_budget")
        if budget is None:
            return None
        return Deadline.after(self.proxy_context.clock.now, float(budget))

    def _resolve_replicas(self) -> list:
        """Sub-proxies for the read-failover candidates, fetched lazily."""
        if self._replicas is not None:
            return self._replicas
        raw = self.proxy_config.get("replicas")
        if raw is None and not self.proxy_handshaken:
            self.proxy_context.space.upgrade(self)
            raw = self.proxy_config.get("replicas")
        space = self.proxy_context.space
        replicas = []
        for item in raw or []:
            if isinstance(item, ObjectRef):
                item = space.bind_ref(item, handshake=False)
            replicas.append(item)
        self._replicas = replicas
        return replicas

    # -- invocation ---------------------------------------------------------

    def invoke(self, verb: str, args: tuple, kwargs: dict) -> Any:
        self.proxy_stats["invocations"] += 1
        op = self.proxy_interface.operation(verb)
        if op.oneway or self.proxy_is_local:
            return self.proxy_remote(verb, args, kwargs)
        readonly = op.readonly
        self.proxy_stats["reads" if readonly else "writes"] += 1
        deadline = self._deadline()
        candidates: list = [None]  # None = the primary binding
        if readonly:
            candidates += self._resolve_replicas()
        registry = self._breakers()
        ctx = self.proxy_context
        knobs = self.proxy_config.get("breaker", {})
        last_error: DistributionError | None = None
        admitted = 0
        for index, candidate in enumerate(candidates):
            if deadline is not None and deadline.expired(ctx.clock.now):
                break
            target_id = self._target_id(candidate)
            if target_id is not None:
                # configure(), not between(): the pair's breaker usually
                # predates this proxy (handshake traffic created it with
                # registry defaults), and the policy's knobs must win.
                breaker = registry.configure(ctx.context_id, target_id,
                                             **knobs)
                if not breaker.allow(ctx.clock.now):
                    # Fast fail: the refusal costs one local check, not a
                    # retry budget — that asymmetry is the breaker's value.
                    ctx.charge(ctx.system.costs.local_call)
                    self.proxy_stats["fast_fails"] += 1
                    continue
            admitted += 1
            if index > 0:
                self.proxy_stats["failovers"] += 1
            try:
                result = self._call(candidate, verb, args, kwargs, deadline)
            except DistributionError as exc:
                last_error = exc
                continue
            if readonly:
                self._remember(verb, args, kwargs, result)
            return result
        return self._degrade(verb, args, kwargs, readonly,
                             last_error, admitted)

    # -- internals ----------------------------------------------------------

    def _target_id(self, candidate) -> str | None:
        """Destination context of one candidate (None = no breaker gate)."""
        if candidate is None:
            return self.proxy_ref.context_id
        if isinstance(candidate, Proxy):
            return candidate.proxy_ref.context_id
        return None  # a co-located raw replica cannot be "down"

    def _call(self, candidate, verb: str, args: tuple, kwargs: dict,
              deadline: Deadline | None) -> Any:
        if candidate is None:
            return self.proxy_remote(verb, args, kwargs,
                                     retry=self.proxy_retry, deadline=deadline)
        if isinstance(candidate, Proxy):
            return candidate.proxy_remote(verb, args, kwargs,
                                          retry=self.proxy_retry,
                                          deadline=deadline)
        self.proxy_context.charge(self.proxy_context.system.costs.local_call)
        return getattr(candidate, verb)(*args, **kwargs)

    def _degrade(self, verb: str, args: tuple, kwargs: dict, readonly: bool,
                 last_error: DistributionError | None, admitted: int) -> Any:
        """Every candidate failed or was refused: serve stale, fall back,
        or finally raise."""
        if readonly and self.proxy_config.get("stale_reads", True):
            key = self._cache_key(verb, args, kwargs)
            if key is not None and key in self._stale:
                self.proxy_stats["stale_serves"] += 1
                return self._stale[key]
        if self.proxy_fallback is not None:
            self.proxy_stats["fallbacks"] += 1
            return self.proxy_fallback(verb, args, kwargs)
        if last_error is not None:
            raise last_error
        if admitted == 0:
            raise CircuitOpen(
                f"{verb!r} on {self.proxy_ref}: every candidate refused "
                "by an open breaker")
        raise CircuitOpen(f"{verb!r} on {self.proxy_ref}: no candidate answered")

    def _remember(self, verb: str, args: tuple, kwargs: dict,
                  value: Any) -> None:
        key = self._cache_key(verb, args, kwargs)
        if key is not None:
            self._stale[key] = value

    @staticmethod
    def _cache_key(verb: str, args: tuple, kwargs: dict):
        try:
            return (verb, args, tuple(sorted(kwargs.items())))
        except TypeError:
            return None  # unhashable arguments: this read is uncacheable


def resilient_group(contexts: list, factory: Callable[[], object],
                    interface=None, retry: dict | None = None,
                    call_budget: float | None = None,
                    breaker: dict | None = None,
                    stale_reads: bool = True) -> ObjectRef:
    """Deploy a primary plus read replicas under the ``resilient`` policy.

    One instance from ``factory`` runs in each of ``contexts``; the first is
    the primary (all writes land there), the rest are read-failover
    candidates.  Replicas receive no writes after deployment — reads served
    from them (or from the proxy's stale cache) may lag the primary, which
    is the availability-over-freshness trade the policy makes explicit.

    Returns the client-facing reference; clients that bind it receive a
    :class:`ResilientProxy`.
    """
    from ..core.export import get_space
    from ..iface.adapters import make_delegate
    from ..iface.interface import Interface
    if not contexts:
        raise ValueError("resilient_group() needs at least one context")
    primary = factory()
    if interface is None:
        interface = Interface.of(type(primary))
    replica_refs = [get_space(ctx).export(factory(), interface=interface,
                                          policy="stub")
                    for ctx in contexts[1:]]
    config: dict = {"replicas": replica_refs, "stale_reads": stale_reads}
    if retry is not None:
        config["retry"] = retry
    if call_budget is not None:
        config["call_budget"] = call_budget
    if breaker is not None:
        config["breaker"] = breaker
    coordinator = make_delegate(primary, interface)
    return get_space(contexts[0]).export(coordinator, interface=interface,
                                         policy="resilient", config=config)
