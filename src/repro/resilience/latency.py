"""Per-link adaptive timeouts: Jacobson RTT estimation per caller→target.

The protocol's base patience is a *global* cost-model constant
(``costs.rpc_timeout``), which is wrong in both directions at once: a fast
LAN link waits 20 ms to detect a loss it could have detected in 3, while a
WAN link gets retransmitted into while the first request is still in
flight.  The classic fix is Jacobson's TCP estimator (SIGCOMM '88): track a
smoothed RTT and its mean deviation per link, and derive the
retransmission timeout as ``srtt + k·rttvar``.

Per the proxy principle this is client-side distribution policy, so it
lives in the resilience layer, keyed exactly like the breaker registry —
one :class:`LinkEstimator` per (caller context, target context) pair, all
of them in a :class:`LatencyTracker` on ``system.latency``.  Once a
tracker is installed, :meth:`repro.rpc.protocol.RpcProtocol.call` feeds
every successful call's RTT into it; a :class:`~repro.resilience.retry.
RetryPolicy` with ``adaptive=True`` then derives its base patience from
the link instead of the global constant, and the hedging path of
:class:`~repro.resilience.policy.ResilientProxy` derives its p95-ish
hedge delay the same way.

Only *successful* attempts are sampled (Karn's rule: an RTT measured from
a retransmitted exchange is ambiguous on real wires; here each attempt's
reply is matched exactly, but the discipline keeps loss spikes from
polluting the estimate with timeout-shaped samples).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Jacobson's gains: srtt moves by 1/8 of the error, rttvar by 1/4.
DEFAULT_ALPHA = 0.125
DEFAULT_BETA = 0.25
#: Deviation multiplier in the timeout: rto = srtt + k * rttvar.
DEFAULT_K = 4.0
#: Samples a link needs before its estimate is trusted over the fallback.
DEFAULT_WARMUP = 4
#: Floor under any derived timeout (a clock-tick analogue; keeps a
#: same-node link from deriving a timeout below its own jitter).
DEFAULT_MIN_TIMEOUT = 5e-4


@dataclass
class LinkEstimator:
    """Jacobson RTT state for one caller→target context pair.

    Attributes:
        caller: calling context id (bookkeeping only).
        target: destination context id.
        alpha: smoothing gain of the mean (``srtt``).
        beta: smoothing gain of the deviation (``rttvar``).
        k: deviation multiplier in :meth:`rto`.
        warmup: samples required before :meth:`mature` turns true.
        min_timeout: floor under :meth:`rto` and :meth:`hedge_delay`.
        srtt: smoothed round-trip time (seconds; 0 before any sample).
        rttvar: smoothed mean deviation of the RTT.
        samples: number of RTTs observed.
    """

    caller: str = ""
    target: str = ""
    alpha: float = DEFAULT_ALPHA
    beta: float = DEFAULT_BETA
    k: float = DEFAULT_K
    warmup: int = DEFAULT_WARMUP
    min_timeout: float = DEFAULT_MIN_TIMEOUT
    srtt: float = field(default=0.0)
    rttvar: float = field(default=0.0)
    samples: int = field(default=0)

    def observe(self, rtt: float) -> None:
        """Fold one successful round trip into the estimate.

        First sample initialises ``srtt = rtt`` and ``rttvar = rtt / 2``
        (RFC 6298); later samples apply the Jacobson recurrences, with
        ``rttvar`` updated from the *previous* ``srtt``, as specified.
        """
        if rtt < 0.0:
            raise ValueError(f"negative RTT sample {rtt!r}")
        if self.samples == 0:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = ((1.0 - self.beta) * self.rttvar
                           + self.beta * abs(self.srtt - rtt))
            self.srtt = (1.0 - self.alpha) * self.srtt + self.alpha * rtt
        self.samples += 1

    @property
    def mature(self) -> bool:
        """Whether the link has seen enough samples to trust the estimate."""
        return self.samples >= self.warmup

    def rto(self) -> float:
        """Retransmission timeout for this link: ``srtt + k·rttvar``."""
        return max(self.min_timeout, self.srtt + self.k * self.rttvar)

    def hedge_delay(self) -> float:
        """A p95-ish wait before launching a backup request.

        ``srtt + 2·rttvar`` sits near the 95th percentile of a well-behaved
        link's RTT distribution — late enough that most requests never
        hedge, early enough that a lost or straggling request is covered
        long before the full :meth:`rto`.  On a very stable link the mean
        deviation collapses toward zero, which would put the delay *at* the
        mean and hedge every other request; a proportional margin floor
        (half the smoothed RTT) keeps the trigger above ordinary jitter.
        """
        margin = max(2.0 * self.rttvar, 0.5 * self.srtt)
        return max(self.min_timeout, self.srtt + margin)

    def __repr__(self) -> str:
        return (f"LinkEstimator({self.caller!r}->{self.target!r}, "
                f"srtt={self.srtt * 1e3:.3f}ms, "
                f"rttvar={self.rttvar * 1e3:.3f}ms, n={self.samples})")


class LatencyTracker:
    """All link estimators of one system, keyed (caller, target).

    Installed on ``system.latency`` by :func:`ensure_latency`; from then on
    the RPC protocol feeds every successful call's RTT in, whoever made the
    call — the same single-feed-point discipline as ``system.breakers``.
    Consumers ask :meth:`patience` / :meth:`hedge_delay` / :meth:`budget`
    with an explicit fallback, which is returned untouched until the link
    is mature, so systems that never warm a link keep the global behaviour.
    """

    def __init__(self, system, alpha: float = DEFAULT_ALPHA,
                 beta: float = DEFAULT_BETA, k: float = DEFAULT_K,
                 warmup: int = DEFAULT_WARMUP,
                 min_timeout: float = DEFAULT_MIN_TIMEOUT):
        self.system = system
        self.defaults = {"alpha": alpha, "beta": beta, "k": k,
                         "warmup": warmup, "min_timeout": min_timeout}
        self._links: dict[tuple[str, str], LinkEstimator] = {}
        self.samples_total = 0

    # -- lookup --------------------------------------------------------------

    def link(self, caller_id: str, target_id: str) -> LinkEstimator:
        """The estimator for one caller→target pair (created on first use)."""
        key = (caller_id, target_id)
        estimator = self._links.get(key)
        if estimator is None:
            estimator = LinkEstimator(caller=caller_id, target=target_id,
                                      **self.defaults)
            self._links[key] = estimator
        return estimator

    def peek(self, caller_id: str, target_id: str) -> LinkEstimator | None:
        """The estimator for one pair, or ``None`` if never observed."""
        return self._links.get((caller_id, target_id))

    # -- sample feed (called by RpcProtocol) ---------------------------------

    def observe(self, caller_id: str, target_id: str, rtt: float) -> None:
        """Feed one successful call's round-trip time."""
        self.samples_total += 1
        self.link(caller_id, target_id).observe(rtt)

    # -- derived policy inputs -----------------------------------------------

    def patience(self, caller_id: str, target_id: str,
                 fallback: float) -> float:
        """Base retransmission patience for one link.

        The Jacobson RTO once the link is mature; ``fallback`` (the global
        ``rpc_timeout``-derived patience) until then.
        """
        estimator = self.peek(caller_id, target_id)
        if estimator is None or not estimator.mature:
            return fallback
        return estimator.rto()

    def hedge_delay(self, caller_id: str, target_id: str,
                    fallback: float) -> float:
        """p95-ish backup-request delay for one link (``fallback`` until
        the link is mature)."""
        estimator = self.peek(caller_id, target_id)
        if estimator is None or not estimator.mature:
            return fallback
        return estimator.hedge_delay()

    def budget(self, caller_id: str, target_id: str, policy) -> float | None:
        """A default per-call deadline budget derived from the link.

        The worst-case wall time of ``policy``'s whole schedule paced by
        the link's RTO (:meth:`RetryPolicy.total_wait`); ``None`` until the
        link is mature, so callers fall back to "no deadline" rather than
        guessing.
        """
        estimator = self.peek(caller_id, target_id)
        if estimator is None or not estimator.mature:
            return None
        return policy.total_wait(estimator.rto())

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> dict[tuple[str, str], float]:
        """Current RTO of every observed link (seconds)."""
        return {key: estimator.rto()
                for key, estimator in self._links.items()}

    def __len__(self) -> int:
        return len(self._links)

    def __repr__(self) -> str:
        return (f"LatencyTracker({len(self._links)} links, "
                f"{self.samples_total} samples)")


def ensure_latency(system, **defaults) -> LatencyTracker:
    """Get or install the system's latency tracker.

    ``defaults`` apply only when the tracker is created here; an existing
    tracker keeps its configuration (same contract as
    :func:`~repro.resilience.breaker.ensure_breakers`).
    """
    tracker = system.latency
    if tracker is None:
        tracker = LatencyTracker(system, **defaults)
        system.latency = tracker
    return tracker
