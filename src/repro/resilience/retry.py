"""Retry policies: the pluggable engine behind the RPC retransmission loop.

The Birrell–Nelson client retransmits on timeout.  *When* it retransmits is
distribution policy, and per the proxy principle that belongs to the layer
the service controls — so the schedule is a value, not code baked into the
protocol: :class:`RetryPolicy` maps an attempt number to that attempt's
retransmission-timer interval.

Two standard shapes:

* :meth:`RetryPolicy.fixed` — every attempt waits the same base patience;
  this is the classic 1984 discipline and the protocol-wide default (it
  keeps a lightly loaded system maximally responsive).
* :meth:`RetryPolicy.exponential` — intervals grow by ``multiplier`` per
  attempt with proportional jitter, the modern discipline that stops a
  lossy or overloaded destination from being hammered in lockstep by every
  client at once.

Jitter is drawn from a **seeded** stream (:mod:`repro.kernel.randomness`),
so a retry schedule is exactly reproducible: same seed, same backoff, same
trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """A retransmission schedule.

    Attributes:
        attempts: total send attempts (first try + retries); ``None`` defers
            to the cost model (``1 + costs.rpc_max_retries``).
        multiplier: growth factor of the interval per attempt (1.0 = fixed).
        jitter: proportional jitter amplitude in [0, 1): each interval is
            scaled by a factor drawn uniformly from ``[1 - jitter,
            1 + jitter]``.  0 disables the draw entirely.
        max_interval: cap on any single interval (seconds; ``None`` = no cap).
        adaptive: derive the base patience from the link's observed RTT
            (Jacobson RTO via ``system.latency``) instead of the global
            ``costs.rpc_timeout``; a no-op until a
            :class:`~repro.resilience.latency.LatencyTracker` is installed
            and the link is warm.
        honor_retry_after: when a server sheds a call at admission with a
            retry-after hint (:mod:`repro.kernel.admission`), wait until
            exactly the hinted virtual time before retransmitting instead
            of running the backoff schedule — the server knows when it
            will have capacity; backing off further just wastes budget,
            and retrying sooner just gets shed again.  Disabled, the
            rejection surfaces immediately as
            :class:`~repro.kernel.errors.Overloaded`.
    """

    attempts: int | None = None
    multiplier: float = 1.0
    jitter: float = 0.0
    max_interval: float | None = None
    adaptive: bool = False
    honor_retry_after: bool = True

    def __post_init__(self):
        if self.attempts is not None and self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts!r}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1.0, got {self.multiplier!r}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter!r}")

    # -- the engine interface (consumed by RpcProtocol.call) -----------------

    def budget(self, costs) -> int:
        """Total attempts for one call under the given cost model."""
        if self.attempts is not None:
            return self.attempts
        return 1 + costs.rpc_max_retries

    def interval(self, attempt: int, patience: float,
                 rng: random.Random | None = None) -> float:
        """Retransmission-timer interval for ``attempt`` (0-based).

        ``patience`` is the base timeout the protocol computed for this call
        (cost-model timeout plus size-scaled transit); the policy shapes it.
        """
        wait = patience * (self.multiplier ** attempt)
        if self.max_interval is not None:
            wait = min(wait, self.max_interval)
        if self.jitter > 0.0 and rng is not None:
            wait *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return wait

    def total_wait(self, patience: float) -> float:
        """Sum of all intervals, jitter-free (the worst-case wall budget)."""
        return sum(self.interval(attempt, patience)
                   for attempt in range(self.attempts or 1))

    # -- constructors ---------------------------------------------------------

    @classmethod
    def fixed(cls, attempts: int | None = None) -> "RetryPolicy":
        """The legacy schedule: identical patience-paced attempts."""
        return cls(attempts=attempts)

    @classmethod
    def exponential(cls, attempts: int = 4, multiplier: float = 2.0,
                    jitter: float = 0.1,
                    max_interval: float | None = None,
                    adaptive: bool = False) -> "RetryPolicy":
        """Exponential backoff with proportional jitter."""
        return cls(attempts=attempts, multiplier=multiplier, jitter=jitter,
                   max_interval=max_interval, adaptive=adaptive)

    @classmethod
    def from_config(cls, config: dict | None,
                    default: "RetryPolicy | None" = None) -> "RetryPolicy":
        """Build a policy from a marshallable config dict.

        ``None`` yields ``default`` (or the exponential policy when no
        default is given) so resilience-aware proxies back off out of the
        box; an explicit dict overrides field by field.
        """
        if config is None:
            return default if default is not None else cls.exponential()
        return cls(attempts=config.get("attempts", 4),
                   multiplier=config.get("multiplier", 2.0),
                   jitter=config.get("jitter", 0.1),
                   max_interval=config.get("max_interval"),
                   adaptive=config.get("adaptive", False),
                   honor_retry_after=config.get("retry_after", True))


#: The protocol-wide default: the classic fixed-interval discipline.
DEFAULT_RETRY = RetryPolicy.fixed()


@dataclass(frozen=True)
class HedgePolicy:
    """A hedged-request schedule: when to launch the backup.

    A hedged read issues the primary request, waits ``delay`` (or the
    per-link p95-ish delay from ``system.latency`` when ``delay`` is
    ``None``), and — if no answer has arrived — launches one backup request
    to the nearest breaker-admitted replica, taking whichever answer lands
    first.  Only read-only operations hedge: the backup goes to a
    *different* object (a replica), so the replay cache's at-most-once
    guarantee covers retransmissions of each leg but not cross-replica
    writes.

    Attributes:
        delay: explicit backup delay in virtual seconds; ``None`` derives
            a p95-ish delay from the link's observed RTT (falling back to
            half the global ``rpc_timeout`` while the link is cold).
    """

    delay: float | None = None

    def __post_init__(self):
        if self.delay is not None and self.delay < 0.0:
            raise ValueError(f"hedge delay must be >= 0, got {self.delay!r}")

    @classmethod
    def from_config(cls, config) -> "HedgePolicy | None":
        """Build a hedge policy from a marshallable config value.

        ``None``/``False`` disables hedging; ``True`` enables it with the
        adaptive per-link delay; a dict overrides field by field.
        """
        if config is None or config is False:
            return None
        if config is True:
            return cls()
        if isinstance(config, HedgePolicy):
            return config
        return cls(delay=config.get("delay"))
