"""Circuit breakers: fail fast instead of burning retry budgets.

Once a destination has eaten a few full retry budgets, the *next* call is
overwhelmingly likely to eat one too — and a client that keeps trying turns
one slow failure into many.  The breaker is the standard cure (Nygard's
pattern, Finagle/gRPC practice), and per the proxy principle it lives on the
client side, inside the proxy, as part of the distribution policy the
service shipped.

State machine (per caller-context → target-context pair):

* **CLOSED** — calls flow; consecutive failures are counted, successes
  reset the count; at ``failure_threshold`` the breaker trips to OPEN.
* **OPEN** — calls are refused locally (:class:`~repro.kernel.errors.
  CircuitOpen` costs a local check, not a retry budget) until
  ``reset_timeout`` virtual seconds have passed.
* **HALF_OPEN** — after the cooldown, up to ``half_open_probes`` trial
  calls are let through; a success closes the breaker, a failure reopens
  it (and restarts the cooldown).

The :class:`BreakerRegistry` hangs off the :class:`~repro.kernel.system.
System` (``system.breakers``); once installed, the RPC protocol feeds every
call outcome into it, so *all* traffic — not just the resilient proxy's —
keeps the failure picture fresh.  Transitions are recorded as ``"breaker"``
trace events and metrics counters, and the registry exchanges suspicion
with the heartbeat :class:`~repro.failures.detector.FailureDetector`
(``trip_target`` / ``open_toward``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Consecutive failures that trip a CLOSED breaker.
DEFAULT_FAILURE_THRESHOLD = 5
#: Virtual seconds an OPEN breaker waits before probing again.
DEFAULT_RESET_TIMEOUT = 0.25
#: Trial calls admitted while HALF_OPEN.
DEFAULT_HALF_OPEN_PROBES = 1


@dataclass
class CircuitBreaker:
    """Failure-rate gate for one caller→target context pair.

    Attributes:
        caller: calling context id (bookkeeping / trace only).
        target: destination context id.
        failure_threshold: consecutive failures that trip the breaker.
        reset_timeout: cooldown before an OPEN breaker admits a probe.
        half_open_probes: trial calls admitted while HALF_OPEN.
        on_transition: callback ``(breaker, old_state, new_state, now)``.
    """

    caller: str = ""
    target: str = ""
    failure_threshold: int = DEFAULT_FAILURE_THRESHOLD
    reset_timeout: float = DEFAULT_RESET_TIMEOUT
    half_open_probes: int = DEFAULT_HALF_OPEN_PROBES
    on_transition: Callable | None = None
    _state: str = field(default=CLOSED, repr=False)
    _failures: int = field(default=0, repr=False)
    _opened_at: float = field(default=0.0, repr=False)
    _probes_in_flight: int = field(default=0, repr=False)
    stats: dict = field(default_factory=lambda: {
        "successes": 0, "failures": 0, "fast_fails": 0,
        "trips": 0, "resets": 0})

    # -- queries -----------------------------------------------------------

    def state(self, now: float) -> str:
        """Current state at virtual time ``now`` (cooldown-aware)."""
        if self._state == OPEN and now - self._opened_at >= self.reset_timeout:
            return HALF_OPEN
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success (while CLOSED)."""
        return self._failures

    def would_allow(self, now: float) -> bool:
        """Whether :meth:`allow` would admit a call at ``now``, without
        consuming a half-open probe or counting a fast fail.

        Candidate-ranking code (e.g. the hedging proxy picking the nearest
        healthy replica) uses this to survey breakers non-destructively,
        then calls :meth:`allow` on the one it actually dials.
        """
        state = self.state(now)
        if state == CLOSED:
            return True
        if state == HALF_OPEN:
            probes = 0 if self._state == OPEN else self._probes_in_flight
            return probes < self.half_open_probes
        return False

    # -- the gate ----------------------------------------------------------

    def allow(self, now: float) -> bool:
        """Whether a call may proceed at ``now``.

        An OPEN breaker whose cooldown has elapsed transitions to HALF_OPEN
        here and admits up to ``half_open_probes`` trials; refused calls are
        counted as ``fast_fails``.
        """
        state = self.state(now)
        if state == CLOSED:
            return True
        if state == HALF_OPEN:
            if self._state == OPEN:  # cooldown just elapsed: transition now
                self._transition(HALF_OPEN, now)
                self._probes_in_flight = 0
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
        self.stats["fast_fails"] += 1
        return False

    # -- outcome feed ------------------------------------------------------

    def record_success(self, now: float) -> None:
        """One call to the target succeeded."""
        self.stats["successes"] += 1
        self._failures = 0
        if self._state == HALF_OPEN:
            self.stats["resets"] += 1
            self._probes_in_flight = 0
            self._transition(CLOSED, now)

    def record_failure(self, now: float) -> None:
        """One call to the target failed (timeout / deadline / transport)."""
        self.stats["failures"] += 1
        if self._state == HALF_OPEN:
            self._probes_in_flight = 0
            self._trip(now)
        elif self._state == CLOSED:
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._trip(now)
        else:  # OPEN: a straggling in-flight failure restarts the cooldown
            self._opened_at = now

    def trip(self, now: float) -> None:
        """Force-open (e.g. the failure detector suspects the target)."""
        if self._state != OPEN:
            self._trip(now)
        else:
            self._opened_at = now

    def reset(self, now: float) -> None:
        """Force-close (e.g. the detector saw the target recover)."""
        self._failures = 0
        self._probes_in_flight = 0
        if self._state != CLOSED:
            self.stats["resets"] += 1
            self._transition(CLOSED, now)

    # -- internals ---------------------------------------------------------

    def _trip(self, now: float) -> None:
        self.stats["trips"] += 1
        self._opened_at = now
        self._transition(OPEN, now)

    def _transition(self, new_state: str, now: float) -> None:
        old_state, self._state = self._state, new_state
        if old_state != new_state and self.on_transition is not None:
            self.on_transition(self, old_state, new_state, now)

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.caller!r}->{self.target!r}, "
                f"{self._state}, failures={self._failures})")


class BreakerRegistry:
    """All breakers of one system, keyed (caller context, target context).

    Installed on ``system.breakers`` by :func:`ensure_breakers`; from then
    on the RPC protocol feeds call outcomes in, and resilience-aware
    proxies consult :meth:`between` before spending a retry budget.
    Transitions land in the system trace (kind ``"breaker"``) and in
    :attr:`counters`.
    """

    def __init__(self, system, failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
                 reset_timeout: float = DEFAULT_RESET_TIMEOUT,
                 half_open_probes: int = DEFAULT_HALF_OPEN_PROBES):
        self.system = system
        self.defaults = {"failure_threshold": failure_threshold,
                         "reset_timeout": reset_timeout,
                         "half_open_probes": half_open_probes}
        self._breakers: dict[tuple[str, str], CircuitBreaker] = {}
        # Imported here, not at module top: this module loads while the
        # repro package is still initialising (via rpc.dispatcher), before
        # repro.metrics can be.  Registries are only built at runtime.
        from ..metrics.counters import CounterSet
        self.counters = CounterSet()

    # -- lookup ------------------------------------------------------------

    def between(self, caller_id: str, target_id: str,
                **overrides) -> CircuitBreaker:
        """The breaker for one caller→target pair (created on first use).

        ``overrides`` (``failure_threshold``/``reset_timeout``/
        ``half_open_probes``) apply only at creation; an existing breaker
        keeps its configuration.
        """
        key = (caller_id, target_id)
        breaker = self._breakers.get(key)
        if breaker is None:
            params = {**self.defaults, **overrides}
            breaker = CircuitBreaker(caller=caller_id, target=target_id,
                                     on_transition=self._record_transition,
                                     **params)
            self._breakers[key] = breaker
        return breaker

    def configure(self, caller_id: str, target_id: str,
                  **params) -> CircuitBreaker:
        """:meth:`between`, but applying ``params`` even to an existing
        breaker.

        A policy's shipped knobs must beat the registry defaults, and the
        breaker for a pair often exists before the policy first consults it
        (any earlier RPC outcome on the pair — handshakes, name-service
        lookups — creates it with defaults).
        """
        breaker = self.between(caller_id, target_id, **params)
        for name, value in params.items():
            if not hasattr(breaker, name):
                raise TypeError(f"CircuitBreaker has no knob {name!r}")
            setattr(breaker, name, value)
        return breaker

    def snapshot(self, now: float) -> dict[tuple[str, str], str]:
        """State of every breaker at ``now``."""
        return {key: breaker.state(now)
                for key, breaker in self._breakers.items()}

    # -- outcome feed (called by RpcProtocol) ------------------------------

    def record_success(self, caller_id: str, target_id: str,
                       now: float) -> None:
        """Feed one successful call outcome."""
        self.counters.incr("rpc.successes")
        self.between(caller_id, target_id).record_success(now)

    def record_failure(self, caller_id: str, target_id: str,
                       now: float) -> None:
        """Feed one failed call outcome (timeout / deadline)."""
        self.counters.incr("rpc.failures")
        self.between(caller_id, target_id).record_failure(now)

    # -- failure-detector exchange -----------------------------------------

    def open_toward(self, target_id: str, now: float) -> list[str]:
        """Caller contexts whose breaker to ``target_id`` is currently open."""
        return sorted(caller for (caller, target), breaker
                      in self._breakers.items()
                      if target == target_id and breaker.state(now) == OPEN)

    def trip_target(self, target_id: str, now: float) -> int:
        """Force-open every breaker toward a suspected target context.

        Called by the failure detector when suspicion starts; returns how
        many breakers were affected.
        """
        tripped = 0
        for (_, target), breaker in self._breakers.items():
            if target == target_id:
                breaker.trip(now)
                tripped += 1
        return tripped

    def reset_target(self, target_id: str, now: float) -> int:
        """Force-close every breaker toward a recovered target context."""
        reset = 0
        for (_, target), breaker in self._breakers.items():
            if target == target_id:
                breaker.reset(now)
                reset += 1
        return reset

    # -- internals ---------------------------------------------------------

    def _record_transition(self, breaker: CircuitBreaker, old_state: str,
                           new_state: str, now: float) -> None:
        self.system.trace.emit(now, "breaker", breaker.caller, breaker.target,
                               f"{old_state}->{new_state}")
        self.counters.incr("breaker.transitions")
        self.counters.incr(f"breaker.{new_state}")

    def __len__(self) -> int:
        return len(self._breakers)

    def __repr__(self) -> str:
        return f"BreakerRegistry({len(self._breakers)} breakers)"


def ensure_breakers(system, **defaults) -> BreakerRegistry:
    """Get or install the system's breaker registry.

    ``defaults`` apply only when the registry is created here; an existing
    registry keeps its configuration.
    """
    registry = system.breakers
    if registry is None:
        registry = BreakerRegistry(system, **defaults)
        system.breakers = registry
    return registry
