"""Rendering experiment results as aligned ASCII tables and series.

The bench harness prints the same rows EXPERIMENTS.md reports; keeping the
renderer tiny and dependency-free means the tables look identical in pytest
output, the benches, and the docs.
"""

from __future__ import annotations

from typing import Any


def fmt(value: Any) -> str:
    """Human formatting: trims floats, passes everything else through."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def render_table(rows: list[dict], title: str = "",
                 columns: list[str] | None = None) -> str:
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n  (no rows)" if title else "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in cells))
              for i, col in enumerate(columns)]
    def line(parts: list[str]) -> str:
        return "  ".join(part.ljust(width) for part, width in zip(parts, widths))
    out = []
    if title:
        out.append(title)
    out.append(line(list(columns)))
    out.append(line(["-" * width for width in widths]))
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def render_series(rows: list[dict], x: str, y: str, title: str = "",
                  width: int = 48) -> str:
    """Render one (x, y) series as a labelled ASCII bar chart."""
    if not rows:
        return f"{title}\n  (no points)" if title else "(no points)"
    points = [(row[x], float(row[y])) for row in rows if y in row]
    top = max((value for _, value in points), default=0.0)
    out = []
    if title:
        out.append(title)
    label_width = max(len(fmt(px)) for px, _ in points)
    for px, py in points:
        bar = "#" * (int(round(width * py / top)) if top > 0 else 0)
        out.append(f"  {fmt(px).rjust(label_width)} | {bar} {fmt(py)}")
    return "\n".join(out)


def who_wins(rows: list[dict], group: str, metric: str,
             lower_is_better: bool = True) -> str:
    """The group label with the best aggregate metric (shape assertions)."""
    if not rows:
        raise ValueError("no rows")
    totals: dict[str, list[float]] = {}
    for row in rows:
        totals.setdefault(str(row[group]), []).append(float(row[metric]))
    means = {label: sum(values) / len(values)
             for label, values in totals.items()}
    chooser = min if lower_is_better else max
    return chooser(means, key=means.get)


def crossover_x(rows: list[dict], x: str, a: str, b: str):
    """First x at which series ``a`` becomes ≤ series ``b`` (or ``None``).

    ``rows`` must contain both metrics per row, ordered by ``x``.
    """
    for row in rows:
        if float(row[a]) <= float(row[b]):
            return row[x]
    return None
