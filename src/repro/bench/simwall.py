"""Simwall — the simtest battery under a calibrated wall-time budget.

The sim-chaos battery (:mod:`repro.simtest`) is the repository's heaviest
correctness gate, and the hot-path optimisations (frame templates, carried
decode, reply batching, zero-copy bulk payloads) exist precisely to keep it
cheap to run often.  This bench pins that down:

* every shipped policy runs a fixed seed battery **twice**; the two runs
  must agree byte for byte (their summary digests are compared), which is
  the simtest determinism discipline applied to the whole battery;
* the best wall time per policy is normalised against the host calibration
  rate (:func:`repro.bench.timing.calibration_rate`), yielding
  ``norm_rate`` — cases per second per calibration speed.  The CI perf
  gate compares it against the committed ``BENCH_simwall.json`` with a
  tolerance band: that floor *is* the calibrated wall-time budget, so a
  change that makes the battery (say) 40% slower fails CI on any machine
  without anyone hand-tuning per-runner second limits.

Digests, case counts and verdict counts are machine-independent; only the
wall readings vary between hosts, and only they are tolerance-banded.
"""

from __future__ import annotations

import hashlib
import json

from ..simtest.runner import run_battery
from ..simtest.workload import SHIPPED_POLICIES
from .timing import CalibrationBracket, wall_clock

TITLE = "simwall: simtest battery — determinism digest and wall budget"
COLUMNS = ["scenario", "cases", "ok", "digest", "wall_seconds", "norm_rate"]

#: Battery shape: small enough for CI, large enough that each policy's
#: wall reading is tens of milliseconds (a gateable signal, not timer
#: jitter) and every policy's fault menu gets exercised.
SEEDS = 10
OPS = 24
CLIENTS = 3


def _battery(policy: str, seeds: int, ops: int) -> tuple[dict, float]:
    """One timed battery run for one policy; returns (summary, wall)."""
    started = wall_clock()
    summary = run_battery(range(seeds), policies=(policy,), ops=ops,
                          clients=CLIENTS, minimize=False)
    return summary, wall_clock() - started


def _digest(summary: dict) -> str:
    """Canonical digest of a battery summary (sorted JSON, sha256)."""
    canon = json.dumps(summary, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def measure_policy(policy: str, seeds: int = SEEDS, ops: int = OPS) -> dict:
    """Double-run one policy's battery; byte-identity is asserted, the
    faster wall reading is reported."""
    first, wall_a = _battery(policy, seeds, ops)
    second, wall_b = _battery(policy, seeds, ops)
    digest = _digest(first)
    if digest != _digest(second):
        raise AssertionError(
            f"simwall determinism violated: policy {policy!r} produced "
            f"different battery summaries across identical runs")
    return {
        "scenario": policy,
        "cases": first["cases"],
        "ok": sum(counts["ok"] for counts in first["per_policy"].values()),
        "digest": digest,
        "wall_seconds": min(wall_a, wall_b),
    }


def bench_payload(ops: int = OPS, seed: int = SEEDS) -> dict:
    """The machine-readable BENCH_simwall.json record.

    ``seed`` doubles as the battery width (seeds 0..seed-1) so the CLI's
    ``--seed`` knob scales the sweep the way it scales other benches.
    """
    bracket = CalibrationBracket()
    rows = [measure_policy(policy, seeds=seed, ops=ops)
            for policy in SHIPPED_POLICIES]
    rate = bracket.close()
    for row in rows:
        wall = row.pop("wall_seconds")
        row["norm_rate"] = round(row["cases"] / wall / rate * 1e6, 2)
        row["wall_ms_per_case"] = round(wall / row["cases"] * 1e3, 1)
    return {
        "experiment": "simwall",
        "ops": ops,
        "seed": seed,
        "calibration_rate": round(rate, 1),
        "scenarios": rows,
    }


def bench_rows(payload: dict) -> list[dict]:
    """Table form of :func:`bench_payload`."""
    return payload["scenarios"]


def bench_footer(payload: dict) -> str:
    """One-line summary: total verdicts and the battery's slowest policy."""
    rows = payload["scenarios"]
    cases = sum(row["cases"] for row in rows)
    ok = sum(row["ok"] for row in rows)
    slowest = max(rows, key=lambda row: row["wall_ms_per_case"])
    return (f"{ok}/{cases} verdicts ok; slowest policy "
            f"{slowest['scenario']!r} at {slowest['wall_ms_per_case']:.1f} "
            f"ms/case (calibration "
            f"{payload['calibration_rate'] / 1e6:.1f}M it/s)")
