"""Sanctioned wall-clock access for host-side benchmarking.

Everything inside the simulation runs on virtual time (see
``tools/determinism_lint.py``); the one legitimate consumer of the *real*
clock is the bench layer, which measures how much host CPU the simulator
itself burns.  This module is the single place that touches
``time.perf_counter`` — it is on the lint's ALLOWED list, and nothing under
``src/repro`` outside the bench layer may import the ``time`` module
directly.

Wall-clock readings are, by nature, not deterministic: experiment code must
keep them strictly out of anything that feeds the trace, the RNG streams,
or the cost model.  E18 enforces this by running its simulated workload
twice and asserting that the deterministic outputs (virtual time, message
counts, trace fingerprint) are identical while only the wall readings
differ.

Because benchmark hosts differ wildly in speed (and CI machines in
*consistency*), this module also provides a calibration loop: a fixed
pure-Python workload whose measured rate estimates the host's interpreter
speed.  Dividing a benchmark's ops/sec by the calibration rate yields a
dimensionless, machine-portable number that a CI gate can compare across
runs (see ``tools/perf_gate.py``).
"""

from __future__ import annotations

import time

#: Iterations of the calibration loop (fixed: the loop must be the same
#: workload everywhere or the normalisation is meaningless).
CALIBRATION_ITERATIONS = 200_000


def wall_clock() -> float:
    """A monotonic wall-clock reading in seconds (host time, not sim time)."""
    return time.perf_counter()


def calibration_rate(repeats: int = 3) -> float:
    """Iterations/second of a fixed pure-Python loop on this host.

    Best-of-``repeats``: transient noise (scheduler preemption, turbo
    ramp-up) only ever makes the loop *slower*, so the fastest observation
    is the closest to the host's true speed.
    """
    best = float("inf")
    for _ in range(repeats):
        acc = 0
        start = time.perf_counter()
        for i in range(CALIBRATION_ITERATIONS):
            acc = (acc + i * 3) % 1000003
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return CALIBRATION_ITERATIONS / best


class CalibrationBracket:
    """Calibration sampled *around* a measurement, not just before it.

    A single calibration read taken before a multi-second sweep can land
    in a different host-noise regime than the sweep itself, skewing every
    normalised number it divides.  Sampling again after the sweep and
    keeping the **maximum** tightens this: contention only ever slows the
    calibration loop down, so the larger reading is the better estimate
    of the host's true speed, and bracketing gives noise two chances to
    miss instead of one.

    Usage::

        bracket = CalibrationBracket()   # first sample, before the sweep
        ...measure...
        rate = bracket.close()           # second sample; max of the two
    """

    def __init__(self, repeats: int = 3):
        self._repeats = repeats
        self._rate = calibration_rate(repeats)

    def close(self) -> float:
        """Take the closing sample and return the bracket's best rate."""
        self._rate = max(self._rate, calibration_rate(self._repeats))
        return self._rate
