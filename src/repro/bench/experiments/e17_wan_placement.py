"""E17 — WAN placement: which proxy policy wins across sites (extension).

The capstone composition: a two-site WAN (LAN inside a site, 20× latency
between sites) and one shared service used from both sides.  Three
deployments, identical client code:

* **central**: plain stub service at site A — site B pays the WAN on every
  call;
* **replicated**: one replica per site, read-nearest / write-all — reads go
  LAN everywhere, writes pay one WAN crossing;
* **caching**: central service shipping coherent caching proxies — hot
  reads go local *after* the first fetch, writes pay WAN plus invalidation.

Expected shape: for a read-heavy workload, replication and caching both
rescue the remote site (≈LAN reads); the central stub leaves site B an
order of magnitude behind; write latency orders the other way (central
cheapest, write-all dearest for site A's LAN writers).
"""

from __future__ import annotations

from ... import make_system
from ...apps.kv import KVStore
from ...core.export import get_space
from ...core.policies.replicating import replicate
from ...kernel.topology import build_sites
from ...naming.bootstrap import bind, install_name_service, register
from ...workloads.distributions import ZipfSampler
from ...workloads.sessions import OpMix, proxy_session, run_interleaved
from ..common import ms

TITLE = "E17: WAN placement — per-site latency under three deployments"
COLUMNS = ["deployment", "site", "mean_ms", "read_like_lan"]

WAN_FACTOR = 20.0
READ_FRACTION = 0.9


def _build(deployment: str, seed: int):
    system = make_system(seed=seed)
    sites = build_sites(system, ["alpha", "beta"], nodes_per_site=3,
                        wan_factor=WAN_FACTOR)
    service_home = sites[0].contexts[0]
    install_name_service(service_home)
    if deployment == "central":
        register(service_home, "kv", KVStore())
    elif deployment == "replicated":
        ref = replicate([sites[0].contexts[1], sites[1].contexts[1]],
                        KVStore, write_quorum=2)
        register(service_home, "kv", ref)
    elif deployment == "caching":
        store = KVStore()
        get_space(service_home).export(store, policy="caching",
                                       config={"invalidation": True})
        register(service_home, "kv", store)
    else:
        raise ValueError(deployment)
    clients = {
        "alpha": sites[0].contexts[2],
        "beta": sites[1].contexts[2],
    }
    return system, clients


def run(ops: int = 120, seed: int = 71) -> list[dict]:
    """Three deployments × two sites; returns one row per combination."""
    rows = []
    lan_round_trip = 2 * 1e-3   # the cost model's LAN latency, both ways
    for deployment in ("central", "replicated", "caching"):
        system, clients = _build(deployment, seed)
        sessions = []
        for site_name, ctx in clients.items():
            proxy = bind(ctx, "kv")
            sampler = ZipfSampler(20, system.seeds.stream(
                f"e17.{deployment}.{site_name}"))
            sessions.append((site_name, proxy_session(
                site_name, ctx, proxy, OpMix(READ_FRACTION, sampler),
                system.seeds.stream(f"e17.rng.{deployment}.{site_name}"))))
        run_interleaved([session for _, session in sessions], ops)
        for site_name, session in sessions:
            mean = (sum(session.latencies.samples)
                    / len(session.latencies.samples))
            rows.append({
                "deployment": deployment,
                "site": site_name,
                "mean_ms": ms(mean),
                "read_like_lan": mean < lan_round_trip * 4,
            })
    return rows
