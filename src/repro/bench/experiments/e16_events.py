"""E16 — event fan-out: push cost, and recovery after loss (extension).

The invalidation-callback pattern generalised to pub/sub.  Two measurements:

* **fan-out cost**: publish latency and messages grow linearly with the
  subscriber count (the channel pays one one-way message per match);
* **reliability split**: under loss, push delivery degrades gracefully
  (at-most-once) while the pull-side replay recovers everything — the
  hybrid the design argues for.
"""

from __future__ import annotations

from ...events.channel import EventChannel
from ...events.subscriber import EventSubscriber
from ...failures.injectors import message_loss
from ...kernel.errors import RpcTimeout
from ...metrics.counters import MessageWindow
from ...naming.bootstrap import bind, register
from ..common import mesh, ms

TITLE = "E16: event fan-out — publish cost vs subscribers; loss recovery"
COLUMNS = ["scenario", "subscribers", "publish_ms", "messages",
           "push_delivered_frac", "after_catch_up_frac"]

SUBSCRIBER_COUNTS = (1, 2, 4, 8)
EVENTS = 30


def run(events: int = EVENTS, seed: int = 67) -> list[dict]:
    """Fan-out sweep plus the loss/recovery scenario."""
    rows = []
    for count in SUBSCRIBER_COUNTS:
        system, contexts = mesh(seed=seed, nodes=count + 2)
        hub, publisher_ctx = contexts[0], contexts[-1]
        register(hub, "bus", EventChannel())
        subscribers = [EventSubscriber(ctx, bind(ctx, "bus"), ["t"])
                       for ctx in contexts[1:-1]] or \
                      [EventSubscriber(hub, bind(hub, "bus"), ["t"])]
        publisher = bind(publisher_ctx, "bus")
        publisher.publish("t", "warm")
        with MessageWindow(system) as window:
            started = publisher_ctx.clock.now
            for index in range(events):
                publisher.publish("t", index)
            publish_ms = ms((publisher_ctx.clock.now - started) / events)
        delivered = sum(len(sub.events) for sub in subscribers)
        expected = (events + 1) * len(subscribers)
        rows.append({
            "scenario": "fan-out", "subscribers": len(subscribers),
            "publish_ms": publish_ms,
            "messages": window.report.messages / events,
            "push_delivered_frac": delivered / expected,
            "after_catch_up_frac": delivered / expected,
        })

    # -- loss and recovery -------------------------------------------------------
    system, contexts = mesh(seed=seed + 1, nodes=4)
    hub, publisher_ctx = contexts[0], contexts[-1]
    register(hub, "bus", EventChannel())
    subscribers = [EventSubscriber(ctx, bind(ctx, "bus"), ["t"])
                   for ctx in contexts[1:-1]]
    publisher = bind(publisher_ctx, "bus")
    with message_loss(system, 0.4):
        for index in range(events):
            try:
                publisher.publish("t", index)
            except RpcTimeout:
                pass
    published = publisher.last_seq()
    pushed = sum(len(sub.events) for sub in subscribers)
    expected = published * len(subscribers)
    for sub in subscribers:
        sub.catch_up()
    recovered = sum(len(sub.events) for sub in subscribers)
    rows.append({
        "scenario": "40% loss", "subscribers": len(subscribers),
        "publish_ms": 0.0, "messages": 0.0,
        "push_delivered_frac": pushed / expected if expected else 0.0,
        "after_catch_up_frac": recovered / expected if expected else 0.0,
    })
    return rows
