"""E18 — end-to-end invocation throughput (the fast-path engine).

Every other experiment reports *virtual* time: what the 1986 cost model says
the distributed system would do.  E18 reports how fast the simulator itself
pushes invocations through the full pipeline — ``proxy.verb`` → policy →
``RpcProtocol.call`` → marshal → ``Network.transmit`` → dispatcher → reply —
in host CPU terms.  It exists to keep the hot path honest: the profile-driven
optimisations in the wire, transport, network, and proxy layers (see the
"performance model" section of DESIGN.md) are proven here, and the CI perf
gate (``tools/perf_gate.py``) fails the build if they regress.

Two kinds of numbers per policy:

* **deterministic** — virtual µs/op and message count.  These must be
  identical run to run (same seed ⇒ same trace); the bench harness asserts
  it by running every workload twice.
* **wall** — ops/sec of the host, plus a calibration-normalised variant
  (ops per million calibration iterations) that factors out machine speed
  so the perf gate can compare laptops against CI runners.

The operation mix is a seeded 80/20 get/put stream over four hot keys —
small payloads, so the measurement stresses per-invocation overhead rather
than bulk copying.
"""

from __future__ import annotations

from ...simtest.runner import SimCase
from ...simtest.workload import deploy
from ..timing import CalibrationBracket, wall_clock

TITLE = "E18: invocation fast path — end-to-end throughput by policy"
COLUMNS = ["policy", "kops_per_sec", "wall_us_per_op", "norm_ops",
           "sim_us_per_op", "messages"]

#: Policies swept, in presentation order.
POLICIES = ("stub", "caching", "replicated", "resilient", "composite")

OPS = 3000
SEED = 18
_KEYS = ("k0", "k1", "k2", "k3")
_PUT_FRACTION = 0.2


def _run_workload(case: SimCase) -> dict:
    """Deploy ``case`` fresh and drive the op mix once; returns raw metrics.

    Wall-clock readings stay strictly outside the simulation: the RNG
    stream, the proxies, and the trace never see them, so the deterministic
    fields of two runs of the same case are identical.
    """
    deployment = deploy(case)
    system = deployment.system
    _, ctx, proxy = deployment.clients[0]
    rng = system.seeds.stream("e18.ops")
    # Warm the connection so one-time setup (handshake, memo priming) is
    # not billed to the steady-state measurement.
    proxy.put(_KEYS[0], 0)
    proxy.get(_KEYS[0])
    mark = system.trace.mark()
    sim_start = ctx.clock.now
    started = wall_clock()
    for index in range(case.ops):
        key = _KEYS[rng.randrange(4)]
        if rng.random() < _PUT_FRACTION:
            proxy.put(key, index)
        else:
            proxy.get(key)
    wall = wall_clock() - started
    sim = ctx.clock.now - sim_start
    messages = sum(1 for ev in system.trace.since(mark) if ev.kind == "send")
    return {
        "wall_seconds": wall,
        "sim_us_per_op": round(sim / case.ops * 1e6, 2),
        "messages": messages,
        "fingerprint": system.trace.fingerprint(),
    }


def measure_policy(policy: str, ops: int = OPS, seed: int = SEED,
                   repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall timing for one policy, with a determinism
    self-check: every repeat must agree on the deterministic fields."""
    case = SimCase(seed=seed, policy=policy, service="kv", ops=ops,
                   clients=1, faults=())
    runs = [_run_workload(case) for _ in range(repeats)]
    first = runs[0]
    for run_ in runs[1:]:
        for key in ("sim_us_per_op", "messages", "fingerprint"):
            if run_[key] != first[key]:
                raise AssertionError(
                    f"E18 determinism violated: {policy!r} {key} drifted "
                    f"between identical runs ({first[key]!r} vs {run_[key]!r})")
    best_wall = min(run_["wall_seconds"] for run_ in runs)
    return {
        "policy": policy,
        "ops": ops,
        "wall_us_per_op": round(best_wall / ops * 1e6, 2),
        "ops_per_sec": round(ops / best_wall, 1),
        "sim_us_per_op": first["sim_us_per_op"],
        "messages": first["messages"],
        "fingerprint": first["fingerprint"],
    }


def bench_payload(ops: int = OPS, seed: int = SEED) -> dict:
    """The machine-readable benchmark record (``BENCH_e18.json``).

    Carries everything the CI perf gate needs: the host calibration rate,
    per-policy wall numbers plus their calibration-normalised form, and the
    deterministic fields (virtual µs/op, message count, trace fingerprint)
    which must match the committed baseline *exactly* on any machine.
    """
    bracket = CalibrationBracket()
    rows = [measure_policy(policy, ops=ops, seed=seed)
            for policy in POLICIES]
    # Close the bracket after the sweep: host noise during the runs also
    # taints a one-shot calibration, so normalise by the better of the
    # before/after samples.
    calibration = bracket.close()
    for measured in rows:
        measured["norm_ops"] = round(
            measured["ops_per_sec"] / calibration * 1e6, 1)
    return {
        "experiment": "e18",
        "ops": ops,
        "seed": seed,
        "calibration_rate": round(calibration, 1),
        "policies": rows,
    }


def bench_rows(payload: dict) -> list[dict]:
    """The table form of a payload (the CLI's non-``--json`` rendering)."""
    return [{
        "policy": measured["policy"],
        "kops_per_sec": round(measured["ops_per_sec"] / 1e3, 1),
        "wall_us_per_op": measured["wall_us_per_op"],
        "norm_ops": measured["norm_ops"],
        "sim_us_per_op": measured["sim_us_per_op"],
        "messages": measured["messages"],
    } for measured in payload["policies"]]


def bench_footer(payload: dict) -> str:
    """A one-line table footnote (the CLI prints it under the table)."""
    return (f"calibration: {payload['calibration_rate']:.0f} it/s "
            f"(norm_ops = ops/sec per million calibration iterations)")


def run(ops: int = OPS, seed: int = SEED) -> list[dict]:
    """Sweep all shipped policies; one row per policy.

    ``norm_ops`` is ops/sec divided by the host calibration rate, scaled to
    "ops per million calibration iterations" — the machine-portable number
    the CI perf gate compares.
    """
    return bench_rows(bench_payload(ops=ops, seed=seed))
