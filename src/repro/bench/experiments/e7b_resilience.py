"""E7b — the resilience layer under message loss plus periodic crashes.

E7 shows the Birrell–Nelson discipline masking *loss*; this companion turns
the failure dial further — loss **and** a periodically crashing primary —
and compares two proxies over the same seeded workload:

* **baseline** — the plain ``stub`` policy with the protocol's fixed-interval
  retry schedule (the 1984 discipline: every failure eats the full budget);
* **resilient** — the ``resilient`` policy: exponential backoff with jitter,
  a per-call deadline, circuit breakers, read failover to two replicas, and
  stale-read degradation.

Two effects, one sweep over the loss rate:

* availability: the resilient proxy keeps serving reads through primary
  outages (failover / stale cache) and converts repeated write failures
  into fast local refusals — its success rate dominates the baseline's;
* tail latency: the deadline caps every failure at the call budget, while
  a baseline failure always pays the full fixed-retry timeout, so the
  resilient p99 sits well below the baseline p99 under stress.

The last two columns isolate the breaker's fast-fail asymmetry: one failed
call against an OPEN breaker (``open_fail_ms``, a few local checks) versus
one exhausted retry budget against a dead node (``timeout_fail_ms``) — the
acceptance bar is a >=10x gap.
"""

from __future__ import annotations

from ...apps.kv import KVStore
from ...failures.injectors import CrashPlan, message_loss
from ...kernel.errors import CircuitOpen, DistributionError
from ...metrics.latency import percentile
from ...naming.bootstrap import bind, register
from ...resilience.policy import resilient_group
from ..common import mesh, ms

TITLE = "E7b: resilience on/off under message loss + primary crashes"
COLUMNS = ["loss", "base_ok", "res_ok", "base_p99_ms", "res_p99_ms",
           "open_fail_ms", "timeout_fail_ms"]

LOSS_RATES = (0.1, 0.2, 0.3)
OPS = 160
KEYS = 8
GROUP = 3  # primary + two read replicas

#: The resilient policy's knobs (see repro.resilience.policy).  The reset
#: timeout must sit on the workload's timescale: healthy ops take ~1-2 ms of
#: virtual time, so a 10 ms cooldown lets a breaker that opened during an
#: outage re-probe (and close) within a handful of operations of the
#: restart, instead of staying open across the whole healthy window.
RETRY = {"attempts": 5, "multiplier": 2.0, "jitter": 0.1}
CALL_BUDGET = 0.12
BREAKER = {"failure_threshold": 3, "reset_timeout": 0.01}

READ_FRACTION = 0.7
CRASH_EVERY = 25
CRASH_DURATION = 8


def _seeded_store() -> KVStore:
    """A KV store pre-populated with the working set (so replicas can
    answer reads without ever having seen a write)."""
    store = KVStore()
    for index in range(KEYS):
        store.put(f"k{index}", f"v{index}")
    return store


def _workload(system, client, proxy, ops: int, loss: float):
    """Drive the seeded read/write mix against one proxy.

    Both arms build identical systems from the same seed and use the same
    stream name, so they face the *identical* operation sequence, drop
    pattern, and crash schedule; only the proxy policy differs.
    """
    plan = CrashPlan.periodic(["n0"], every=CRASH_EVERY,
                              duration=CRASH_DURATION, total_ops=ops)
    rng = system.seeds.stream("e7b.ops")
    successes = 0
    latencies = []
    with message_loss(system, loss):
        for index in range(ops):
            plan.tick(system)
            key = f"k{rng.randrange(KEYS)}"
            reading = rng.random() < READ_FRACTION
            before = client.clock.now
            try:
                if reading:
                    proxy.get(key)
                else:
                    proxy.put(key, index)
                successes += 1
            except DistributionError:
                pass
            latencies.append(client.clock.now - before)
    return successes / ops, percentile(sorted(latencies), 99)


def _run_baseline(seed: int, ops: int, loss: float):
    system, contexts = mesh(seed=seed, nodes=GROUP + 1)
    register(contexts[0], "kv", _seeded_store())
    client = contexts[-1]
    proxy = bind(client, "kv")
    return _workload(system, client, proxy, ops, loss)


def _run_resilient(seed: int, ops: int, loss: float):
    system, contexts = mesh(seed=seed, nodes=GROUP + 1)
    ref = resilient_group(contexts[:GROUP], _seeded_store, retry=RETRY,
                          call_budget=CALL_BUDGET, breaker=BREAKER)
    register(contexts[0], "kv", ref)
    client = contexts[-1]
    proxy = bind(client, "kv")
    return _workload(system, client, proxy, ops, loss)


def _fail_fast_gap(seed: int) -> tuple[float, float]:
    """(open_fail_ms, timeout_fail_ms): one breaker refusal versus one
    exhausted fixed-retry budget, both against dead destinations."""
    # Baseline: crash the only server, pay the full retry budget once.
    system, contexts = mesh(seed=seed, nodes=2)
    register(contexts[0], "kv", _seeded_store())
    client = contexts[1]
    proxy = bind(client, "kv")
    contexts[0].node.crash()
    before = client.clock.now
    try:
        proxy.get("k0")
    except DistributionError:
        pass
    timeout_fail_ms = ms(client.clock.now - before)

    # Resilient: crash the whole group and force-open every breaker toward
    # it — the failure detector's trip pathway — then measure one fully
    # fast-failed call while the cooldowns are still running.
    system, contexts = mesh(seed=seed, nodes=GROUP + 1)
    ref = resilient_group(contexts[:GROUP], _seeded_store, retry=RETRY,
                          call_budget=CALL_BUDGET, breaker=BREAKER)
    register(contexts[0], "kv", ref)
    client = contexts[-1]
    proxy = bind(client, "kv")
    registry = system.breakers
    for ctx in contexts[:GROUP]:
        ctx.node.crash()
        registry.between(client.context_id, ctx.context_id).trip(
            client.clock.now)
    open_fail_ms = 0.0
    before = client.clock.now
    try:
        proxy.get("k0")
    except CircuitOpen:
        open_fail_ms = ms(client.clock.now - before)
    return open_fail_ms, timeout_fail_ms


def run(ops: int = OPS, seed: int = 31) -> list[dict]:
    """Sweep loss probability; returns one row per rate."""
    open_fail_ms, timeout_fail_ms = _fail_fast_gap(seed)
    rows = []
    for loss in LOSS_RATES:
        base_ok, base_p99 = _run_baseline(seed, ops, loss)
        res_ok, res_p99 = _run_resilient(seed, ops, loss)
        rows.append({
            "loss": loss,
            "base_ok": base_ok,
            "res_ok": res_ok,
            "base_p99_ms": ms(base_p99),
            "res_p99_ms": ms(res_p99),
            "open_fail_ms": open_fail_ms,
            "timeout_fail_ms": timeout_fail_ms,
        })
    return rows
