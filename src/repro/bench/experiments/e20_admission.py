"""E20 — admission control: goodput and p99 under offered overload.

The overload stack's claim is that saying *no* early is what keeps a
server saying *yes* at all: without protection, offered load beyond the
service rate turns into an unbounded backlog and goodput (completions
within the SLO, per virtual second) collapses; with a bounded run queue,
early token-bucket shedding, and a bulkhead, goodput flattens into a
saturation plateau at the service rate — congestion collapse becomes a
horizontal line.  Per the paper's thesis the whole stack is server-side
policy behind the proxy boundary: the client code is identical in every
scenario, and sees only latency, ``Overloaded`` rejections, and
retry-after hints its ``RetryPolicy`` honors.

The sweep crosses four protection stacks with four offered-load factors:

* ``none`` — admission installed only for the deterministic per-request
  service time (unbounded queue, no shedding): the collapse baseline;
* ``queue`` — a bounded run queue (overflow sheds with a retry-after);
* ``queue+shed`` — plus a node-wide token bucket that rejects *before*
  the queue fills, keeping slots available;
* ``queue+shed+bulkhead`` — plus per-class compartments and rates, so a
  background ``calm`` service keeps its share while the ``hot`` service
  is drowning.

Load is **open-loop** (:mod:`repro.workloads.arrivals`): seeded Poisson
arrival schedules fixed in advance, latency measured from the scheduled
arrival — the closed-loop drivers cannot create a backlog, and measuring
from issue time would hide exactly the stall this experiment exists to
show.  Every number is virtual-time arithmetic on seeded streams, so
``python -m repro bench e20 --json`` is byte-identical across runs and
the CI perf gate compares ``BENCH_e20.json`` exactly.
"""

from __future__ import annotations

from ... import make_system
from ...apps.kv import KVStore
from ...core.export import get_space
from ...iface.interface import Interface
from ...kernel.admission import install_admission
from ...kernel.errors import ConfigurationError
from ...metrics.latency import LatencySummary
from ...resilience.retry import RetryPolicy
from ...workloads.arrivals import (
    merge_arrivals,
    poisson_arrivals,
    run_open_loop,
)

TITLE = "E20: admission control — goodput under offered overload"
COLUMNS = ["scenario", "stack", "load_x", "goodput", "hot_goodput",
           "calm_goodput", "p99_ms", "shed_queue", "shed_throttle",
           "failures", "messages"]

#: The protection stacks swept, weakest to strongest.
STACKS = ("none", "queue", "queue+shed", "queue+shed+bulkhead")

#: Offered hot-lane load as a multiple of :data:`SATURATION`.
LOADS = (0.5, 1.0, 2.0, 3.0)

#: Deterministic modelled work per admitted call — the run queue's drain
#: rate.  With ~60 µs of marshal/dispatch overhead the node saturates
#: near 1 / (SERVICE_TIME + overhead) ≈ 940 ops/s.
SERVICE_TIME = 1e-3

#: Nominal saturation rate of the one-node deployment; the load axis and
#: the token-bucket rates are expressed against it.
SATURATION = 900.0

#: The goodput SLO: an answer later than this is not *good* throughput.
SLO = 0.05

#: Node-wide run-queue slots.  The worst admitted wait is then
#: ``QUEUE_CAPACITY × SERVICE_TIME`` ≈ 34 ms < SLO: a bounded queue keeps
#: every admitted call answerable in time.
QUEUE_CAPACITY = 32

#: The shedding bucket: slightly under saturation so the bucket — not the
#: queue — turns sustained excess away, with a burst the queue can absorb.
SHED_RATE = 870.0
SHED_BURST = 32.0

#: Bulkhead compartments (must sum to QUEUE_CAPACITY; ``"*"`` is the
#: default lane for unassigned traffic) and per-class bucket rates.
BULKHEAD = {"hot": 22, "calm": 8, "*": 2}
CLASS_RATES = {"hot": (800.0, 22.0), "calm": (160.0, 8.0)}

#: Client pools per lane.  Open-loop load needs the pool to outnumber the
#: run-queue capacity by a wide margin: if every client can be in flight
#: without filling the queue, the pool itself throttles the offered load
#: and overload never reaches the admission layer.
HOT_CLIENTS = 128
CALM_CLIENTS = 16

#: Client-side retransmission budget: first try plus one honored
#: retry-after.  Open-loop callers must fail *fast* — burning the default
#: nine attempts on a saturated server just parks the client pool.
ATTEMPTS = 2

#: Arrivals per scenario: the hot lane's count is the --ops knob; the calm
#: lane runs a fixed-rate background fifth of it.
OPS = 600
CALM_FRACTION = 5
CALM_RATE = 100.0

#: Arrivals start here, clear of the bind handshakes at time zero.
START = 0.05

SEED = 20


def _stack_config(stack: str) -> dict:
    """The ``install_admission`` keywords for one protection stack."""
    if stack == "none":
        return {"capacity": None, "service_time": SERVICE_TIME}
    if stack == "queue":
        return {"capacity": QUEUE_CAPACITY, "service_time": SERVICE_TIME}
    if stack == "queue+shed":
        return {"capacity": QUEUE_CAPACITY, "service_time": SERVICE_TIME,
                "rate": SHED_RATE, "burst": SHED_BURST}
    if stack == "queue+shed+bulkhead":
        return {"capacity": QUEUE_CAPACITY, "service_time": SERVICE_TIME,
                "bulkhead": dict(BULKHEAD), "rates": dict(CLASS_RATES)}
    raise ConfigurationError(f"unknown protection stack {stack!r}")


def _run_scenario(stack: str, load: float, ops: int, seed: int) -> dict:
    """Deploy fresh and drive one (stack, load) cell; returns its row.

    Two KV services share the node: ``hot`` takes the swept offered load,
    ``calm`` a fixed 100/s background.  All measurement is virtual-time
    arithmetic over the scheduled arrivals, so the row is byte-stable.
    """
    system = make_system(seed=seed)
    server = system.add_node("srv").create_context("main")
    space = get_space(server)
    interface = Interface.of(KVStore)
    hot_ref = space.export(KVStore(), interface=interface, policy="stub")
    calm_ref = space.export(KVStore(), interface=interface, policy="stub")
    hot_ctxs = [system.add_node(f"h{i:02d}").create_context("main")
                for i in range(HOT_CLIENTS)]
    calm_ctxs = [system.add_node(f"k{i:02d}").create_context("main")
                 for i in range(CALM_CLIENTS)]
    # Bind before installing admission: the handshake round trips are
    # deployment, not offered load, and must not spend tokens.
    hot_clients = [(ctx.context_id, ctx,
                    get_space(ctx).bind_ref(hot_ref, handshake=True))
                   for ctx in hot_ctxs]
    calm_clients = [(ctx.context_id, ctx,
                     get_space(ctx).bind_ref(calm_ref, handshake=True))
                    for ctx in calm_ctxs]
    control = install_admission(server.node, **_stack_config(stack))
    control.assign(hot_ref.oid, "hot")
    control.assign(calm_ref.oid, "calm")
    system.rpc.retry_policy = RetryPolicy(attempts=ATTEMPTS)
    hot_times = poisson_arrivals(load * SATURATION, ops,
                                 system.seeds.stream("e20.arrivals.hot"),
                                 start=START)
    calm_times = poisson_arrivals(CALM_RATE, ops // CALM_FRACTION,
                                  system.seeds.stream("e20.arrivals.calm"),
                                  start=START)

    def issue(proxy, index):
        key = f"key-{index % 64}"
        if index % 4 == 0:
            proxy.put(key, index)
        else:
            proxy.get(key)

    mark = system.trace.mark()
    results = run_open_loop(
        {"hot": (hot_clients, issue), "calm": (calm_clients, issue)},
        merge_arrivals({"hot": hot_times, "calm": calm_times}))
    hot, calm = results["hot"], results["calm"]
    summary = LatencySummary.of("e20", hot.latencies or [0.0])
    counters = control.snapshot()
    messages = sum(1 for ev in system.trace.since(mark)
                   if ev.kind == "send")
    return {
        "scenario": f"{stack}@{load:g}x",
        "stack": stack,
        "load_x": load,
        "ops": hot.attempted + calm.attempted,
        # Goodput counts only answers within the SLO — a reply to a caller
        # who waited 300 ms is a liability that held a slot, not
        # throughput — and latency is anchored at the *scheduled* arrival,
        # so client-side lateness (coordinated omission) counts too.  The
        # total is the sum of the per-lane rates: each lane's SLO-met
        # completions over its own active span.
        "goodput": round(hot.goodput(SLO) + calm.goodput(SLO), 1),
        "hot_goodput": round(hot.goodput(SLO), 1),
        "calm_goodput": round(calm.goodput(SLO), 1),
        "p99_ms": round(summary.p99 * 1e3, 3),
        "shed_queue": counters.get("shed_queue", 0),
        "shed_throttle": counters.get("shed_throttle", 0),
        "sheds_hot": hot.shed,
        "sheds_calm": calm.shed,
        "failures": hot.failed + calm.failed,
        "completed": hot.completed + calm.completed,
        "messages": messages,
        "fingerprint": system.trace.fingerprint(),
    }


def measure_scenario(stack: str, load: float, ops: int = OPS,
                     seed: int = SEED, repeats: int = 2) -> dict:
    """One cell with a determinism self-check: every field of every repeat
    must agree — the row carries no wall numbers to excuse."""
    runs = [_run_scenario(stack, load, ops, seed) for _ in range(repeats)]
    for run_ in runs[1:]:
        if run_ != runs[0]:
            drifted = [key for key in runs[0] if run_[key] != runs[0][key]]
            raise AssertionError(
                f"E20 determinism violated: scenario "
                f"{runs[0]['scenario']!r} fields {drifted} drifted "
                f"between identical runs")
    return runs[0]


def bench_payload(ops: int = OPS, seed: int = SEED) -> dict:
    """The machine-readable benchmark record (``BENCH_e20.json``).

    Pure virtual-time record: the CI perf gate compares every scenario
    field exactly, and the double-run byte-identity gate applies to the
    whole payload.
    """
    if ops < 2 * HOT_CLIENTS:
        raise ConfigurationError(
            f"e20 needs ops >= {2 * HOT_CLIENTS} "
            f"(a couple per hot client), got {ops}")
    rows = [measure_scenario(stack, load, ops=ops, seed=seed)
            for stack in STACKS for load in LOADS]
    return {
        "experiment": "e20",
        "ops": ops,
        "seed": seed,
        "slo_ms": SLO * 1e3,
        "service_time_ms": SERVICE_TIME * 1e3,
        "saturation": SATURATION,
        "queue_capacity": QUEUE_CAPACITY,
        "scenarios": rows,
    }


def bench_rows(payload: dict) -> list[dict]:
    """The table form of a payload (the CLI's non-``--json`` rendering)."""
    return [{key: row[key] for key in COLUMNS}
            for row in payload["scenarios"]]


def run(ops: int = OPS, seed: int = SEED) -> list[dict]:
    """Sweep the four stacks across the load axis; one row per cell."""
    return bench_rows(bench_payload(ops=ops, seed=seed))
