"""E4 — sharing: RPC vs caching proxy vs DSM as writers multiply.

All clients touch the *same small key set* (one DSM page), with a fixed
read/write mix, while the number of concurrently writing clients grows.

Expected shape: with one client DSM behaves like local memory (best);
as writers multiply, every write invalidates every other copy and the page
ping-pongs — DSM degrades past plain RPC.  The caching proxy sits between:
its invalidations are per-entry and its writes are ordinary RPCs.  This is
the trade-off table at the heart of the secondary-source comparison.
"""

from __future__ import annotations

from ...apps.kv import KVStore
from ...core.export import get_space
from ...dsm.heap import make_dsm_kv
from ...metrics.counters import MessageWindow
from ...naming.bootstrap import bind, register
from ...workloads.distributions import HotspotSampler
from ...workloads.sessions import OpMix, dsm_session, proxy_session, run_interleaved
from ..common import ms, star

TITLE = "E4: sharing — mean latency vs number of writing clients"
COLUMNS = ["clients", "technique", "mean_ms", "messages"]

CLIENT_COUNTS = (1, 2, 4, 8)
READ_FRACTION = 0.5
HOT_KEYS = 4


def _sampler(system, label: str, keys: int):
    return HotspotSampler(keys, system.seeds.stream(f"e4.keys.{label}"),
                          hot_fraction=1.0, hot_keys=HOT_KEYS)


def _run_proxy(technique: str, clients: int, ops: int, seed: int) -> dict:
    system, server, client_contexts = star(seed=seed, clients=clients)
    policy = "caching" if technique == "caching" else "stub"
    store = KVStore()
    get_space(server).export(store, policy=policy)
    register(server, "kv", store)
    sessions = []
    for index, ctx in enumerate(client_contexts):
        proxy = bind(ctx, "kv")
        sessions.append(proxy_session(
            f"s{index}", ctx, proxy,
            OpMix(READ_FRACTION, _sampler(system, f"{technique}.{clients}.{index}",
                                          HOT_KEYS)),
            system.seeds.stream(f"e4.{technique}.{clients}.{index}")))
    with MessageWindow(system) as window:
        result = run_interleaved(sessions, ops)
    return {"clients": clients, "technique": technique,
            "mean_ms": ms(result.mean_latency()),
            "messages": window.report.messages}


def _run_dsm(clients: int, ops: int, seed: int) -> dict:
    system, server, client_contexts = star(seed=seed, clients=clients)
    dsm_kv = make_dsm_kv(server, client_contexts, num_pages=4,
                         slots_per_page=64)
    sessions = []
    for index, ctx in enumerate(client_contexts):
        sessions.append(dsm_session(
            f"s{index}", ctx, dsm_kv,
            OpMix(READ_FRACTION, _sampler(system, f"dsm.{clients}.{index}",
                                          HOT_KEYS)),
            system.seeds.stream(f"e4.dsm.{clients}.{index}")))
    with MessageWindow(system) as window:
        result = run_interleaved(sessions, ops)
    return {"clients": clients, "technique": "dsm",
            "mean_ms": ms(result.mean_latency()),
            "messages": window.report.messages}


def run(ops: int = 120, seed: int = 17) -> list[dict]:
    """Sweep client count × technique; returns one row per combination."""
    rows = []
    for clients in CLIENT_COUNTS:
        rows.append(_run_proxy("rpc", clients, ops, seed))
        rows.append(_run_proxy("caching", clients, ops, seed))
        rows.append(_run_dsm(clients, ops, seed))
    return rows
