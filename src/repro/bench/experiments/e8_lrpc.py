"""E8 — the co-location fast path (lightweight RPC).

Bershad et al.'s observation, replayed: a client whose invocations are
mostly local wins big from short-circuiting same-context calls to plain
procedure calls.  We sweep the fraction of invocations that target a
co-located service and measure mean latency with the fast path enabled and
(artificially) disabled.

Expected shape: with the fast path off, latency is flat and high (every
call marshals and crosses the kernel even at 100% locality); with it on,
latency falls linearly toward the local-call floor as locality rises.
"""

from __future__ import annotations

from ...apps.kv import KVStore
from ...core.export import get_space
from ...naming.bootstrap import bind, register
from ...rpc.lightweight import lrpc_disabled
from ..common import star, us

TITLE = "E8: LRPC fast path — mean latency vs local fraction"
COLUMNS = ["local_fraction", "fast_path", "mean_us"]

LOCAL_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 0.95, 1.0)
OPS = 200


def _drive(system, client, local_proxy, remote_proxy, local_fraction: float,
           ops: int) -> float:
    # One shared stream name per fraction: the on/off runs see the exact
    # same local/remote sequence, so the comparison is paired.
    rng = system.seeds.stream(f"e8.{local_fraction}")
    started = client.clock.now
    for index in range(ops):
        target = local_proxy if rng.random() < local_fraction else remote_proxy
        target.get(f"k{index % 10}")
    return (client.clock.now - started) / ops


def run(ops: int = OPS, seed: int = 31) -> list[dict]:
    """Sweep local fraction × fast-path setting."""
    rows = []
    for local_fraction in LOCAL_FRACTIONS:
        for fast_path in (True, False):
            system, server, (client,) = star(seed=seed, clients=1)
            register(server, "kv_remote", KVStore())
            local_store = KVStore()
            ref = get_space(client).export(local_store)
            register(client, "kv_local", local_store)
            remote_proxy = bind(client, "kv_remote")
            # Bind the co-located service through the same machinery; a
            # stub is forced (rather than the raw object) so both sides go
            # through the protocol and only the fast path differs.
            from ...rpc.stubs import RemoteStub
            local_proxy = RemoteStub(client, ref,
                                     interface=type(local_store).interface())
            if fast_path:
                mean = _drive(system, client, local_proxy, remote_proxy,
                              local_fraction, ops)
            else:
                with lrpc_disabled(system.rpc):
                    mean = _drive(system, client, local_proxy, remote_proxy,
                                  local_fraction, ops)
            rows.append({"local_fraction": local_fraction,
                         "fast_path": fast_path, "mean_us": us(mean)})
    return rows
