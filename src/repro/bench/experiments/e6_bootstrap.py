"""E6 — uniform structure: binding through the name service.

Two measurements:

* the **bootstrap handshake**: messages needed to go from "knows only the
  primordial reference" to "holds a working, fully configured proxy" —
  one lookup round trip plus one installation-handshake round trip;
* the **resolution chain**: hierarchical names resolved through directory
  services scattered across contexts — latency and messages grow linearly
  with depth because each component is one proxied invocation (the
  structural figure of the paper, executed).
"""

from __future__ import annotations

from ...apps.kv import KVStore
from ...metrics.counters import MessageWindow
from ...naming.bootstrap import bind, make_directory_tree, register, resolve
from ..common import mesh, ms, star

TITLE = "E6: bootstrap and name-resolution chains"
COLUMNS = ["scenario", "depth", "messages", "latency_ms"]

DEPTHS = (1, 2, 4, 8)


def run(seed: int = 23) -> list[dict]:
    """Measure the bind handshake and resolution chains of growing depth."""
    rows = []

    # --- flat bind through the root name service ------------------------------
    system, server, (client,) = star(seed=seed, clients=1)
    register(server, "kv", KVStore())
    with MessageWindow(system) as window:
        started = client.clock.now
        proxy = bind(client, "kv")
        latency = client.clock.now - started
    assert proxy is not None
    rows.append({"scenario": "bind via name service", "depth": 1,
                 "messages": window.report.messages,
                 "latency_ms": ms(latency)})

    # --- directory chains across contexts -------------------------------------
    for depth in DEPTHS:
        system, contexts = mesh(seed=seed, nodes=min(4, depth + 1))
        client = contexts[-1]
        target = KVStore()
        from ...core.export import get_space
        get_space(contexts[0]).export(target)
        root = make_directory_tree(client, depth, leaf_target=target,
                                   contexts=contexts[:-1])
        path = "/".join(f"d{level}" for level in range(1, depth)) + \
            ("/" if depth > 1 else "") + "leaf"
        with MessageWindow(system) as window:
            started = client.clock.now
            leaf = resolve(client, root, path)
            latency = client.clock.now - started
        assert leaf is not None
        rows.append({"scenario": "directory chain", "depth": depth,
                     "messages": window.report.messages,
                     "latency_ms": ms(latency)})
    return rows
