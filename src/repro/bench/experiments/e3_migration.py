"""E3 — the migration crossover.

A single client hammers one small object.  The migrating proxy pays a
one-time relocation cost (state transfer + bookkeeping) to turn every later
invocation into a local call; the plain stub pays a round trip forever.
Total cost as a function of burst length exposes the crossover at roughly

    migrate_cost / (remote_rpc - local_call)   operations.
"""

from __future__ import annotations

from ...apps.counter import Counter
from ...core.export import get_space
from ...naming.bootstrap import bind, register
from ..common import ms, star

TITLE = "E3: migrating proxy vs stub — total cost vs burst length"
COLUMNS = ["ops", "policy", "total_ms", "migrated"]

BURSTS = (1, 2, 5, 10, 20, 50, 100, 200)
MIGRATE_AFTER = 4


def _run_one(policy: str, ops: int, seed: int) -> dict:
    system, server, (client,) = star(seed=seed, clients=1)
    counter = Counter()
    config = {"migrate_after": MIGRATE_AFTER} if policy == "migrating" else {}
    get_space(server).export(counter, policy=policy, config=config)
    register(server, "ctr", counter)
    proxy = bind(client, "ctr")
    started = client.clock.now
    for _ in range(ops):
        proxy.incr()
    elapsed = client.clock.now - started
    migrated = bool(proxy.proxy_stats.get("migrations", 0))
    return {"ops": ops, "policy": policy, "total_ms": ms(elapsed),
            "migrated": migrated}


def run(seed: int = 13) -> list[dict]:
    """Sweep burst length × policy; returns one row per combination."""
    rows = []
    for ops in BURSTS:
        for policy in ("stub", "migrating"):
            rows.append(_run_one(policy, ops, seed))
    return rows


def paired(rows: list[dict]) -> list[dict]:
    """Re-shape to one row per burst with both totals (for crossover_x)."""
    by_ops: dict[int, dict] = {}
    for row in rows:
        slot = by_ops.setdefault(row["ops"], {"ops": row["ops"]})
        slot[f"{row['policy']}_ms"] = row["total_ms"]
    return [by_ops[ops] for ops in sorted(by_ops)]
