"""E9 — replication: latency, availability, and the quorum consistency trade.

Three sweeps share the table:

* **Write-all sweep** (``mode="write-all"``, the legacy contract) over the
  replica count: read latency *falls* (a nearby replica exists more often —
  modelled with one slow "far" link to the primary), write latency *rises*
  linearly, and availability under a periodic crash plan *rises* (reads
  fail over; writes succeed while a majority remains).

* **Quorum sweep** (``mode="quorum"``) over ``(write_quorum, read_quorum)``
  at a fixed N=3: the versioned quorum mode of
  :mod:`repro.core.policies.replicating`.  An overlapped configuration
  (R + W > N, e.g. ``(2, 2)``) never serves a stale read; the under-quorumed
  ``(1, 1)`` buys availability and latency with staleness; ``(3, 1)`` pins
  every copy fresh and pays for it in availability.

* **Failover panel** (``mode="failover-static"`` / ``"failover-lease"``)
  at N=3, W=2, R=2: the primary is crashed a third of the way into a
  write-only workload and never restarted.  The two rows share one RNG
  stream (paired op sequences), so they differ only in the election
  policy: the static-primary deployment loses *every* subsequent write,
  while the lease-based one rides out a single bounded unavailability
  window (``unavail_ms`` — the virtual-time gap between the kill and the
  next acknowledged write, bounded by the lease TTL plus the election
  time) and then recovers full goodput.

The staleness probe drives a writer client and a reader client through a
crash plan with round-robin reads; values are globally monotone integers,
so a read is **stale** exactly when it returns less than the last
acknowledged write of its key.
"""

from __future__ import annotations

from ...apps.kv import KVStore
from ...core.policies.replicating import replicate
from ...failures.injectors import CrashPlan, begin_crash
from ...kernel.errors import DistributionError
from ...kernel.network import LinkSpec
from ...naming.bootstrap import bind, register
from ...workloads.distributions import UniformSampler
from ..common import mesh, ms

TITLE = "E9: replication — latency, availability, and the quorum trade"
COLUMNS = ["replicas", "mode", "write_quorum", "read_quorum",
           "read_ms", "write_ms", "availability", "stale_reads",
           "unavail_ms", "goodput_after"]

REPLICA_COUNTS = (1, 2, 3, 5)
#: (write_quorum, read_quorum) points of the N=3 quorum sweep.
QUORUM_CONFIGS = ((1, 1), (2, 2), (3, 1))
OPS = 120


def _deploy(contexts, replicas: int, write_quorum: int,
            read_quorum: int | None):
    """A replica group over the first ``replicas`` contexts; quorum mode
    when ``read_quorum`` is given, legacy write-all otherwise."""
    if read_quorum is None:
        return replicate(contexts[:replicas], KVStore,
                         write_quorum=write_quorum)
    return replicate(contexts[:replicas], KVStore,
                     write_quorum=write_quorum, read_quorum=read_quorum,
                     version_key="arg0", read_policy="roundrobin")


def _latency(replicas: int, seed: int, ops: int, write_quorum: int,
             read_quorum: int | None) -> tuple[float, float]:
    """Fault-free per-op read and write latency (ms) from a WAN client."""
    system, contexts = mesh(seed=seed, nodes=replicas + 1)
    client = contexts[-1]
    # The client sits far from the primary: a 5x-latency link models a WAN
    # hop, so additional (near) replicas visibly help reads.
    costs = system.costs
    system.network.set_link(client.node.name, contexts[0].node.name,
                            LinkSpec(latency=costs.remote_latency * 5,
                                     byte_cost=costs.byte_cost))
    ref = _deploy(contexts, replicas, write_quorum, read_quorum)
    register(contexts[0], "kv", ref)
    proxy = bind(client, "kv")
    proxy.put("key", 0)
    t0 = client.clock.now
    for _ in range(ops):
        proxy.get("key")
    read_ms = ms((client.clock.now - t0) / ops)
    t0 = client.clock.now
    for index in range(ops // 4):
        proxy.put("key", index + 1)
    write_ms = ms((client.clock.now - t0) / (ops // 4))
    return read_ms, write_ms


def _probe(replicas: int, seed: int, ops: int, write_quorum: int,
           read_quorum: int | None) -> tuple[float, int]:
    """Availability and stale reads under a periodic crash plan.

    A writer client and a reader client interleave (one op per tick, the
    plan advancing each tick).  Written values are globally monotone, so
    ``read < last acked write of the key`` — or a missing key that was
    acknowledged — is a stale read.
    """
    system, contexts = mesh(seed=seed, nodes=replicas + 2)
    writer_ctx, reader_ctx = contexts[-2], contexts[-1]
    ref = _deploy(contexts, replicas, write_quorum, read_quorum)
    register(contexts[0], "kv", ref)
    writer = bind(writer_ctx, "kv")
    writer.proxy_config["read_policy"] = "roundrobin"
    reader = bind(reader_ctx, "kv")
    reader.proxy_config["read_policy"] = "roundrobin"
    plan = CrashPlan.periodic([ctx.node.name for ctx in contexts[:replicas]],
                              every=15, duration=5, total_ops=ops)
    # One shared stream name: every configuration sees the *same* op
    # sequence, so availability and staleness compare pairwise.
    rng = system.seeds.stream("e9.probe.ops")
    sampler = UniformSampler(8, system.seeds.stream("e9.probe.keys"))
    acked: dict[str, int] = {}
    sequence = 0
    failures = 0
    stale = 0
    for _ in range(ops):
        plan.tick(system)
        key = sampler.sample()
        if rng.random() < 0.5:
            sequence += 1
            try:
                writer.put(key, sequence)
                acked[key] = sequence
            except DistributionError:
                failures += 1
        else:
            try:
                value = reader.get(key)
            except DistributionError:
                failures += 1
                continue
            if key in acked and (value is None or value < acked[key]):
                stale += 1
    return 1.0 - failures / ops, stale


def _failover(elect: bool, seed: int, ops: int) -> dict:
    """Goodput around a primary kill for one election policy.

    Both policies run the identical paired op sequence (one shared seeded
    stream name); the primary is crashed at ``ops // 3`` and stays down.
    Returns the write availability after the kill and the unavailability
    window (virtual ms from the kill to the next acknowledged write).
    """
    system, contexts = mesh(seed=seed, nodes=4)
    client = contexts[-1]
    ref = replicate(contexts[:3], KVStore, write_quorum=2, read_quorum=2,
                    version_key="arg0", read_policy="roundrobin",
                    elect=elect)
    register(contexts[0], "kv", ref)
    proxy = bind(client, "kv")
    rng = system.seeds.stream("e9.failover.ops")
    kill_at = ops // 3
    crash_time = None
    recovered_at = None
    after_ok = 0
    sequence = 0
    for index in range(ops):
        if index == kill_at:
            crash_time = client.clock.now
            begin_crash(system, contexts[0].node.name)    # never restored
        key = f"k{rng.randrange(4)}"
        sequence += 1
        try:
            proxy.put(key, sequence)
        except DistributionError:
            continue
        if crash_time is not None:
            after_ok += 1
            if recovered_at is None:
                recovered_at = client.clock.now
    after_total = ops - kill_at
    return {
        "replicas": 3, "mode": "failover-lease" if elect
        else "failover-static", "write_quorum": 2, "read_quorum": 2,
        "availability": (kill_at + after_ok) / ops,
        # None = never recovered (JSON-safe; rendered as an empty cell).
        "unavail_ms": ms(recovered_at - crash_time)
        if recovered_at is not None else None,
        "goodput_after": after_ok / after_total,
    }


def run(ops: int = OPS, seed: int = 37) -> list[dict]:
    """Both sweeps; one row per configuration."""
    rows = []
    for replicas in REPLICA_COUNTS:
        quorum = max(1, replicas // 2 + 1)
        read_ms, write_ms = _latency(replicas, seed, ops, quorum, None)
        availability, stale = _probe(replicas, seed + 1, ops, quorum, None)
        rows.append({"replicas": replicas, "mode": "write-all",
                     "write_quorum": quorum, "read_quorum": 0,
                     "read_ms": read_ms, "write_ms": write_ms,
                     "availability": availability, "stale_reads": stale})
    for write_quorum, read_quorum in QUORUM_CONFIGS:
        read_ms, write_ms = _latency(3, seed, ops, write_quorum, read_quorum)
        availability, stale = _probe(3, seed + 1, ops, write_quorum,
                                     read_quorum)
        rows.append({"replicas": 3, "mode": "quorum",
                     "write_quorum": write_quorum,
                     "read_quorum": read_quorum,
                     "read_ms": read_ms, "write_ms": write_ms,
                     "availability": availability, "stale_reads": stale})
    for elect in (False, True):
        rows.append(_failover(elect, seed + 2, ops))
    return rows
