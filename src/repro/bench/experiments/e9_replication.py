"""E9 — replication: read latency, write cost, and availability.

The replicated proxy binds reads to the nearest replica and fans writes out
to all of them.  Three effects, one sweep over the replica count:

* read latency *falls* (a nearby replica exists more often — modelled here
  with one slow "far" link to the primary);
* write latency *rises* linearly (write-all);
* availability under a periodic crash plan *rises* (reads fail over; writes
  succeed while a quorum remains).
"""

from __future__ import annotations

from ...apps.kv import KVStore
from ...core.policies.replicating import replicate
from ...failures.injectors import CrashPlan
from ...kernel.network import LinkSpec
from ...naming.bootstrap import bind, register
from ...workloads.distributions import UniformSampler
from ...workloads.sessions import OpMix, proxy_session, run_interleaved
from ..common import mesh, ms

TITLE = "E9: replication — latency and availability vs replica count"
COLUMNS = ["replicas", "read_ms", "write_ms", "availability"]

REPLICA_COUNTS = (1, 2, 3, 5)
OPS = 120


def _build(replicas: int, seed: int):
    system, contexts = mesh(seed=seed, nodes=replicas + 1)
    client = contexts[-1]
    # The client sits far from the primary: a 5x-latency link models a WAN
    # hop, so additional (near) replicas visibly help reads.
    costs = system.costs
    system.network.set_link(client.node.name, contexts[0].node.name,
                            LinkSpec(latency=costs.remote_latency * 5,
                                     byte_cost=costs.byte_cost))
    quorum = max(1, replicas // 2 + 1)
    ref = replicate(contexts[:replicas], KVStore, write_quorum=quorum)
    register(contexts[0], "kv", ref)
    proxy = bind(client, "kv")
    return system, contexts, client, proxy


def run(ops: int = OPS, seed: int = 37) -> list[dict]:
    """Sweep replica count; returns one row per count."""
    rows = []
    for replicas in REPLICA_COUNTS:
        # -- latency, fault-free ------------------------------------------------
        system, contexts, client, proxy = _build(replicas, seed)
        proxy.put("key", "value0")
        t0 = client.clock.now
        for index in range(ops):
            proxy.get("key")
        read_ms = ms((client.clock.now - t0) / ops)
        t0 = client.clock.now
        for index in range(ops // 4):
            proxy.put("key", f"value{index}")
        write_ms = ms((client.clock.now - t0) / (ops // 4))

        # -- availability under a crash plan -------------------------------------
        system, contexts, client, proxy = _build(replicas, seed + 1)
        replica_nodes = [ctx.node.name for ctx in contexts[:replicas]]
        plan = CrashPlan.periodic(replica_nodes, every=15, duration=5,
                                  total_ops=ops)
        session = proxy_session(
            "avail", client, proxy,
            OpMix(0.8, UniformSampler(8, system.seeds.stream("e9.keys"))),
            system.seeds.stream(f"e9.{replicas}"))
        result = run_interleaved([session], ops, crash_plan=plan)
        availability = 1.0 - result.failures / result.operations
        rows.append({"replicas": replicas, "read_ms": read_ms,
                     "write_ms": write_ms, "availability": availability})
    return rows
