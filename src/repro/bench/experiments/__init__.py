"""The experiment suite: one module per table/figure (see DESIGN.md)."""

from . import (
    e1_invocation_matrix,
    e2_caching,
    e3_migration,
    e4_sharing,
    e5_encapsulation,
    e6_bootstrap,
    e7_failures,
    e7b_resilience,
    e7c_hedging,
    e8_lrpc,
    e9_replication,
    e10_marshalling,
    e11_ablation,
    e12_pipelining,
    e13_persistence,
    e14_transactions,
    e15_weak_dsm,
    e16_events,
    e17_wan_placement,
    e18_fastpath,
    e19_sharding,
    e20_admission,
    e21_regions,
)

#: Every experiment module, in presentation order.
ALL = [
    e1_invocation_matrix, e2_caching, e3_migration, e4_sharing,
    e5_encapsulation, e6_bootstrap, e7_failures, e7b_resilience,
    e7c_hedging, e8_lrpc,
    e9_replication, e10_marshalling, e11_ablation, e12_pipelining,
    e13_persistence, e14_transactions, e15_weak_dsm, e16_events,
    e17_wan_placement, e18_fastpath, e19_sharding, e20_admission,
    e21_regions,
]

__all__ = ["ALL"] + [module.__name__.rsplit(".", 1)[-1] for module in ALL]
