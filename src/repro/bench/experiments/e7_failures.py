"""E7 — failure transparency: what the proxy absorbs as the network degrades.

A client works a key-value service while the network drops messages with
rising probability.  The RPC discipline under the proxy (retransmission +
server-side replay cache) masks loss completely until the retry budget is
exhausted; the client sees only latency growth.

The at-most-once half matters as much as the retry half: the companion E11
ablation turns the replay cache *off* and counts duplicate executions — with
it on, this experiment's duplicate count stays zero at every loss rate.
"""

from __future__ import annotations

from ...apps.counter import Counter
from ...apps.kv import KVStore
from ...failures.injectors import message_loss
from ...kernel.errors import RpcTimeout
from ...naming.bootstrap import bind, register
from ..common import ms, star

TITLE = "E7: proxy under message loss — success, latency, retries"
COLUMNS = ["loss", "success_rate", "mean_ms", "retries_per_op",
           "duplicate_execs"]

LOSS_RATES = (0.0, 0.05, 0.1, 0.2, 0.3)
OPS = 120


def run(ops: int = OPS, seed: int = 29) -> list[dict]:
    """Sweep loss probability; returns one row per rate."""
    rows = []
    for loss in LOSS_RATES:
        system, server, (client,) = star(seed=seed, clients=1)
        store = KVStore()
        register(server, "kv", store)
        counter = Counter()
        register(server, "ctr", counter)
        kv = bind(client, "kv")
        ctr = bind(client, "ctr")
        protocol = system.rpc
        retries_before = protocol.stats["retries"]
        successes = 0
        incr_attempts = 0
        started = client.clock.now
        with message_loss(system, loss):
            for index in range(ops):
                try:
                    if index % 3 == 0:
                        ctr.incr()
                        incr_attempts += 1
                    elif index % 3 == 1:
                        kv.put(f"k{index}", index)
                    else:
                        kv.get(f"k{index - 1}")
                    successes += 1
                except RpcTimeout:
                    pass
        elapsed = client.clock.now - started
        # With at-most-once semantics the counter equals the number of
        # *executed* increments; duplicates would push it past attempts.
        duplicates = max(0, counter.value - incr_attempts)
        rows.append({
            "loss": loss,
            "success_rate": successes / ops,
            "mean_ms": ms(elapsed / ops),
            "retries_per_op": (protocol.stats["retries"] - retries_before) / ops,
            "duplicate_execs": duplicates,
        })
    return rows
