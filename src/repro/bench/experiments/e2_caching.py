"""E2 — caching proxy vs plain stub across the read/write mix.

The paper's file-cache example, quantified: as the read fraction rises, the
caching proxy answers more operations locally and pulls away from the plain
stub; in write-dominated mixes the invalidation traffic makes it roughly a
wash (that near-crossover is the shape this experiment pins down).

Variants: server-driven invalidation (coherent) and pure-TTL caching
(weaker; no server machinery) — an ablation DESIGN.md calls out.
"""

from __future__ import annotations

from ...apps.kv import KVStore
from ...metrics.counters import MessageWindow
from ...naming.bootstrap import bind, register
from ...workloads.distributions import ZipfSampler
from ...workloads.sessions import OpMix, proxy_session, run_interleaved
from ..common import ms, star

TITLE = "E2: caching proxy vs stub — latency vs read ratio"
COLUMNS = ["read_ratio", "policy", "mean_ms", "messages", "hit_rate"]

READ_RATIOS = (0.0, 0.25, 0.5, 0.75, 0.9, 0.99)
POLICIES = (
    ("stub", {}),
    ("caching", {"invalidation": True}),
    ("caching-ttl", {"invalidation": False, "ttl": 0.02}),
)


def _run_one(policy: str, config: dict, read_ratio: float, clients: int,
             ops: int, keys: int, seed: int) -> dict:
    system, server, client_contexts = star(seed=seed, clients=clients)
    actual_policy = "caching" if policy.startswith("caching") else policy
    store = KVStore()
    from ...core.export import get_space
    get_space(server).export(store, policy=actual_policy, config=dict(config))
    register(server, "kv", store)
    sessions = []
    for index, ctx in enumerate(client_contexts):
        proxy = bind(ctx, "kv")
        rng = system.seeds.stream(f"e2.{policy}.{read_ratio}.{index}")
        sampler = ZipfSampler(keys, system.seeds.stream(
            f"e2.keys.{policy}.{read_ratio}.{index}"))
        sessions.append(proxy_session(f"s{index}", ctx, proxy,
                                      OpMix(read_ratio, sampler), rng))
    with MessageWindow(system) as window:
        result = run_interleaved(sessions, ops)
    hits = misses = 0
    for ctx in client_contexts:
        for proxy in ctx.proxies.values():
            stats = proxy.proxy_stats
            hits += stats.get("hits", 0)
            misses += stats.get("misses", 0)
    total_reads = hits + misses
    return {
        "read_ratio": read_ratio,
        "policy": policy,
        "mean_ms": ms(result.mean_latency()),
        "messages": window.report.messages,
        "hit_rate": hits / total_reads if total_reads else 0.0,
    }


def run(clients: int = 4, ops: int = 150, keys: int = 50,
        seed: int = 11) -> list[dict]:
    """Sweep read ratio × policy; returns one row per combination."""
    rows = []
    for read_ratio in READ_RATIOS:
        for policy, config in POLICIES:
            rows.append(_run_one(policy, config, read_ratio, clients,
                                 ops, keys, seed))
    return rows
