"""E10 — marshalling cost and reference-vs-value parameter passing.

Two measurements at the wire layer:

* **payload sweep**: per-invocation latency as the argument grows from 16 B
  to 64 KB — at small sizes the fixed per-message costs dominate (the
  lightweight-RPC argument); at large sizes the byte costs do;
* **reference vs value**: passing N service objects per call.  By value
  they are re-serialised state every time; by reference each is a
  constant-size :class:`ObjectRef` that surfaces remotely as a proxy —
  claim 5 of the paper, with byte counts attached.
"""

from __future__ import annotations

from ...apps.kv import KVStore
from ...core.export import get_space
from ...iface.interface import operation
from ...core.service import Service
from ...metrics.counters import MessageWindow
from ...naming.bootstrap import bind, register
from ..common import ms, star

TITLE = "E10: marshalling — payload sweep and reference vs value"
COLUMNS = ["scenario", "size", "mean_ms", "bytes_per_op"]

PAYLOAD_SIZES = (16, 256, 1024, 4096, 16384, 65536)
REF_COUNTS = (1, 4, 16)
OPS = 40


class Sink(Service):
    """Accepts anything; used to measure pure transport cost."""

    @operation(compute=1e-6)
    def accept(self, item) -> int:
        """Swallow one argument; returns 0."""
        return 0

    @operation(compute=1e-6)
    def accept_many(self, items: list) -> int:
        """Swallow a list; returns its length."""
        return len(items)


def run(ops: int = OPS, seed: int = 41) -> list[dict]:
    """Payload sweep plus reference-vs-value comparison."""
    rows = []
    for size in PAYLOAD_SIZES:
        system, server, (client,) = star(seed=seed, clients=1)
        register(server, "sink", Sink())
        sink = bind(client, "sink")
        blob = b"x" * size
        sink.accept(blob)  # warm the bind path out of the measurement
        with MessageWindow(system) as window:
            t0 = client.clock.now
            for _ in range(ops):
                sink.accept(blob)
            mean = (client.clock.now - t0) / ops
        rows.append({"scenario": "payload", "size": size,
                     "mean_ms": ms(mean),
                     "bytes_per_op": window.report.bytes / ops})

    for count in REF_COUNTS:
        # by value: ship each object's state dict every call
        system, server, (client,) = star(seed=seed, clients=1)
        register(server, "sink", Sink())
        sink = bind(client, "sink")
        values = [{"name": f"obj{i}", "data": "y" * 512} for i in range(count)]
        sink.accept_many(values)
        with MessageWindow(system) as window:
            t0 = client.clock.now
            for _ in range(ops):
                sink.accept_many(values)
            mean = (client.clock.now - t0) / ops
        rows.append({"scenario": f"{count} args by value", "size": count,
                     "mean_ms": ms(mean),
                     "bytes_per_op": window.report.bytes / ops})

        # by reference: the same objects exported once, refs on the wire
        system, server, (client,) = star(seed=seed, clients=1)
        register(server, "sink", Sink())
        sink = bind(client, "sink")
        space = get_space(client)
        stores = []
        for i in range(count):
            store = KVStore()
            store.put("name", f"obj{i}")
            store.put("data", "y" * 512)
            space.export(store)
            stores.append(store)
        sink.accept_many(stores)
        with MessageWindow(system) as window:
            t0 = client.clock.now
            for _ in range(ops):
                sink.accept_many(stores)
            mean = (client.clock.now - t0) / ops
        rows.append({"scenario": f"{count} args by reference", "size": count,
                     "mean_ms": ms(mean),
                     "bytes_per_op": window.report.bytes / ops})
    return rows


# -- gated bench: the zero-copy bulk path (BENCH_e10.json) -------------------

#: Payload sweep for the gated bench — 1 KiB to 1 MiB, bracketing
#: RAW_THRESHOLD (4 KiB) so the record shows both the inline and the
#: zero-copy regime.
BENCH_SIZES = (1024, 4096, 16384, 65536, 262144, 1048576)
BENCH_OPS = 200
_E2E_SIZES = (4096, 65536, 1048576)
_E2E_OPS = 40


def _pattern(size: int) -> bytes:
    """A fixed, incompressible-ish payload (no RNG: byte-stable record)."""
    return bytes((i * 131 + 17) % 251 for i in range(256)) * (size // 256) \
        + b"\x7f" * (size % 256)


def _wire_row(size: int, ops: int) -> dict:
    """Round-trip one ONEWAY frame carrying a ``size``-byte body, both
    through the legacy recursive codec and through the message fast path
    (raw segments + carried decode), asserting byte-compatible output."""
    from ...wire.frames import Frame
    from ...wire.marshal import Marshaller
    from ..timing import wall_clock

    encoder = Marshaller()
    decoder = Marshaller()
    blob = _pattern(size)
    frame = Frame("one", 1, "c0/main", "s0/main", target="sink",
                  verb="accept", body=((blob,), {}))
    legacy_image = frame.encode(encoder)
    message = frame.encode_message(encoder)
    nbytes = len(message)
    if nbytes != len(legacy_image):
        raise AssertionError(
            f"E10 wire-size drift at {size} B: fast path {nbytes} vs "
            f"legacy {len(legacy_image)}")
    decoded = Frame.decode_message(
        frame.encode_message(encoder), decoder)
    lossless = decoded.body == ((blob,), {}) \
        and Frame.decode(legacy_image, decoder).body == ((blob,), {})

    def _legacy_pass() -> float:
        start = wall_clock()
        for index in range(ops):
            img = Frame("one", index, "c0/main", "s0/main", target="sink",
                        verb="accept", body=((blob,), {})).encode(encoder)
            Frame.decode(img, decoder)
        return wall_clock() - start

    def _fast_pass() -> float:
        start = wall_clock()
        for index in range(ops):
            msg = Frame("one", index, "c0/main", "s0/main", target="sink",
                        verb="accept",
                        body=((blob,), {})).encode_message(encoder)
            Frame.decode_message(msg, decoder)
        return wall_clock() - start

    legacy_wall = min(_legacy_pass() for _ in range(3))
    fast_wall = min(_fast_pass() for _ in range(3))
    return {
        "scenario": f"wire-{size}",
        "size": size,
        "nbytes": nbytes,
        "lossless": lossless,
        "wall_us_legacy": round(legacy_wall / ops * 1e6, 2),
        "wall_us_fast": round(fast_wall / ops * 1e6, 2),
        "speedup": round(legacy_wall / fast_wall, 2),
        "wall_seconds": fast_wall,
        "ops": ops,
    }


def _e2e_row(size: int, ops: int, seed: int) -> dict:
    """Drive ``ops`` bulk invocations through the full simulated stack.

    The virtual-time fields double as a zero-copy *transparency* check:
    they are deterministic, so the perf gate fails if the bulk path ever
    changes what the cost model observes (sizes, timings)."""
    from ..timing import wall_clock

    def _one_run() -> dict:
        system, server, (client,) = star(seed=seed, clients=1)
        register(server, "sink", Sink())
        sink = bind(client, "sink")
        blob = _pattern(size)
        sink.accept(blob)  # warm the bind path out of the measurement
        with MessageWindow(system) as window:
            t0 = client.clock.now
            started = wall_clock()
            for _ in range(ops):
                sink.accept(blob)
            wall = wall_clock() - started
            sim_mean = (client.clock.now - t0) / ops
        return {
            "sim_mean_ms": ms(sim_mean),
            "bytes_per_op": window.report.bytes / ops,
            "wall_seconds": wall,
        }

    runs = [_one_run() for _ in range(2)]
    for field in ("sim_mean_ms", "bytes_per_op"):
        if runs[0][field] != runs[1][field]:
            raise AssertionError(
                f"E10 determinism violated: e2e-{size} {field} drifted "
                f"({runs[0][field]!r} vs {runs[1][field]!r})")
    best = min(run_["wall_seconds"] for run_ in runs)
    return {
        "scenario": f"e2e-{size}",
        "size": size,
        "sim_mean_ms": runs[0]["sim_mean_ms"],
        "bytes_per_op": runs[0]["bytes_per_op"],
        "wall_us_fast": round(best / ops * 1e6, 2),
        "wall_seconds": best,
        "ops": ops,
    }


def bench_payload(ops: int = BENCH_OPS, seed: int = 41) -> dict:
    """The machine-readable BENCH_e10.json record.

    Wire rows compare the legacy recursive codec against the zero-copy
    message path on the same frames (same wire length, byte-compatible
    decode); e2e rows put bulk payloads through the whole simulated
    stack.  Deterministic fields (``nbytes``, ``lossless``,
    ``sim_mean_ms``, ``bytes_per_op``) are machine-independent; wall
    readings are normalised against the host calibration rate so the
    perf gate can compare machines (``norm_fast``)."""
    from ..timing import CalibrationBracket

    bracket = CalibrationBracket()
    rows = [_wire_row(size, ops) for size in BENCH_SIZES]
    rows += [_e2e_row(size, _E2E_OPS, seed) for size in _E2E_SIZES]
    rate = bracket.close()
    for row in rows:
        row_ops = row.pop("ops")
        wall = row.pop("wall_seconds")
        row["norm_fast"] = round(row_ops / wall / rate * 1e6, 1)
    return {
        "experiment": "e10",
        "ops": ops,
        "seed": seed,
        "calibration_rate": round(rate, 1),
        "scenarios": rows,
    }


def bench_rows(payload: dict) -> list[dict]:
    """Table form of :func:`bench_payload`."""
    return payload["scenarios"]


def bench_footer(payload: dict) -> str:
    """One-line summary: the zero-copy win on the bulk sizes."""
    bulk = [row for row in payload["scenarios"]
            if row["scenario"].startswith("wire-") and row["size"] >= 65536]
    if not bulk:
        return ""
    worst = min(row["speedup"] for row in bulk)
    return (f"zero-copy speedup at >=64 KiB: >= {worst:.1f}x "
            f"(calibration {payload['calibration_rate'] / 1e6:.1f}M it/s)")
