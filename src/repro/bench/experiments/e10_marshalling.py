"""E10 — marshalling cost and reference-vs-value parameter passing.

Two measurements at the wire layer:

* **payload sweep**: per-invocation latency as the argument grows from 16 B
  to 64 KB — at small sizes the fixed per-message costs dominate (the
  lightweight-RPC argument); at large sizes the byte costs do;
* **reference vs value**: passing N service objects per call.  By value
  they are re-serialised state every time; by reference each is a
  constant-size :class:`ObjectRef` that surfaces remotely as a proxy —
  claim 5 of the paper, with byte counts attached.
"""

from __future__ import annotations

from ...apps.kv import KVStore
from ...core.export import get_space
from ...iface.interface import operation
from ...core.service import Service
from ...metrics.counters import MessageWindow
from ...naming.bootstrap import bind, register
from ..common import ms, star

TITLE = "E10: marshalling — payload sweep and reference vs value"
COLUMNS = ["scenario", "size", "mean_ms", "bytes_per_op"]

PAYLOAD_SIZES = (16, 256, 1024, 4096, 16384, 65536)
REF_COUNTS = (1, 4, 16)
OPS = 40


class Sink(Service):
    """Accepts anything; used to measure pure transport cost."""

    @operation(compute=1e-6)
    def accept(self, item) -> int:
        """Swallow one argument; returns 0."""
        return 0

    @operation(compute=1e-6)
    def accept_many(self, items: list) -> int:
        """Swallow a list; returns its length."""
        return len(items)


def run(ops: int = OPS, seed: int = 41) -> list[dict]:
    """Payload sweep plus reference-vs-value comparison."""
    rows = []
    for size in PAYLOAD_SIZES:
        system, server, (client,) = star(seed=seed, clients=1)
        register(server, "sink", Sink())
        sink = bind(client, "sink")
        blob = b"x" * size
        sink.accept(blob)  # warm the bind path out of the measurement
        with MessageWindow(system) as window:
            t0 = client.clock.now
            for _ in range(ops):
                sink.accept(blob)
            mean = (client.clock.now - t0) / ops
        rows.append({"scenario": "payload", "size": size,
                     "mean_ms": ms(mean),
                     "bytes_per_op": window.report.bytes / ops})

    for count in REF_COUNTS:
        # by value: ship each object's state dict every call
        system, server, (client,) = star(seed=seed, clients=1)
        register(server, "sink", Sink())
        sink = bind(client, "sink")
        values = [{"name": f"obj{i}", "data": "y" * 512} for i in range(count)]
        sink.accept_many(values)
        with MessageWindow(system) as window:
            t0 = client.clock.now
            for _ in range(ops):
                sink.accept_many(values)
            mean = (client.clock.now - t0) / ops
        rows.append({"scenario": f"{count} args by value", "size": count,
                     "mean_ms": ms(mean),
                     "bytes_per_op": window.report.bytes / ops})

        # by reference: the same objects exported once, refs on the wire
        system, server, (client,) = star(seed=seed, clients=1)
        register(server, "sink", Sink())
        sink = bind(client, "sink")
        space = get_space(client)
        stores = []
        for i in range(count):
            store = KVStore()
            store.put("name", f"obj{i}")
            store.put("data", "y" * 512)
            space.export(store)
            stores.append(store)
        sink.accept_many(stores)
        with MessageWindow(system) as window:
            t0 = client.clock.now
            for _ in range(ops):
                sink.accept_many(stores)
            mean = (client.clock.now - t0) / ops
        rows.append({"scenario": f"{count} args by reference", "size": count,
                     "mean_ms": ms(mean),
                     "bytes_per_op": window.report.bytes / ops})
    return rows
