"""E12 — asynchronous promises: hiding the round trip (extension).

Not in the 1986 paper, but the next step its lineage took (Liskov & Shrira's
promises, 1988): once invocation is reified behind a proxy, nothing forces
the client to block per call.  We issue a fixed batch of independent reads
with a bounded number outstanding and sweep that window.

Expected shape: total time falls from N × RTT (window 1 — classic RPC)
towards RTT + N × server-spacing (unbounded window), with diminishing
returns once the window covers the bandwidth-delay product.
"""

from __future__ import annotations

from ...apps.kv import KVStore
from ...naming.bootstrap import bind, register
from ...rpc.promises import pipeline_calls
from ..common import ms, star

TITLE = "E12: promise pipelining — total time vs window size"
COLUMNS = ["window", "total_ms", "speedup"]

WINDOWS = (1, 2, 4, 8, 16, 0)   # 0 = unbounded
OPS = 32


def run(ops: int = OPS, seed: int = 47) -> list[dict]:
    """Sweep the pipelining window; returns one row per window."""
    rows = []
    baseline = None
    for window in WINDOWS:
        system, server, (client,) = star(seed=seed, clients=1)
        store = KVStore()
        for index in range(8):
            store.put(f"k{index}", index)
        register(server, "kv", store)
        proxy = bind(client, "kv")
        proxy.get("k0")   # warm the bind path
        calls = [("get", f"k{index % 8}") for index in range(ops)]
        started = client.clock.now
        results = pipeline_calls(proxy, calls,
                                 window=window if window > 0 else None)
        total = client.clock.now - started
        assert results == [index % 8 for index in range(ops)]
        if baseline is None:
            baseline = total
        rows.append({"window": window if window else "unbounded",
                     "total_ms": ms(total),
                     "speedup": baseline / total if total else 0.0})
    return rows
