"""E5 — encapsulation: one client, five protocols, identical results.

The central claim of the paper, made executable.  A fixed, deterministic
operation script runs against the *same* service exported under every proxy
policy; client code is byte-for-byte identical (it only ever calls
``put``/``get``/``delete`` on whatever ``bind`` returned).

The table shows: the observable outcome (a digest of every read result and
of the final store state) is identical across policies, while the message
counts differ wildly — the distribution protocol is a private property of
the service, exactly as claimed.
"""

from __future__ import annotations

import hashlib

from ...apps.kv import KVStore
from ...core.export import get_space
from ...core.policies.replicating import replicate
from ...metrics.counters import MessageWindow
from ...naming.bootstrap import bind, register
from ..common import mesh, ms

TITLE = "E5: encapsulation — same script, same results, different protocols"
COLUMNS = ["policy", "digest", "messages", "bytes", "total_ms"]

POLICIES = ("stub", "caching", "batching", "migrating", "replicated")
SCRIPT_KEYS = 12
SCRIPT_ROUNDS = 8


def _script(store) -> str:
    """The fixed client script; returns a digest of everything observed.

    Deliberately ignores mutator return values (the batching policy defers
    them) — reads are the observable output.
    """
    observed = []
    for round_no in range(SCRIPT_ROUNDS):
        for key_no in range(SCRIPT_KEYS):
            key = f"key{key_no}"
            if (round_no + key_no) % 3 == 0:
                store.put(key, f"v{round_no}.{key_no}")
            elif (round_no + key_no) % 7 == 0:
                store.delete(key)
            observed.append((key, store.get(key)))
    for key_no in range(SCRIPT_KEYS):
        observed.append((f"key{key_no}", store.get(f"key{key_no}")))
    blob = repr(observed).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


def _deploy(policy: str, seed: int):
    """Build a system with the KV service exported under ``policy``.

    Returns ``(system, client_context)`` with the service registered as
    ``"kv"``.
    """
    system, contexts = mesh(seed=seed, nodes=4)
    server, client = contexts[0], contexts[-1]
    if policy == "replicated":
        ref = replicate(contexts[:3], KVStore, write_quorum=2)
        register(server, "kv", ref)
    else:
        store = KVStore()
        get_space(server).export(store, policy=policy)
        register(server, "kv", store)
    return system, client


def run(seed: int = 19) -> list[dict]:
    """Run the script under every policy; returns one row per policy."""
    rows = []
    for policy in POLICIES:
        system, client = _deploy(policy, seed)
        proxy = bind(client, "kv")
        started = client.clock.now
        with MessageWindow(system) as window:
            digest = _script(proxy)
        rows.append({
            "policy": policy,
            "digest": digest,
            "messages": window.report.messages,
            "bytes": window.report.bytes,
            "total_ms": ms(client.clock.now - started),
        })
    return rows


def digests_agree(rows: list[dict]) -> bool:
    """Whether every policy produced the identical observable outcome."""
    return len({row["digest"] for row in rows}) == 1
