"""E15 — weak vs strong DSM consistency under write sharing (extension).

The literature's escape hatch from E4's coherence collapse ("weaker forms
of consistency to lessen this overhead"): bounded-staleness read snapshots
instead of eager invalidation.  Same workload as E4's worst case — several
clients hammering one page — run under both protocols.

Expected shape: weak consistency recovers most of the latency and message
cost that sharing destroyed, and the price appears in the one column strong
consistency keeps at zero: the fraction of reads that returned a stale
value.
"""

from __future__ import annotations

from ...dsm.coherence import CoherenceProtocol
from ...dsm.heap import DsmKV, SharedHeap
from ...dsm.pages import SharedRegion
from ...dsm.weak import WeakCoherence
from ...metrics.counters import MessageWindow
from ...workloads.distributions import HotspotSampler
from ...workloads.sessions import OpMix, dsm_session, run_interleaved
from ..common import ms, star

TITLE = "E15: weak vs strong DSM — latency, messages, staleness"
COLUMNS = ["clients", "protocol", "mean_ms", "messages", "stale_read_frac"]

CLIENT_COUNTS = (2, 4, 8)
READ_FRACTION = 0.5
STALENESS_BOUND = 0.05


def _run_one(protocol_name: str, clients: int, ops: int, seed: int) -> dict:
    system, server, client_contexts = star(seed=seed, clients=clients)
    region = SharedRegion("e15", server, num_pages=2, slots_per_page=64)
    for ctx in client_contexts:
        region.attach(ctx)
    if protocol_name == "weak":
        protocol = WeakCoherence(region, staleness_bound=STALENESS_BOUND)
    else:
        protocol = CoherenceProtocol(region)
    kv = DsmKV(SharedHeap(region, protocol))
    sessions = []
    for index, ctx in enumerate(client_contexts):
        sampler = HotspotSampler(4, system.seeds.stream(
            f"e15.keys.{protocol_name}.{clients}.{index}"),
            hot_fraction=1.0, hot_keys=4)
        sessions.append(dsm_session(
            f"s{index}", ctx, kv, OpMix(READ_FRACTION, sampler),
            system.seeds.stream(f"e15.{protocol_name}.{clients}.{index}")))
    with MessageWindow(system) as window:
        result = run_interleaved(sessions, ops)
    reads = sum(session.reads for session in sessions)
    stale = protocol.stats.get("stale_reads", 0)
    return {
        "clients": clients,
        "protocol": protocol_name,
        "mean_ms": ms(result.mean_latency()),
        "messages": window.report.messages,
        "stale_read_frac": stale / reads if reads else 0.0,
    }


def run(ops: int = 100, seed: int = 61) -> list[dict]:
    """Sweep client count × protocol; returns one row per combination."""
    rows = []
    for clients in CLIENT_COUNTS:
        rows.append(_run_one("strong", clients, ops, seed))
        rows.append(_run_one("weak", clients, ops, seed))
    return rows
