"""E13 — persistence ablation: checkpoint interval vs overhead and loss.

Extension experiment for the persistence substrate (the paper's lineage:
SOS treated persistence behind the same object machinery).  One service is
checkpointed every N mutations; a crash hits mid-run.  The sweep exposes
the classic trade-off:

* small N — expensive (a disk write every few operations inflates mean
  latency) but almost nothing is lost at the crash;
* large N — cheap in steady state, but the crash rolls back up to N-1
  mutations.
"""

from __future__ import annotations

from ...apps.kv import KVStore
from ...core.export import get_space
from ...naming.bootstrap import bind, register
from ...persistence.manager import PersistenceManager, crash_node, recover_context
from ..common import ms, star

TITLE = "E13: checkpoint interval — write latency vs mutations lost at crash"
COLUMNS = ["interval", "mean_write_ms", "lost_at_crash", "disk_writes"]

INTERVALS = (1, 2, 4, 8, 16, 32)
OPS = 64
CRASH_AFTER = 50


def run(ops: int = OPS, seed: int = 53) -> list[dict]:
    """Sweep the auto-checkpoint interval; returns one row per interval."""
    rows = []
    for interval in INTERVALS:
        system, server, (client,) = star(seed=seed, clients=1)
        store = KVStore()
        register(server, "kv", store)
        space = get_space(server)
        manager = PersistenceManager(space)
        manager.auto_checkpoint(store, every=interval)
        proxy = bind(client, "kv")
        started = client.clock.now
        for index in range(CRASH_AFTER):
            proxy.put(f"k{index}", index)
        mean_write = (client.clock.now - started) / CRASH_AFTER
        disk_writes = manager.store.stats["writes"]
        crash_node(server.node)
        server.node.restart()
        recover_context(server)
        survived = sum(1 for index in range(CRASH_AFTER)
                       if proxy.get(f"k{index}") == index)
        rows.append({
            "interval": interval,
            "mean_write_ms": ms(mean_write),
            "lost_at_crash": CRASH_AFTER - survived,
            "disk_writes": disk_writes,
        })
    return rows
