"""E14 — optimistic transactions: abort rate vs contention (extension).

The "additional transparency" the era layered over invocation: a
transaction manager, reachable — like everything — through a proxy.  Each
client runs read-modify-write transactions over a shared key pool; shrinking
the pool raises the probability two in-flight transactions touch the same
key and the later one aborts.

Expected shape: abort rate near zero with a large pool, climbing steeply as
keys get hot; goodput (committed transactions per virtual second) falls
accordingly, while no update is ever lost (asserted, not just plotted).
"""

from __future__ import annotations

from ...naming.bootstrap import bind, register
from ...transactions import Transaction, TransactionCoordinator, VersionedKVStore
from ..common import star

TITLE = "E14: transactions — abort rate vs key-pool contention"
COLUMNS = ["hot_keys", "commits", "aborts", "abort_rate", "goodput_per_s"]

KEY_POOLS = (64, 16, 4, 2, 1)
CLIENTS = 4
ROUNDS = 30


def run(rounds: int = ROUNDS, seed: int = 59) -> list[dict]:
    """Sweep key-pool size; returns one row per pool."""
    rows = []
    for hot_keys in KEY_POOLS:
        system, server, client_contexts = star(seed=seed, clients=CLIENTS)
        store = VersionedKVStore()
        register(server, "txn", TransactionCoordinator())
        register(server, "bank", store)
        handles = [(bind(ctx, "txn"), bind(ctx, "bank"), ctx)
                   for ctx in client_contexts]
        rng = system.seeds.stream(f"e14.{hot_keys}")
        commits = aborts = 0
        expected_total = 0
        started = system.max_time()
        # Interleave: each client keeps one optimistic transaction in
        # flight per round; conflicts abort the later committer.
        for _ in range(rounds):
            in_flight = []
            for coord, bank, ctx in handles:
                key = f"k{rng.randrange(hot_keys)}"
                txn = Transaction(coord)
                value = txn.read(bank, key) or 0
                txn.write(bank, key, value + 1)
                in_flight.append(txn)
            for txn in in_flight:
                if txn.commit():
                    commits += 1
                    expected_total += 1
                else:
                    aborts += 1
        elapsed = max(system.max_time() - started, 1e-9)
        total = sum(value for value in store.snapshot().values())
        assert total == expected_total, "a committed update was lost!"
        attempts = commits + aborts
        rows.append({
            "hot_keys": hot_keys,
            "commits": commits,
            "aborts": aborts,
            "abort_rate": aborts / attempts if attempts else 0.0,
            "goodput_per_s": commits / elapsed,
        })
    return rows
