"""E1 — the invocation-technique matrix.

Reproduces the comparison the proxy principle is cited for: *access method*
× *location strategy* across the three techniques (plus the lightweight
local fast path), measured as per-invocation latency and messages per
operation on an identical single-client key-value workload.

Expected shape: local call ≪ LRPC ≪ remote RPC ≈ remote proxy (the proxy
adds only local dispatch); DSM pays page faults up front and then behaves
like a local call until sharing invalidates its pages.
"""

from __future__ import annotations

from ...apps.kv import KVStore
from ...core.export import get_space
from ...dsm.heap import make_dsm_kv
from ...metrics.counters import MessageWindow
from ...naming.bootstrap import bind, register
from ...rpc.stubs import RemoteStub
from ..common import star, us

TITLE = "E1: invocation techniques — access method x location strategy"
COLUMNS = ["technique", "locality", "access_method", "location_strategy",
           "mean_us", "msgs_per_op"]

#: Number of measured operations per technique.
OPS = 200


def _drive(system, context, reader, ops: int) -> tuple[float, float]:
    """Mean latency and messages/op of ``ops`` repeated reads."""
    reader("warm")  # populate caches/pages so we measure steady state
    with MessageWindow(system) as window:
        started = context.clock.now
        for _ in range(ops):
            reader("warm")
        elapsed = context.clock.now - started
    return elapsed / ops, window.report.messages / ops


def run(ops: int = OPS, seed: int = 7) -> list[dict]:
    """Run the matrix; returns one row per (technique, locality)."""
    rows = []

    # --- same-context: direct call and the LRPC fast path ------------------
    # Home access is the real object: a plain procedure call.  A raw Python
    # call advances no virtual time, so the row reports the cost model's
    # local-call charge directly (the floor every other row is measured
    # against).
    system, server, _ = star(seed=seed, clients=0)
    store = KVStore()
    store.put("warm", "x" * 32)
    register(server, "kv", store)
    local = bind(server, "kv")
    assert local is store, "home bind must return the real object"
    rows.append({"technique": "procedure call", "locality": "same context",
                 "access_method": "local call", "location_strategy": "none",
                 "mean_us": us(system.costs.local_call), "msgs_per_op": 0.0})

    system, server, _ = star(seed=seed, clients=0)
    store = KVStore()
    register(server, "kv", store)
    ref = get_space(server).ref_of(store)
    stub = RemoteStub(server, ref, interface=type(store).interface())
    stub.put("warm", "x" * 32)
    mean, msgs = _drive(system, server, stub.get, ops)
    rows.append({"technique": "lightweight RPC", "locality": "same context",
                 "access_method": "LRPC fast path",
                 "location_strategy": "leave at site",
                 "mean_us": us(mean), "msgs_per_op": msgs})

    # --- remote: classic stub, proxy, DSM -----------------------------------
    system, server, (client,) = star(seed=seed, clients=1)
    store = KVStore()
    register(server, "kv", store)
    ref = get_space(server).ref_of(store)
    stub = RemoteStub(client, ref, interface=type(store).interface())
    stub.put("warm", "x" * 32)
    mean, msgs = _drive(system, client, stub.get, ops)
    rows.append({"technique": "remote procedure call", "locality": "remote",
                 "access_method": "RPC", "location_strategy": "leave at site",
                 "mean_us": us(mean), "msgs_per_op": msgs})

    system, server, (client,) = star(seed=seed, clients=1)
    store = KVStore()
    register(server, "kv", store)
    proxy = bind(client, "kv")
    proxy.put("warm", "x" * 32)
    mean, msgs = _drive(system, client, proxy.get, ops)
    rows.append({"technique": "proxy (stub policy)", "locality": "remote",
                 "access_method": "RPC via proxy",
                 "location_strategy": "may cache/migrate",
                 "mean_us": us(mean), "msgs_per_op": msgs})

    system, server, (client,) = star(seed=seed, clients=1)
    dsm_kv = make_dsm_kv(server, [client], num_pages=16)
    dsm_kv.put(server, "warm", "x" * 32)
    mean, msgs = _drive(system, client,
                        lambda key: dsm_kv.get(client, key), ops)
    rows.append({"technique": "distributed virtual memory",
                 "locality": "remote", "access_method": "procedure call",
                 "location_strategy": "map into local space",
                 "mean_us": us(mean), "msgs_per_op": msgs})

    return rows
