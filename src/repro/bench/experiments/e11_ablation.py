"""E11 — ablations of the machinery DESIGN.md calls out.

Three switches, each with a measurable consequence:

* **at-most-once off**: under message loss, retransmissions re-execute
  non-idempotent operations — the duplicate count the replay cache exists
  to keep at zero;
* **proxy-table GC**: bind a crowd of proxies, idle them, sweep — table
  size drops to the live set;
* **forwarding maintenance**: after a chain of migrations, a stale client
  pays one redirect per hop; path compression collapses the chain to one.
"""

from __future__ import annotations

from ...apps.counter import Counter
from ...apps.kv import KVStore
from ...core.export import get_space
from ...failures.injectors import message_loss
from ...kernel.errors import RpcTimeout
from ...migration.forwarding import compact, forwarding_chain
from ...migration.mover import ensure_mover, migrate
from ...naming.bootstrap import bind, register
from ..common import mesh, star

TITLE = "E11: ablations — at-most-once, proxy GC, forwarding compaction"
COLUMNS = ["ablation", "setting", "metric", "value"]

OPS = 90
LOSS = 0.15


def _duplicates(at_most_once: bool, ops: int, seed: int) -> int:
    system, server, (client,) = star(seed=seed, clients=1)
    counter = Counter()
    register(server, "ctr", counter)
    proxy = bind(client, "ctr")
    server.handler.__self__.at_most_once = at_most_once
    with message_loss(system, LOSS):
        for _ in range(ops):
            try:
                proxy.incr()
            except RpcTimeout:
                pass
    # The client issued exactly ``ops`` logical increments.  With the replay
    # cache on, each executes at most once, so the counter can never exceed
    # ``ops``; anything beyond that is retransmission-induced re-execution.
    return max(0, counter.value - ops)


def _gc(seed: int) -> tuple[int, int]:
    system, server, (client,) = star(seed=seed, clients=1)
    for index in range(20):
        register(server, f"kv{index}", KVStore())
    proxies = [bind(client, f"kv{index}") for index in range(20)]
    hot = proxies[:3]
    client.clock.advance(10.0)
    for proxy in hot:
        proxy.get("x")
    space = get_space(client)
    before = len(client.proxies)
    space.sweep(unused_for=5.0)
    return before, len(client.proxies)


def _forwarding(hops: int, do_compact: bool, seed: int) -> int:
    system, contexts = mesh(seed=seed, nodes=hops + 2)
    origin = contexts[0]
    counter = Counter()
    space = get_space(origin)
    ref = space.export(counter, policy="migrating")
    for ctx in contexts:
        ensure_mover(get_space(ctx))
    current = ref
    for hop in range(1, hops + 1):
        current = migrate(contexts[hop], current, contexts[hop].context_id)
    if do_compact:
        for ctx in contexts:
            if ctx.space is not None:
                compact(ctx.space)
    return len(forwarding_chain(system, ref)) - 1


def run(ops: int = OPS, seed: int = 43) -> list[dict]:
    """All three ablations; returns labelled metric rows."""
    rows = []
    for setting in (True, False):
        duplicates = _duplicates(setting, ops, seed)
        rows.append({"ablation": "at-most-once", "setting": "on" if setting else "off",
                     "metric": "duplicate_execs", "value": duplicates})
    before, after = _gc(seed)
    rows.append({"ablation": "proxy GC", "setting": "before sweep",
                 "metric": "table_size", "value": before})
    rows.append({"ablation": "proxy GC", "setting": "after sweep",
                 "metric": "table_size", "value": after})
    for do_compact in (False, True):
        hops = _forwarding(4, do_compact, seed)
        rows.append({"ablation": "forwarding", "setting":
                     "compacted" if do_compact else "raw chain",
                     "metric": "redirect_hops", "value": hops})
    return rows
