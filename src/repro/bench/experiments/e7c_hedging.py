"""E7c — hedged reads and per-link adaptive timeouts under loss.

E7b shows backoff, deadlines, and breakers beating the 1984 discipline
under stress.  This companion measures the two *latency-side* policies on
top of that stack — both client-side distribution policy in the paper's
sense, shipped inside the proxy by the service:

* **hedging** (:class:`~repro.resilience.retry.HedgePolicy`): a read is
  issued as a single-attempt promise; after a per-link p95-ish delay a
  backup request races it to the nearest breaker-admitted replica, and the
  first answer wins.  Under loss this converts "wait out a retransmission
  timer" into "ask someone else", which is exactly the tail-cutting trade
  of Dean & Barroso's *The Tail at Scale*;
* **adaptive timeouts** (:class:`~repro.resilience.latency.LatencyTracker`):
  retransmission patience comes from each link's Jacobson RTT estimate
  (``srtt + 4·rttvar``) instead of the global ``costs.rpc_timeout``, so a
  fast LAN link detects a loss in a few milliseconds rather than twenty.

Both arms face the identical seeded workload — message loss swept over
``LOSS_RATES`` with one deliberately **slow replica** (so naive hedging to
a random backup would be a bad bet; the policy must rank replicas by link
distance and pick the fast one):

* **serial** — the ``resilient`` policy exactly as E7b ships it:
  exponential backoff paced by the global timeout, read failover, no
  hedging;
* **hedged** — the same policy with ``adaptive`` retry and ``hedge`` on.

Expected effects, visible in the table:

* tail latency: a lost read on the serial arm waits out at least one
  full global-timeout interval (and its exponential successors), while
  the hedged arm covers the loss with a backup a few milliseconds in —
  ``hedged_p99_ms`` sits far below ``serial_p99_ms`` at every loss rate;
* availability: never worse — a hedge that loses both single-shot legs
  falls back to the serial walk, so ``hedged_ok >= serial_ok``;
* adaptivity: ``link_patience_ms`` (the client→primary Jacobson RTO after
  the run) sits well below ``global_patience_ms`` (the
  ``rpc_timeout``-derived patience the serial arm pays per interval).
"""

from __future__ import annotations

from ...apps.kv import KVStore
from ...failures.injectors import degraded_link, message_loss
from ...kernel.errors import DistributionError
from ...metrics.latency import percentile
from ...naming.bootstrap import bind, register
from ...resilience.policy import resilient_group
from ..common import mesh, ms

TITLE = "E7c: hedged reads + adaptive timeouts vs serial retry under loss"
COLUMNS = ["loss", "serial_ok", "hedged_ok", "serial_p99_ms",
           "hedged_p99_ms", "hedges", "hedge_wins",
           "link_patience_ms", "global_patience_ms"]

LOSS_RATES = (0.1, 0.2, 0.3)
OPS = 160
KEYS = 8
GROUP = 3  # primary + two read replicas (one of them slow)
WARMUP = 20  # reads that mature the link estimators before the sweep

#: Serial arm: E7b's resilient knobs.  Hedged arm: the same schedule with
#: per-link adaptive pacing.  The slow replica's client link is ~8x the
#: default one-way latency — far enough that hedging to it would *add*
#: tail latency, so the candidate ranking is load-bearing.
RETRY = {"attempts": 5, "multiplier": 2.0, "jitter": 0.1}
ADAPTIVE_RETRY = {**RETRY, "adaptive": True}
BREAKER = {"failure_threshold": 3, "reset_timeout": 0.01}
#: Same explicit per-call deadline on both arms (as in E7b), so the
#: availability comparison is apples-to-apples: without it the hedged
#: arm's link-derived budget (~70 ms) bounds tails the serial arm is
#: free to wait out, which conflates boundedness with availability.
CALL_BUDGET = 0.12
SLOW_REPLICA_LATENCY = 8e-3

READ_FRACTION = 0.85


def _seeded_store() -> KVStore:
    """A KV store pre-populated with the working set (so replicas can
    answer reads without ever having seen a write)."""
    store = KVStore()
    for index in range(KEYS):
        store.put(f"k{index}", f"v{index}")
    return store


def _build(seed: int, hedged: bool):
    """One fresh system + bound client proxy for one arm.

    Topology: n0 primary, n1 slow replica, n2 fast replica, n3 client.
    Both arms are built from the same seed, so they face the identical
    operation sequence and drop pattern; only the proxy policy differs.
    """
    system, contexts = mesh(seed=seed, nodes=GROUP + 1)
    ref = resilient_group(
        contexts[:GROUP], _seeded_store,
        retry=ADAPTIVE_RETRY if hedged else RETRY,
        call_budget=CALL_BUDGET,
        breaker=BREAKER,
        hedge=True if hedged else None)
    register(contexts[0], "kv", ref)
    client = contexts[-1]
    proxy = bind(client, "kv")
    return system, client, proxy


def _workload(system, client, proxy, ops: int, loss: float):
    """Drive the seeded read-heavy mix against one proxy."""
    rng = system.seeds.stream("e7c.ops")
    successes = 0
    latencies = []
    slow = degraded_link(system, client.node.name, "n1",
                         latency=SLOW_REPLICA_LATENCY)
    with slow:
        for index in range(WARMUP):  # mature the link estimators
            proxy.get(f"k{index % KEYS}")
        with message_loss(system, loss):
            for index in range(ops):
                key = f"k{rng.randrange(KEYS)}"
                reading = rng.random() < READ_FRACTION
                before = client.clock.now
                try:
                    if reading:
                        proxy.get(key)
                    else:
                        proxy.put(key, index)
                    successes += 1
                except DistributionError:
                    pass
                latencies.append(client.clock.now - before)
    return successes / ops, percentile(sorted(latencies), 99)


def _patience_pair(system, client, proxy) -> tuple[float, float]:
    """(adaptive, global) base patience on the client→primary link.

    The global figure is what the protocol computes from the cost model
    for a small request; the adaptive one is the link's Jacobson RTO
    after the run (the tracker exists only on the hedged arm's system).
    """
    network = system.network
    primary = proxy.proxy_ref
    global_patience = (system.costs.rpc_timeout
                       + 2 * network.transit_time(client.node.name,
                                                  primary.node_name, 64))
    tracker = system.latency
    link_patience = global_patience
    if tracker is not None:
        link_patience = tracker.patience(client.context_id,
                                         primary.context_id,
                                         global_patience)
    return link_patience, global_patience


def run(ops: int = OPS, seed: int = 31) -> list[dict]:
    """Sweep loss probability; returns one row per rate."""
    rows = []
    for loss in LOSS_RATES:
        system_s, client_s, proxy_s = _build(seed, hedged=False)
        serial_ok, serial_p99 = _workload(system_s, client_s, proxy_s,
                                          ops, loss)
        system_h, client_h, proxy_h = _build(seed, hedged=True)
        hedged_ok, hedged_p99 = _workload(system_h, client_h, proxy_h,
                                          ops, loss)
        link_patience, global_patience = _patience_pair(system_h, client_h,
                                                        proxy_h)
        rows.append({
            "loss": loss,
            "serial_ok": serial_ok,
            "hedged_ok": hedged_ok,
            "serial_p99_ms": ms(serial_p99),
            "hedged_p99_ms": ms(hedged_p99),
            "hedges": proxy_h.proxy_stats["hedges"],
            "hedge_wins": proxy_h.proxy_stats["hedge_wins"],
            "link_patience_ms": ms(link_patience),
            "global_patience_ms": ms(global_patience),
        })
    return rows
