"""E19 — consistent-hash sharding: scaling and the hot-shard split.

The ``sharded`` policy's claim is that partitioning is *useful* structure
hidden behind the proxy: N shards should serve nearly N times the load of
one, and an operator splitting a hot shard mid-run should shed its excess
load without any client noticing more than a fence redirect.  E19 measures
both, entirely in **virtual time**:

* eight concurrent clients drive a Zipf-skewed (``s = 1.1``) get/put mix
  over a 5 000-key universe (:mod:`repro.workloads`) against 1, 2, 4 and
  8 shards.  Requests serialise through each shard context's busy line,
  so a single shard queues where eight shards run in parallel — virtual
  throughput must scale monotonically with the shard count;
* the ``8+split`` scenario re-runs the 8-shard deployment but, halfway
  through, splits the hottest shard (the one owning the largest expected
  Zipf mass) toward the coldest: half its ring arcs — data and all — move
  via the epoch-fenced handoff protocol while the other seven shards keep
  serving, and the second-half throughput shows the recovery.

Every reported number is deterministic — virtual throughput (ops per
virtual second), nearest-rank latency percentiles, message counts, trace
fingerprints — so ``python -m repro bench e19 --json`` must be
byte-identical across runs; the harness enforces it by running every
scenario twice and comparing entire rows.  That is also what lets the CI
perf gate (``tools/perf_gate.py``) compare ``BENCH_e19.json`` exactly,
with no tolerance band.
"""

from __future__ import annotations

from ... import make_system
from ...apps.kv import KVStore
from ...kernel.errors import ConfigurationError
from ...core.export import get_space
from ...core.policies.sharding import shard
from ...metrics.latency import LatencySummary
from ...wire import shards
from ...workloads.distributions import ZipfSampler, key_name
from ...workloads.sessions import OpMix, proxy_session, run_interleaved

TITLE = "E19: consistent-hash sharding — scaling and hot-shard split"
COLUMNS = ["scenario", "shards", "virtual_kops", "first_half_kops",
           "second_half_kops", "p50_us", "p99_us", "messages", "moved_arcs",
           "redirects", "heals"]

#: Shard counts swept for the scaling curve.
SHARD_COUNTS = (1, 2, 4, 8)

#: Concurrent client sessions (the offered parallelism).  Sized so the
#: single-shard deployment saturates its busy line (~64 requests of
#: ~100 µs server work per ~2.4 ms round trip ≈ 2.7× capacity): shard
#: scaling only shows when one shard genuinely queues.
CLIENTS = 64

#: Total operations per scenario, split evenly across the clients.
OPS = 3200

#: Key-universe size (large: routing must bisect a real ring, not memoise
#: four hot keys) and the Zipf skew driving the hot shard.
NUM_KEYS = 5000
ZIPF_S = 1.1

READ_FRACTION = 0.8
SEED = 19

#: Zipf head size used to estimate per-shard load for the split decision.
_HEAD = 256


def _expected_load(state: shards.ShardState, count: int) -> list[float]:
    """Expected traffic share per shard over the Zipf head (analytic)."""
    weights = [1.0 / (rank ** ZIPF_S) for rank in range(1, _HEAD + 1)]
    load = [0.0] * count
    for index, weight in enumerate(weights):
        load[state.owner_of(shards.stable_hash(key_name(index)))] += weight
    return load


def _run_scenario(shard_count: int, split: bool, ops: int,
                  seed: int) -> dict:
    """Deploy fresh and drive one scenario; returns its (deterministic) row.

    Virtual-only measurement: throughput is total ops over the span from
    the earliest session start to the latest session finish on the
    *virtual* clocks, and latencies are per-op virtual durations — wall
    time never enters, so the row is byte-stable across runs.
    """
    system = make_system(seed=seed)
    server_ctxs = [system.add_node(f"s{i}").create_context("main")
                   for i in range(shard_count)]
    client_ctxs = [system.add_node(f"c{i:02d}").create_context("main")
                   for i in range(CLIENTS)]
    operator_ctx = system.add_node("operator").create_context("main")
    ref = shard(server_ctxs, KVStore, shard_key=0)
    proxies = [get_space(ctx).bind_ref(ref, handshake=True)
               for ctx in client_ctxs]
    operator = get_space(operator_ctx).bind_ref(ref, handshake=True)
    sessions = []
    for i, (ctx, proxy) in enumerate(zip(client_ctxs, proxies)):
        sampler = ZipfSampler(NUM_KEYS, system.seeds.stream(f"e19.keys.c{i}"),
                              s=ZIPF_S)
        mix = OpMix(read_fraction=READ_FRACTION, key_sampler=sampler,
                    value_size=32)
        # Reads are prefix scans (50 µs of modelled server compute) rather
        # than point gets: server *work* is what sharding scales, and a
        # pure point-op mix is round-trip-bound at any shard count.
        sessions.append(proxy_session(f"c{i:02d}", ctx, proxy, mix,
                                      system.seeds.stream(f"e19.mix.c{i}"),
                                      read_verb="keys_with_prefix"))
    # Preload the Zipf head so measured gets mostly hit (outside the
    # mark).  Round-robin across the clients: a single client issuing all
    # the puts would run its clock — and the shards' busy lines — tens of
    # milliseconds ahead of everyone else, and the laggards' first
    # measured ops would queue behind that phantom backlog.
    for index in range(32):
        proxies[index % CLIENTS].put(key_name(index), f"seed-{index}")
    mark = system.trace.mark()
    starts = [ctx.clock.now for ctx in client_ctxs]
    per_client = ops // CLIENTS
    first = run_interleaved(sessions, per_client // 2)
    moved_arcs = 0
    if split:
        # Operator action mid-run: split the hottest shard (largest
        # expected Zipf mass) toward the coldest.  The decision is
        # analytic — ring plus Zipf weights — hence deterministic.  The
        # operator acts *at the fleet's current time* (clock advanced to
        # the furthest client) and skips the anti-entropy sweeps
        # (sync=False: the ring is still at its bootstrap epoch, and each
        # serial sweep round trip would run the operator — and therefore
        # the handoffs' arrival at the shard busy lines — further ahead
        # of the live traffic it is splitting around).
        operator_ctx.clock.advance_to(
            max(ctx.clock.now for ctx in client_ctxs))
        state = shards.ShardState(-1, *operator.proxy_shard_map(sync=False))
        load = _expected_load(state, shard_count)
        hot = max(range(shard_count), key=lambda i: (load[i], -i))
        cold = min(range(shard_count),
                   key=lambda i: (load[i], i) if i != hot else (1e9, i))
        moved_arcs = operator.proxy_split(hot, cold, sync=False)
        # The handoff window: the serial fence→extract→install→commit
        # round trips put the source and target busy lines at the
        # operator's finish time.  Busy lines have no backfill (a request
        # arriving mid-window cannot run in the idle gap — see
        # kernel.clock.BusyLine), so traffic racing the window would queue
        # behind it and each closed-loop reply would ratchet the line
        # further into the future — an artefact of processing order, not
        # contention.  Model the window as drained instead: every client
        # observes the split complete before its next operation, and the
        # window's cost shows up honestly in ``virtual_kops`` (whole-run
        # span) while ``second_half_kops`` measures the post-split rate.
        for ctx in client_ctxs:
            ctx.clock.advance_to(operator_ctx.clock.now)
    second = run_interleaved(sessions, per_client - per_client // 2)
    elapsed = max(ctx.clock.now for ctx in client_ctxs) - min(starts)
    total_ops = first.operations + second.operations
    samples = first.all_latencies() + second.all_latencies()
    summary = LatencySummary.of("e19", samples)
    messages = sum(1 for ev in system.trace.since(mark)
                   if ev.kind == "send")
    return {
        "scenario": f"{shard_count}+split" if split else str(shard_count),
        "shards": shard_count,
        "ops": total_ops,
        "failures": first.failures + second.failures,
        "virtual_kops": round(total_ops / elapsed / 1e3, 2),
        "first_half_kops": round(
            first.operations / first.elapsed / 1e3, 2),
        "second_half_kops": round(
            second.operations / second.elapsed / 1e3, 2),
        "p50_us": round(summary.p50 * 1e6, 2),
        "p99_us": round(summary.p99 * 1e6, 2),
        "messages": messages,
        "moved_arcs": moved_arcs,
        # The fence story after a split: stale-ring calls for moved keys
        # bounce with the new map (redirects), while stale calls whose
        # keys stayed put are served with the map piggybacked (heals) —
        # both zero when the ring never changed.
        "redirects": sum(p.proxy_stats["shard_redirects"] for p in proxies),
        "heals": sum(p.proxy_stats["shard_heals"] for p in proxies),
        "fingerprint": system.trace.fingerprint(),
    }


def measure_scenario(shard_count: int, split: bool = False, ops: int = OPS,
                     seed: int = SEED, repeats: int = 2) -> dict:
    """One scenario with a determinism self-check: every field of every
    repeat must agree (there are no wall numbers to excuse)."""
    runs = [_run_scenario(shard_count, split, ops, seed)
            for _ in range(repeats)]
    for run_ in runs[1:]:
        if run_ != runs[0]:
            drifted = [key for key in runs[0] if run_[key] != runs[0][key]]
            raise AssertionError(
                f"E19 determinism violated: scenario "
                f"{runs[0]['scenario']!r} fields {drifted} drifted "
                f"between identical runs")
    return runs[0]


def bench_payload(ops: int = OPS, seed: int = SEED) -> dict:
    """The machine-readable benchmark record (``BENCH_e19.json``).

    Unlike E18's record this carries no wall-clock fields at all: the CI
    perf gate compares every scenario field exactly, and the double-run
    byte-identity gate applies to the whole payload.
    """
    if ops < 2 * CLIENTS:
        raise ConfigurationError(
            f"e19 needs ops >= {2 * CLIENTS} (one op per client per half), "
            f"got {ops}")
    rows = [measure_scenario(count, ops=ops, seed=seed)
            for count in SHARD_COUNTS]
    rows.append(measure_scenario(SHARD_COUNTS[-1], split=True, ops=ops,
                                 seed=seed))
    return {
        "experiment": "e19",
        "ops": ops,
        "seed": seed,
        "clients": CLIENTS,
        "num_keys": NUM_KEYS,
        "zipf_s": ZIPF_S,
        "scenarios": rows,
    }


def bench_rows(payload: dict) -> list[dict]:
    """The table form of a payload (the CLI's non-``--json`` rendering)."""
    return [{key: row[key] for key in COLUMNS}
            for row in payload["scenarios"]]


def run(ops: int = OPS, seed: int = SEED) -> list[dict]:
    """Sweep the scaling curve plus the split scenario; one row each."""
    return bench_rows(bench_payload(ops=ops, seed=seed))
