"""E21 — regions: the read-locality win vs. the cross-region quorum price.

A two-region WAN (:func:`repro.kernel.topology.build_regions`: LAN inside
a region, 20× latency between them) and one KV service used from both
sides.  Three deployments, identical client code:

* **central** — plain stub service in the home region (``east``): the
  remote region pays the WAN on every call, but a single copy is never
  stale;
* **regional-local** — a three-replica group (two east, one west) under
  the ``regional`` policy in the legacy read-one contract: every read is
  answered by the caller's own region (the locality win), writes fan out
  write-all with W=2 — so a write can commit against the east majority
  while the west replica is down, and west readers then see **stale**
  values until the next write of that key lands;
* **regional-quorum** — the same placement in versioned W=2/R=2 quorum
  mode: R+W > N means no read is ever stale, but a west read must reach
  across the WAN for its second vote — the quorum price, paid exactly
  where the legacy mode cashed its locality win.  The home region keeps
  LAN reads either way, because its two replicas form a local read
  quorum: region-aware placement decides *who* pays the WAN.

The latency sweep runs fault-free and yields one row per
(deployment, region).  The **staleness probe** (the E9 discipline) then
drives an east writer and a west reader through a periodic crash plan
over the replica nodes, with :func:`~repro.resilience.breaker.
ensure_breakers` installed so the regional read order demotes replicas
the breaker registry currently refuses — values are globally monotone,
so a read below the last acknowledged write of its key is stale.  One
probe row per deployment: availability and the stale-read count.

Every number is virtual-time arithmetic on seeded streams — the payload
is byte-identical across runs and CI compares ``BENCH_e21.json`` exactly.
"""

from __future__ import annotations

from ... import make_system
from ...apps.kv import KVStore
from ...core.policies.replicating import replicate
from ...failures.injectors import CrashPlan
from ...kernel.errors import ConfigurationError, DistributionError
from ...kernel.topology import build_regions
from ...naming.bootstrap import bind, install_name_service, register
from ...resilience.breaker import ensure_breakers
from ...workloads.distributions import UniformSampler
from ..common import ms

TITLE = "E21: regions — read locality vs. the cross-region quorum price"
COLUMNS = ["scenario", "deployment", "region", "read_ms", "write_ms",
           "read_like_lan", "availability", "stale_reads"]

#: Inter-region latency multiplier (LAN stays at the cost model default).
WAN_FACTOR = 20.0

#: The deployments swept, weakest consistency story last.
DEPLOYMENTS = ("central", "regional-local", "regional-quorum")

#: Replica regions, in replica-list order: two east (the home majority —
#: and the primary is replica 0, so writes sequence at home), one west.
REPLICA_REGIONS = ("east", "east", "west")

OPS = 120
SEED = 21


def _build(deployment: str, seed: int):
    """One fresh system; returns ``(system, {region: client_context})``.

    Per region: contexts 0–1 host replicas (west only uses 0), context 2
    is the client.  The name service lives in the home region, so the
    *binding* pays the WAN for west too — that's deployment cost, outside
    the measured loops.
    """
    system = make_system(seed=seed)
    east, west = build_regions(system, ["east", "west"], nodes_per_region=3,
                               wan_factor=WAN_FACTOR)
    home = east.contexts[0]
    install_name_service(home)
    if deployment == "central":
        register(home, "kv", KVStore())
    elif deployment in ("regional-local", "regional-quorum"):
        replica_ctxs = [east.contexts[0], east.contexts[1],
                        west.contexts[0]]
        quorum = ({"read_quorum": 2, "version_key": "arg0"}
                  if deployment == "regional-quorum" else {})
        ref = replicate(replica_ctxs, KVStore, write_quorum=2,
                        read_policy="regional", policy="regional",
                        extra_config={"regions": list(REPLICA_REGIONS)},
                        **quorum)
        register(home, "kv", ref)
    else:
        raise ConfigurationError(f"unknown deployment {deployment!r}")
    return system, {"east": east.contexts[2], "west": west.contexts[2]}


def _latency(deployment: str, seed: int, ops: int) -> list[dict]:
    """Fault-free per-op read and write latency, one row per region."""
    system, clients = _build(deployment, seed)
    lan_round_trip = 2 * system.costs.remote_latency
    rows = []
    for region, ctx in clients.items():
        proxy = bind(ctx, "kv")
        proxy.put(f"warm-{region}", 0)    # fault the caches/versions in
        t0 = ctx.clock.now
        for _ in range(ops):
            proxy.get(f"warm-{region}")
        read = (ctx.clock.now - t0) / ops
        t0 = ctx.clock.now
        for index in range(ops // 4):
            proxy.put(f"warm-{region}", index + 1)
        write = (ctx.clock.now - t0) / (ops // 4)
        rows.append({
            "scenario": f"{deployment}@{region}",
            "deployment": deployment,
            "region": region,
            "read_ms": ms(read),
            "write_ms": ms(write),
            "read_like_lan": read < lan_round_trip * 4,
            "availability": None,
            "stale_reads": None,
        })
    return rows


def _replica_nodes(deployment: str) -> list[str]:
    """The node names the crash plan cycles through."""
    if deployment == "central":
        return ["east-0"]
    return ["east-0", "east-1", "west-0"]


def _probe(deployment: str, seed: int, ops: int) -> dict:
    """The staleness probe: east writer, west reader, periodic crashes.

    One shared op-stream name across deployments, so availability and
    staleness compare pairwise.  Breakers are installed: the ``regional``
    read order demotes a replica whose circuit is open, so a west read
    retreats to the east majority instead of re-dialling a dead node.
    """
    system, clients = _build(deployment, seed)
    ensure_breakers(system)
    writer = bind(clients["east"], "kv")
    reader = bind(clients["west"], "kv")
    plan = CrashPlan.periodic(_replica_nodes(deployment), every=15,
                              duration=5, total_ops=ops)
    rng = system.seeds.stream("e21.probe.ops")
    sampler = UniformSampler(8, system.seeds.stream("e21.probe.keys"))
    acked: dict[str, int] = {}
    sequence = 0
    failures = 0
    stale = 0
    for _ in range(ops):
        plan.tick(system)
        key = sampler.sample()
        if rng.random() < 0.5:
            sequence += 1
            try:
                writer.put(key, sequence)
                acked[key] = sequence
            except DistributionError:
                failures += 1
        else:
            try:
                value = reader.get(key)
            except DistributionError:
                failures += 1
                continue
            if key in acked and (value is None or value < acked[key]):
                stale += 1
    return {
        "scenario": f"{deployment}@probe",
        "deployment": deployment,
        "region": "probe",
        "read_ms": None,
        "write_ms": None,
        "read_like_lan": None,
        "availability": round(1.0 - failures / ops, 4),
        "stale_reads": stale,
    }


def bench_payload(ops: int = OPS, seed: int = SEED) -> dict:
    """The machine-readable benchmark record (``BENCH_e21.json``).

    Pure virtual-time record: the CI perf gate compares every scenario
    field exactly, and the double-run byte-identity gate applies to the
    whole payload.
    """
    if ops < 20:
        raise ConfigurationError(f"e21 needs ops >= 20, got {ops}")
    rows = []
    for deployment in DEPLOYMENTS:
        rows.extend(_latency(deployment, seed, ops))
        rows.append(_probe(deployment, seed + 1, ops))
    return {
        "experiment": "e21",
        "ops": ops,
        "seed": seed,
        "wan_factor": WAN_FACTOR,
        "replica_regions": list(REPLICA_REGIONS),
        "scenarios": rows,
    }


def bench_rows(payload: dict) -> list[dict]:
    """The table form of a payload (the CLI's non-``--json`` rendering)."""
    return [{key: row[key] for key in COLUMNS}
            for row in payload["scenarios"]]


def run(ops: int = OPS, seed: int = SEED) -> list[dict]:
    """Three deployments × (two regions + probe); one row per cell."""
    return bench_rows(bench_payload(ops=ops, seed=seed))
