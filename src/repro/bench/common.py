"""Shared scaffolding for the experiments (one module per experiment).

Every experiment builds its own fresh :class:`~repro.kernel.system.System`
from an explicit seed, so experiments are independent and deterministic.
"""

from __future__ import annotations

from .. import make_system
from ..kernel.context import Context
from ..kernel.params import CostModel
from ..kernel.system import System
from ..naming.bootstrap import install_name_service


def star(seed: int = 7, clients: int = 1, costs: CostModel | None = None,
         name_service: bool = True) -> tuple[System, Context, list[Context]]:
    """A server node plus N client nodes, one context each.

    Returns ``(system, server_context, client_contexts)``.  The name service
    (when requested) lives in the server context.
    """
    system = make_system(seed=seed, costs=costs)
    server = system.add_node("server").create_context("main")
    client_contexts = [
        system.add_node(f"client{i}").create_context("main")
        for i in range(clients)
    ]
    if name_service:
        install_name_service(server)
    return system, server, client_contexts


def mesh(seed: int = 7, nodes: int = 3, costs: CostModel | None = None,
         name_service: bool = True) -> tuple[System, list[Context]]:
    """N peer nodes, one context each; name service on the first."""
    system = make_system(seed=seed, costs=costs)
    contexts = [system.add_node(f"n{i}").create_context("main")
                for i in range(nodes)]
    if name_service:
        install_name_service(contexts[0])
    return system, contexts


def us(seconds: float) -> float:
    """Seconds → microseconds (for readable table cells)."""
    return seconds * 1e6


def ms(seconds: float) -> float:
    """Seconds → milliseconds (for readable table cells)."""
    return seconds * 1e3
