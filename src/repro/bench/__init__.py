"""Bench harness: experiment implementations, rendering, shape checks."""

from .common import mesh, ms, star, us
from .render import crossover_x, fmt, render_series, render_table, who_wins

__all__ = [
    "crossover_x", "fmt", "mesh", "ms", "render_series", "render_table",
    "star", "us", "who_wins",
]
