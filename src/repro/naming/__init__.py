"""Naming: the registry services and the bootstrap entry points."""

from .bootstrap import (
    NAMESERVICE_OID,
    bind,
    install_name_service,
    make_directory_tree,
    name_service_proxy,
    register,
    resolve,
    unregister,
)
from .service import DirectoryService, NameService
from .trading import TraderService

__all__ = [
    "DirectoryService", "NAMESERVICE_OID", "NameService", "TraderService",
    "bind", "install_name_service", "make_directory_tree",
    "name_service_proxy", "register", "resolve", "unregister",
]
