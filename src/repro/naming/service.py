"""The name service — itself just another service behind a proxy.

The paper's uniformity claim (claim 4): the mechanism for obtaining proxies
is used to reach the very service that hands out proxies.  Concretely:

* the name service is an ordinary exported object; clients reach it through
  an ordinary (stub-policy) proxy constructed from one well-known reference
  — the *primordial proxy*, the system's only piece of a-priori knowledge;
* ``register`` accepts any exported object or proxy — the swizzle hooks turn
  it into a reference in flight, so the registry physically stores access
  paths, never raw objects from other contexts;
* ``lookup`` returns that access path — which materialises in the caller's
  context as a proxy of the *target service's* chosen policy.  Binding a
  name therefore never requires talking to the target first: one RPC to the
  name service yields a working proxy.

:class:`DirectoryService` adds hierarchical names: a directory maps a
component either to a target or to another directory (possibly in another
context), and resolution walks the chain through proxies — experiment E6
measures this chain.
"""

from __future__ import annotations

from typing import Any

from ..iface.interface import operation


class NameService:
    """A flat name registry (the system-wide root registry)."""

    def __init__(self):
        self._bindings: dict[str, Any] = {}

    @operation(invalidates=("name",))
    def register(self, name: str, target) -> bool:
        """Bind ``name`` to a service; replaces any previous binding."""
        self._bindings[name] = target
        return True

    @operation(readonly=True)
    def lookup(self, name: str):
        """The service bound to ``name``; raises ``KeyError`` if unbound."""
        try:
            return self._bindings[name]
        except KeyError:
            raise KeyError(f"name {name!r} is not registered") from None

    @operation(invalidates=("name",))
    def unregister(self, name: str) -> bool:
        """Remove a binding; returns whether it existed."""
        return self._bindings.pop(name, None) is not None

    @operation(readonly=True)
    def list_names(self, prefix: str) -> list:
        """All registered names starting with ``prefix``, sorted."""
        return sorted(name for name in self._bindings if name.startswith(prefix))

    @operation(readonly=True)
    def contains(self, name: str) -> bool:
        """Whether ``name`` is currently bound."""
        return name in self._bindings


class DirectoryService:
    """One level of a hierarchical name space.

    Entries may be leaf targets or other directories; cross-context
    sub-directories are stored (like everything else) as proxies, so a
    resolution step transparently hops contexts.
    """

    def __init__(self, name: str = "/"):
        self.name = name
        self._entries: dict[str, Any] = {}

    @operation(invalidates=("component",))
    def bind_entry(self, component: str, target) -> bool:
        """Bind one path component in this directory."""
        if "/" in component or not component:
            raise ValueError(f"invalid path component {component!r}")
        self._entries[component] = target
        return True

    @operation(readonly=True)
    def lookup_entry(self, component: str):
        """The entry for one component; raises ``KeyError`` if absent."""
        try:
            return self._entries[component]
        except KeyError:
            raise KeyError(
                f"directory {self.name!r} has no entry {component!r}") from None

    @operation(invalidates=("component",))
    def unbind_entry(self, component: str) -> bool:
        """Remove one component; returns whether it existed."""
        return self._entries.pop(component, None) is not None

    @operation(readonly=True)
    def list_entries(self) -> list:
        """All components in this directory, sorted."""
        return sorted(self._entries)
