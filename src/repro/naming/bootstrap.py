"""Bootstrap: the primordial proxy and the bind/register entry points.

``install_name_service`` exports a :class:`NameService` under the well-known
oid ``"_nameservice"`` and records its reference on the system.  From then
on, *any* context can manufacture the primordial proxy locally — no message
is needed to learn how to talk to the name service, only to use it.

These module-level functions (:func:`register`, :func:`bind`,
:func:`resolve`) are the public face most applications use; see
``examples/quickstart.py``.
"""

from __future__ import annotations

from typing import Any

from ..core.export import get_space
from ..core.proxy import Proxy
from ..kernel.context import Context
from ..kernel.errors import BindError, ConfigurationError
from ..wire.refs import ObjectRef
from .service import DirectoryService, NameService

#: Well-known oid of the root name service.
NAMESERVICE_OID = "_nameservice"


def install_name_service(context: Context) -> ObjectRef:
    """Export the root name service in ``context`` and record it system-wide."""
    system = context.system
    if system.name_service is not None:
        raise ConfigurationError("this system already has a name service")
    ref = get_space(context).export(NameService(), oid=NAMESERVICE_OID)
    system.name_service = ref
    return ref


def name_service_proxy(context: Context):
    """The primordial proxy: this context's access path to the name service.

    Constructed purely from the well-known reference — when the name service
    happens to live in ``context`` itself, the real object is returned (home
    access is direct, as everywhere else).
    """
    system = context.system
    if system.name_service is None:
        raise BindError("no name service installed; call install_name_service")
    return get_space(context).bind_ref(system.name_service, handshake=False)


def register(context: Context, name: str, target: Any) -> None:
    """Register ``target`` under ``name`` in the root name service.

    ``target`` may be an exported object, an unexported service object (it
    is auto-exported under its class's ``default_policy`` on the way out),
    a proxy (the registry then points at the proxy's target), or an
    :class:`ObjectRef` (e.g. from :func:`repro.replicate`).
    """
    space = get_space(context)
    if isinstance(target, ObjectRef):
        target = space.bind_ref(target, handshake=False)
    elif not isinstance(target, Proxy):
        # Ensure local service objects are exported even when the name
        # service is co-located (home calls bypass the marshalling hooks
        # that would otherwise auto-export on the way out).
        try:
            space.ref_of(target)
        except BindError:
            space.export(target)
    name_service_proxy(context).register(name, target)


def bind(context: Context, name: str):
    """Resolve ``name`` and return this context's access path to the service.

    One RPC to the name service yields the proxy (the reference in the reply
    materialises through the swizzle hooks); a second RPC — the installation
    handshake — upgrades it with the exporter's full policy configuration.
    Returns the real object when the service lives in ``context`` itself.
    """
    target = name_service_proxy(context).lookup(name)
    if isinstance(target, Proxy):
        return get_space(context).upgrade(target)
    return target


def unregister(context: Context, name: str) -> bool:
    """Remove ``name`` from the root name service."""
    return name_service_proxy(context).unregister(name)


# -- hierarchical names ---------------------------------------------------------


def make_directory_tree(context: Context, depth: int,
                        leaf_target: Any = None,
                        contexts: list[Context] | None = None) -> Any:
    """Build a directory chain ``d0/d1/.../d<depth-1>`` for experiment E6.

    When ``contexts`` is given, directory *i* is placed in
    ``contexts[i % len(contexts)]`` so each resolution step hops contexts.
    Returns the root directory (object or proxy, depending on placement).
    The leaf name ``"leaf"`` in the deepest directory binds ``leaf_target``
    when one is provided.
    """
    homes = contexts or [context]
    directories = []
    for level in range(depth):
        home = homes[level % len(homes)]
        directory = DirectoryService(name=f"/d{level}")
        get_space(home).export(directory)
        directories.append((home, directory))
    for level in range(depth - 1):
        parent_home, parent = directories[level]
        child_home, child = directories[level + 1]
        parent.bind_entry(f"d{level + 1}", _travel(child_home, parent_home, child))
    if leaf_target is not None and directories:
        directories[-1][1].bind_entry("leaf", leaf_target)
    root_home, root = directories[0]
    return _travel(root_home, context, root)


def resolve(context: Context, root, path: str):
    """Walk a ``"a/b/c"`` path from ``root`` (a directory object or proxy).

    Each component is one ``lookup_entry`` invocation — on a proxy when the
    next directory lives elsewhere, locally when it does not: the resolution
    chain of experiment E6.
    """
    current = root
    for component in [part for part in path.split("/") if part]:
        current = current.lookup_entry(component)
    return current


def _travel(src_context: Context, dst_context: Context, obj: Any) -> Any:
    """What ``obj`` (exported in ``src_context``) looks like from ``dst_context``."""
    if src_context is dst_context:
        return obj
    ref = get_space(src_context).ref_of(obj)
    return get_space(dst_context).bind_ref(ref, handshake=False)
