"""Trading: attribute-based service selection (ANSA-style).

A name service answers "give me *the* thing called X"; a **trader** answers
"give me *a* thing of type T whose properties satisfy C" — the next step the
distributed-systems community took after 1986, and a natural tenant of the
same proxy machinery: offers store access paths (proxies/references), and a
successful query hands the importer a proxy built by the *offering*
service's chosen factory.
"""

from __future__ import annotations


from ..iface.interface import operation

#: Recognised constraint operators for :meth:`TraderService.query`.
_OPERATORS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
}


def _matches(properties: dict, constraints: dict) -> bool:
    for prop, constraint in constraints.items():
        if prop not in properties:
            return False
        value = properties[prop]
        if isinstance(constraint, (tuple, list)) and len(constraint) == 2 \
                and constraint[0] in _OPERATORS:
            op, bound = constraint
            try:
                if not _OPERATORS[op](value, bound):
                    return False
            except TypeError:
                return False
        elif value != constraint:
            return False
    return True


class TraderService:
    """A registry of typed, attributed service offers."""

    def __init__(self):
        self._offers: dict[int, dict] = {}
        self._next_id = 1

    @operation
    def export_offer(self, service_type: str, properties: dict,
                     target) -> int:
        """Advertise a service; returns the offer id."""
        offer_id = self._next_id
        self._next_id += 1
        self._offers[offer_id] = {
            "type": service_type,
            "properties": dict(properties),
            "target": target,
        }
        return offer_id

    @operation
    def withdraw(self, offer_id: int) -> bool:
        """Remove an offer; returns whether it existed."""
        return self._offers.pop(offer_id, None) is not None

    @operation
    def update_properties(self, offer_id: int, properties: dict) -> bool:
        """Merge new property values into an offer (e.g. load updates)."""
        offer = self._offers.get(offer_id)
        if offer is None:
            return False
        offer["properties"].update(properties)
        return True

    @operation(readonly=True)
    def query(self, service_type: str, constraints: dict,
              prefer: tuple | None = None, limit: int = 0) -> list:
        """Targets of matching offers.

        ``constraints`` maps property → exact value or ``(op, bound)`` with
        op in ``== != <= >= < >``.  ``prefer`` is ``("min", prop)`` or
        ``("max", prop)`` and orders the result; ``limit`` truncates it
        (0 = all).
        """
        matches = [offer for offer in self._offers.values()
                   if offer["type"] == service_type
                   and _matches(offer["properties"], constraints or {})]
        if prefer is not None:
            direction, prop = prefer
            matches.sort(key=lambda offer: offer["properties"].get(prop, 0),
                         reverse=(direction == "max"))
        targets = [offer["target"] for offer in matches]
        if limit:
            targets = targets[:limit]
        return targets

    @operation(readonly=True)
    def select(self, service_type: str, constraints: dict,
               prefer: tuple | None = None):
        """The single best matching target; ``KeyError`` when none match."""
        targets = self.query(service_type, constraints, prefer, limit=1)
        if not targets:
            raise KeyError(
                f"no offer of type {service_type!r} matches {constraints!r}")
        return targets[0]

    @operation(readonly=True)
    def offer_count(self, service_type: str) -> int:
        """Number of live offers of one type."""
        return sum(1 for offer in self._offers.values()
                   if offer["type"] == service_type)
