"""Object migration: moving an object between contexts, keeping references valid.

Each participating context exports a :class:`MoverService` under the
well-known oid ``"_mover"``.  Migration is pull-style and runs entirely over
the ordinary proxy machinery (three messages):

1. the requester asks the *source* mover to ``migrate_to(oid, dst)``;
2. the source mover snapshots the object (``migrate_state``) and calls the
   *destination* mover's ``migrate_in`` with the class name, state, and
   export metadata — the state travels as an ordinary RPC payload, so its
   size is charged to the network like any message;
3. the destination re-instantiates the class from the codebase and
   re-exports it under the **same oid** with a bumped epoch; the source
   keeps a forwarding pointer.

Reference integrity: the oid embeds its minting context and never changes,
so every outstanding reference remains valid; stale bindings chase the
``ObjectMoved`` redirect (see :meth:`repro.core.proxy.Proxy.proxy_remote`)
and rebind exactly once per hop.
"""

from __future__ import annotations

from ..core.export import ObjectSpace, get_space
from ..iface.interface import operation
from ..kernel.context import Context
from ..kernel.errors import BindError, DistributionError
from ..wire.refs import ObjectRef

#: Well-known oid of the per-context mover.
MOVER_OID = "_mover"


class MoverService:
    """Per-context migration endpoint (exported as ``"_mover"``)."""

    def __init__(self, space: ObjectSpace):
        self._space = space

    @operation
    def migrate_to(self, oid: str, dst_context_id: str):
        """Move the object ``oid`` from this context to ``dst_context_id``.

        Returns the new reference as a plain field tuple
        ``(context_id, oid, interface, epoch, policy)`` — deliberately not an
        :class:`ObjectRef`, so it does not swizzle into a proxy in transit.
        Idempotent: if the object already moved, the existing forwarding
        reference is returned.  Returns ``None`` when the object does not
        support migration.
        """
        entry = self._space.entry(oid)
        if entry.moved_to is not None:
            fwd = entry.moved_to
            return (fwd.context_id, fwd.oid, fwd.interface, fwd.epoch, fwd.policy)
        if dst_context_id == self._space.context.context_id:
            ref = entry.ref
            return (ref.context_id, ref.oid, ref.interface, ref.epoch, ref.policy)
        snapshot = getattr(entry.obj, "migrate_state", None)
        if snapshot is None:
            return None
        self._space.context.charge(self._space.system.costs.migration_fixed)
        state = snapshot()
        dst_mover = mover_proxy(self._space.context, dst_context_id)
        dst_mover.migrate_in(type(entry.obj).__name__, state, oid,
                             entry.interface.name, entry.ref.epoch + 1,
                             entry.policy_name, entry.policy_config)
        new_ref = entry.ref.moved_to(dst_context_id)
        self._space.mark_migrated(oid, new_ref)
        self._space.system.trace.emit(
            self._space.context.clock.now, "migrate",
            self._space.context.context_id, dst_context_id, oid)
        return (new_ref.context_id, new_ref.oid, new_ref.interface,
                new_ref.epoch, new_ref.policy)

    @operation
    def migrate_in(self, class_name: str, state, oid: str, interface_name: str,
                   epoch: int, policy: str, config: dict) -> bool:
        """Accept an inbound object: re-instantiate and re-export it."""
        codebase = self._space.system.codebase
        cls = codebase.resolve_class(class_name)
        rebuild = getattr(cls, "from_migration_state", None)
        if rebuild is None:
            raise BindError(f"class {class_name!r} has no from_migration_state")
        obj = rebuild(state)
        self._space.context.charge(self._space.system.costs.migration_fixed)
        self._space.export(obj, interface=codebase.interface(interface_name),
                           policy=policy, config=dict(config or {}),
                           oid=oid, epoch=epoch)
        return True


def ensure_mover(space: ObjectSpace) -> ObjectRef:
    """Install the mover service in a context (idempotent); returns its ref."""
    entry = space.context.exports.get(MOVER_OID)
    if entry is not None and not entry.revoked:
        return entry.ref
    return space.export(MoverService(space), oid=MOVER_OID)


def mover_proxy(context: Context, target_context_id: str):
    """A proxy for the mover of ``target_context_id``, bound in ``context``."""
    space = get_space(context)
    ref = ObjectRef(target_context_id, MOVER_OID, "MoverService", 0, "stub")
    return space.bind_ref(ref, handshake=False)


def migrate(context: Context, ref: ObjectRef,
            dst_context_id: str | None = None) -> ObjectRef | None:
    """Request migration of ``ref``'s object into ``dst_context_id``.

    ``dst_context_id`` defaults to the requesting context.  Returns the new
    reference, or ``None`` when the object is not migratable or the source
    is unreachable.  Both contexts must have movers installed
    (:func:`ensure_mover` — done automatically for objects exported under
    the ``migrating`` policy).
    """
    get_space(context)
    destination = dst_context_id or context.context_id
    ensure_mover(get_space(context.system.context(destination)))
    try:
        source_mover = mover_proxy(context, ref.context_id)
        fields = source_mover.migrate_to(ref.oid, destination)
    except DistributionError:
        return None
    if fields is None:
        return None
    context_id, oid, interface, epoch, policy = fields
    return ObjectRef(context_id, oid, interface, epoch, policy)
