"""Forwarding-pointer maintenance.

After repeated migrations an object leaves a chain of forwarding pointers
behind.  Proxies shorten their own path lazily (they rebind to the final
location the first time they chase the chain), but the *pointers themselves*
accumulate.  This module provides the maintenance pass a real system runs in
the background:

* :func:`forwarding_chain` — the chain of hops a reference currently implies;
* :func:`compact` — rewrite every forwarding pointer in a context to point
  directly at the final location (path compression);
* :func:`scrub` — drop forwarding pointers older than a grace period,
  trading dangling-reference risk for table space (the classic trade-off;
  used by the E11 ablation).
"""

from __future__ import annotations

from ..core.export import ObjectSpace
from ..kernel.system import System
from ..wire.refs import ObjectRef


def forwarding_chain(system: System, ref: ObjectRef,
                     limit: int = 64) -> list[ObjectRef]:
    """The sequence of locations a reference leads through, ending at the
    live one (or at the last known hop if the chain dead-ends)."""
    chain = [ref]
    current = ref
    for _ in range(limit):
        try:
            ctx = system.context(current.context_id)
        except Exception:
            break
        entry = ctx.exports.get(current.oid)
        if entry is None or entry.moved_to is None:
            break
        current = entry.moved_to
        chain.append(current)
    return chain


def final_location(system: System, ref: ObjectRef) -> ObjectRef:
    """The last hop of :func:`forwarding_chain`."""
    return forwarding_chain(system, ref)[-1]


def compact(space: ObjectSpace) -> int:
    """Path-compress every forwarding pointer in one context.

    Returns the number of pointers rewritten.  After compaction, a stale
    client pays exactly one redirect regardless of how many times the object
    has moved since the client last spoke to it.
    """
    rewritten = 0
    system = space.system
    for entry in space.context.exports.values():
        if entry.moved_to is None:
            continue
        final = final_location(system, entry.moved_to)
        if final != entry.moved_to:
            entry.moved_to = final
            rewritten += 1
    return rewritten


def scrub(space: ObjectSpace, keep: int | None = None) -> int:
    """Drop (revoke) migrated-away entries, keeping at most ``keep`` newest.

    A dropped pointer turns a stale reference into a
    :class:`~repro.kernel.errors.DanglingReference` instead of a redirect —
    the holder must re-resolve through the name service.  Returns the number
    of entries dropped.
    """
    moved = [(oid, entry) for oid, entry in space.context.exports.items()
             if entry.moved_to is not None and not entry.revoked]
    if keep is not None:
        moved = moved[:max(0, len(moved) - keep)]
    for oid, entry in moved:
        entry.revoked = True
    return len(moved)
