"""Migration substrate: movers, forwarding pointers, reference integrity."""

from .forwarding import compact, final_location, forwarding_chain, scrub
from .mover import MOVER_OID, MoverService, ensure_mover, migrate, mover_proxy

__all__ = [
    "MOVER_OID", "MoverService", "compact", "ensure_mover", "final_location",
    "forwarding_chain", "migrate", "mover_proxy", "scrub",
]
