"""The codebase: registries for proxy factories, interfaces, and classes.

The paper's proxies are *supplied by the service*: when a client acquires a
reference, the service's chosen proxy implementation is instantiated in the
client's context.  In SOS this meant shipping code; here the equivalent is a
system-wide :class:`Codebase` in which

* **proxy factories** are registered by policy name (the name travels in
  every :class:`~repro.wire.refs.ObjectRef`),
* **interfaces** are registered by name (type definitions are global
  knowledge — both ends of a connection compile against them), and
* **migratable classes** are registered by name so a migrated object can be
  re-instantiated at its destination.

Each :class:`~repro.kernel.system.System` gets its own codebase, pre-seeded
from the global defaults, so tests can register custom factories without
leaking across systems.
"""

from __future__ import annotations

from typing import Type

from ..iface.interface import Interface
from ..kernel.context import Context
from ..kernel.errors import BindError, ConfigurationError
from ..wire.refs import ObjectRef
from .proxy import Proxy

#: Factories registered at import time by the policy modules.
_GLOBAL_FACTORIES: dict[str, Type[Proxy]] = {}


def register_policy(cls: Type[Proxy]) -> Type[Proxy]:
    """Class decorator: register a proxy policy in the global codebase."""
    name = cls.policy_name
    if not name:
        raise ConfigurationError(f"{cls.__name__} has no policy_name")
    _GLOBAL_FACTORIES[name] = cls
    return cls


def global_policies() -> dict[str, Type[Proxy]]:
    """Snapshot of the globally registered proxy factories."""
    return dict(_GLOBAL_FACTORIES)


class Codebase:
    """Per-system registry of factories, interfaces, and migratable classes."""

    def __init__(self, system):
        self.system = system
        self.factories: dict[str, Type[Proxy]] = dict(_GLOBAL_FACTORIES)
        self.interfaces: dict[str, Interface] = {}
        self.classes: dict[str, type] = {}
        system.codebase = self

    # -- proxy factories -------------------------------------------------------

    def register_factory(self, cls: Type[Proxy]) -> Type[Proxy]:
        """Register a proxy policy for this system only."""
        self.factories[cls.policy_name] = cls
        return cls

    def instantiate(self, context: Context, ref: ObjectRef,
                    config: dict | None = None) -> Proxy:
        """Create the proxy the exporter chose for ``ref``, in ``context``.

        This is the moment the paper calls *proxy installation*: the
        factory named by the reference runs in the client's context.
        """
        factory = self.factories.get(ref.policy)
        if factory is None:
            raise BindError(
                f"no proxy factory {ref.policy!r} registered "
                f"(known: {sorted(self.factories)})")
        interface = self.interface(ref.interface)
        proxy = factory(context, ref, interface, config)
        return proxy

    # -- interfaces ---------------------------------------------------------------

    def register_interface(self, interface: Interface) -> Interface:
        """Publish an interface definition system-wide."""
        existing = self.interfaces.get(interface.name)
        if existing is not None and existing is not interface:
            if existing.names() != interface.names():
                raise ConfigurationError(
                    f"conflicting definitions of interface {interface.name!r}")
        self.interfaces[interface.name] = interface
        return interface

    def interface(self, name: str) -> Interface:
        """Look up a published interface by name."""
        iface = self.interfaces.get(name)
        if iface is None:
            raise BindError(
                f"interface {name!r} is not published in the codebase; "
                "export an object under it first")
        return iface

    # -- migratable classes ----------------------------------------------------------

    def register_class(self, cls: type, name: str | None = None) -> type:
        """Register a class so instances can be re-created after migration."""
        self.classes[name or cls.__name__] = cls
        return cls

    def resolve_class(self, name: str) -> type:
        """Look up a migratable class by name."""
        cls = self.classes.get(name)
        if cls is None:
            raise BindError(
                f"class {name!r} is not registered for migration "
                f"(known: {sorted(self.classes)})")
        return cls
