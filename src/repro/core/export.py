"""Export and bind: the object space of a context.

Every context that participates in the proxy regime gets an
:class:`ObjectSpace`, which owns:

* the **export table** (oid → :class:`~repro.rpc.dispatcher.ExportEntry`),
* the **proxy table** (object key → live proxy, at most one proxy per remote
  object per context),
* the **swizzle hooks** installed on the context's marshaller path — the
  single point where the proxy principle is *enforced*:

  - outbound: a proxy crossing the boundary is replaced by its target's
    reference; an exported object is replaced by its reference; an
    unexported service object is either auto-exported (default) or rejected
    (``strict`` mode) — a raw remote pointer can never leave,
  - inbound: a reference arriving home unswizzles to the real object; any
    other reference materialises as a proxy built by the factory the
    *exporter* named in the reference.

* the per-context **context-manager service** (oid ``"_ctxmgr"``), through
  which remote binders fetch the full proxy configuration (the *proxy
  installation handshake*) and liveness pings travel.
"""

from __future__ import annotations

from typing import Any

from ..iface.conformance import check_implements
from ..iface.interface import Interface, is_operation, operation
from ..kernel.context import Context
from ..kernel.errors import BindError, ConfigurationError, EncapsulationViolation
from ..rpc.dispatcher import ExportEntry, ensure_dispatcher
from ..wire.refs import ObjectRef, OidMinter
from .proxy import Proxy

#: Types that can never be (or contain) an exportable object; the encoder
#: hook returns immediately for them.
_PLAIN_TYPES = frozenset([type(None), bool, int, float, str, bytes, bytearray])

#: Well-known oid of the per-context manager object.
CTXMGR_OID = "_ctxmgr"


class ContextManager:
    """Per-context system service: handshakes, pings, and introspection."""

    def __init__(self, space: "ObjectSpace"):
        self._space = space

    @operation(readonly=True)
    def describe(self, oid: str) -> dict:
        """The proxy-installation handshake: full metadata for one export."""
        entry = self._space.context.exports.get(oid)
        if entry is None or entry.revoked:
            raise KeyError(f"no export {oid!r}")
        return {
            "policy": entry.policy_name,
            "config": entry.policy_config,
            "interface": entry.interface.name,
            "epoch": entry.ref.epoch,
            "moved_to": None if entry.moved_to is None else str(entry.moved_to),
        }

    @operation(readonly=True)
    def ping(self) -> str:
        """Liveness probe."""
        return "pong"

    @operation(readonly=True)
    def list_exports(self) -> list:
        """Oids of all live exports (diagnostics)."""
        return sorted(oid for oid, entry in self._space.context.exports.items()
                      if not entry.revoked)


class ObjectSpace:
    """Export/bind manager for one context (see module docstring)."""

    def __init__(self, context: Context, strict: bool = False,
                 auto_export: bool = True):
        if context.space is not None:
            raise ConfigurationError(
                f"context {context.context_id!r} already has an object space")
        self.context = context
        self.system = context.system
        self.strict = strict
        self.auto_export = auto_export
        self.minter = OidMinter(context.context_id)
        self._exported_ids: dict[int, str] = {}
        self._exportable_types: dict[type, bool] = {}
        self.stats = {"exports": 0, "auto_exports": 0, "binds": 0,
                      "handshakes": 0, "unswizzles": 0, "violations": 0}
        context.space = self
        context.encoder_hook = self._encode_value
        context.decoder_hook = self._decode_ref
        self.dispatcher = ensure_dispatcher(context, self.system.transport)
        self._ctxmgr_ref = self.export(ContextManager(self), oid=CTXMGR_OID)

    # -- export side -----------------------------------------------------------

    def export(self, obj: Any, interface: Interface | None = None,
               policy: str | None = None, config: dict | None = None,
               oid: str | None = None, epoch: int = 0) -> ObjectRef:
        """Make ``obj`` invocable from other contexts; returns its reference.

        The interface defaults to the one derived from ``obj``'s
        ``@operation`` methods; the proxy policy defaults to the class's
        ``default_policy`` attribute (``"stub"`` if absent).  The returned
        reference carries the policy name, so every holder of the reference
        gets the representative this exporter chose.
        """
        if isinstance(obj, Proxy):
            raise EncapsulationViolation(
                "cannot export a proxy; pass the proxy around instead — it "
                "travels as a reference to its target")
        if interface is None:
            interface = Interface.of(type(obj))
        check_implements(obj, interface)
        self.system.codebase.register_interface(interface)
        if policy is None:
            policy = getattr(type(obj), "default_policy", "stub")
        if policy not in self.system.codebase.factories:
            raise ConfigurationError(f"unknown proxy policy {policy!r}")
        if config is None:
            config = dict(getattr(type(obj), "default_config", {}) or {})
        if oid is None:
            oid = self.minter.mint()
        elif oid in self.context.exports and not self.context.exports[oid].revoked:
            raise ConfigurationError(
                f"oid {oid!r} already exported in {self.context.context_id!r}")
        ref = ObjectRef(self.context.context_id, oid, interface.name,
                        epoch, policy)
        entry = ExportEntry(obj=obj, interface=interface, ref=ref,
                            policy_name=policy, policy_config=config)
        self.context.exports[oid] = entry
        self._exported_ids.setdefault(id(obj), oid)
        self.stats["exports"] += 1
        on_export = getattr(self.system.codebase.factories[policy],
                            "on_export", None)
        if on_export is not None:
            on_export(self, entry)
        return ref

    def unexport(self, ref_or_obj: Any) -> None:
        """Withdraw an export; outstanding references become dangling."""
        entry = self._entry_for(ref_or_obj)
        entry.revoked = True
        if self._exported_ids.get(id(entry.obj)) == entry.ref.oid:
            del self._exported_ids[id(entry.obj)]

    def mark_migrated(self, oid: str, new_ref: ObjectRef) -> None:
        """Record that export ``oid`` moved away: keep a forwarding pointer,
        release the object (it now lives at ``new_ref``).

        The stale local copy stays pinned in the entry (and its identity
        mapping kept), so that any lingering local alias — e.g. a registry
        that stored the object before it moved — marshals as the forwarding
        reference, never as a fresh auto-export of the zombie.  (Pinning also
        keeps ``id()``-based identity sound: the id cannot be reused while
        the entry holds the object.)"""
        entry = self.entry(oid)
        entry.moved_to = new_ref

    def entry(self, oid: str) -> ExportEntry:
        """Look up an export entry by oid."""
        entry = self.context.exports.get(oid)
        if entry is None:
            raise BindError(
                f"context {self.context.context_id!r} exports no {oid!r}")
        return entry

    def ref_of(self, obj: Any) -> ObjectRef:
        """The reference under which a (previously exported) object travels."""
        return self._entry_for(obj).ref

    def _entry_for(self, ref_or_obj: Any) -> ExportEntry:
        if isinstance(ref_or_obj, ObjectRef):
            return self.entry(ref_or_obj.oid)
        oid = self._exported_ids.get(id(ref_or_obj))
        if oid is None:
            raise BindError(
                f"object {ref_or_obj!r} is not exported from "
                f"{self.context.context_id!r}")
        return self.entry(oid)

    # -- bind side ----------------------------------------------------------------

    def bind_ref(self, ref: ObjectRef, handshake: bool = True,
                 config: dict | None = None) -> Any:
        """Obtain this context's access path for ``ref``.

        Returns the real object when ``ref`` points into this very context
        (no proxy is ever interposed at home).  Otherwise returns the
        (single, table-cached) proxy, instantiating the exporter-chosen
        factory on first bind.  With ``handshake=True`` the full policy
        configuration is fetched from the exporter first (one extra RPC —
        the installation handshake); without it, the factory starts from the
        defaults encoded in the reference.
        """
        if ref.context_id == self.context.context_id:
            entry = self.context.exports.get(ref.oid)
            if entry is not None and not entry.revoked and entry.moved_to is None:
                self.stats["unswizzles"] += 1
                return entry.obj
        existing = self.context.proxies.get(ref.key)
        if existing is not None:
            return existing
        merged = dict(config or {})
        if handshake:
            merged = {**self._handshake(ref), **merged}
        proxy = self.system.codebase.instantiate(self.context, ref, merged)
        self.context.proxies[ref.key] = proxy
        self.stats["binds"] += 1
        proxy.proxy_handshaken = handshake
        proxy.proxy_install()
        return proxy

    def upgrade(self, proxy: Proxy) -> Proxy:
        """Complete the installation handshake for a proxy bound without one.

        Proxies materialised by the decoder hook start from the defaults the
        reference carries; a deliberate ``bind`` upgrades them with the full
        exporter-side configuration (one ``describe`` RPC).  Idempotent.
        """
        if isinstance(proxy, Proxy) and not proxy.proxy_handshaken:
            config = self._handshake(proxy.proxy_ref)
            proxy.proxy_handshaken = True
            proxy.proxy_upgrade(config)
        return proxy

    def discard(self, proxy: Proxy) -> None:
        """Drop a proxy from the table (it must not be used afterwards)."""
        table = self.context.proxies
        if table.get(proxy.proxy_ref.key) is proxy:
            del table[proxy.proxy_ref.key]
        proxy.proxy_discard()

    def sweep(self, unused_for: float) -> int:
        """Garbage-collect proxies idle for at least ``unused_for`` seconds.

        Returns the number of proxies discarded.  The context-manager proxy
        of the name-service context is never collected (it is the bootstrap
        path).
        """
        now = self.context.clock.now
        victims = [proxy for proxy in self.context.proxies.values()
                   if now - proxy.proxy_last_used >= unused_for
                   and proxy.proxy_ref.oid != CTXMGR_OID]
        for proxy in victims:
            self.discard(proxy)
        return len(victims)

    def ctxmgr_proxy(self, context_id: str):
        """A proxy for the context manager of a (remote) context."""
        ref = ObjectRef(context_id, CTXMGR_OID, "ContextManager", 0, "stub")
        return self.bind_ref(ref, handshake=False)

    def _handshake(self, ref: ObjectRef) -> dict:
        """Fetch the exporter's policy configuration for ``ref``."""
        self.stats["handshakes"] += 1
        mgr = self.ctxmgr_proxy(ref.context_id)
        description = mgr.describe(ref.oid)
        return dict(description.get("config") or {})

    # -- swizzle hooks ---------------------------------------------------------------

    def _encode_value(self, value: Any):
        """Outbound hook: no raw remote-capable object leaves this context."""
        if type(value) in _PLAIN_TYPES:
            return None
        if isinstance(value, Proxy):
            return value.proxy_ref
        if isinstance(value, ObjectRef):
            return None
        if not self._is_exportable_type(type(value)):
            return None
        oid = self._exported_ids.get(id(value))
        if oid is not None:
            entry = self.context.exports.get(oid)
            if entry is not None and not entry.revoked:
                return entry.moved_to if entry.moved_to is not None else entry.ref
        if not self.auto_export or self.strict:
            self.stats["violations"] += 1
            raise EncapsulationViolation(
                f"unexported service object {type(value).__name__!r} may not "
                f"cross the boundary of {self.context.context_id!r}; export "
                "it first (or enable auto_export)")
        self.stats["auto_exports"] += 1
        return self.export(value)

    def _decode_ref(self, ref: ObjectRef) -> Any:
        """Inbound hook: every arriving reference surfaces as proxy or home object."""
        return self.bind_ref(ref, handshake=False)

    def _is_exportable_type(self, klass: type) -> bool:
        known = self._exportable_types.get(klass)
        if known is None:
            known = any(is_operation(getattr(klass, name, None))
                        for name in dir(klass))
            self._exportable_types[klass] = known
        return known

    def __repr__(self) -> str:
        return (f"ObjectSpace({self.context.context_id!r}, "
                f"exports={len(self.context.exports)}, "
                f"proxies={len(self.context.proxies)})")


def get_space(context: Context, strict: bool = False) -> ObjectSpace:
    """The context's object space, created on first use."""
    if context.space is None:
        ObjectSpace(context, strict=strict)
    return context.space
