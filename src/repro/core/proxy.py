"""The proxy: a service's local representative in a client context.

This is the paper's central object.  A proxy

* lives in the client's context and exports exactly the service's interface
  (``__getattr__`` dispatch checked against the interface signature),
* is the *only* access path from that context to the service,
* is implemented by code the **service** chose (the factory named in the
  reference's ``policy`` field), so the client↔service protocol is
  encapsulated inside the service's own code, and
* may contain intelligence beyond forwarding: caching, batching, migration,
  replica selection — see :mod:`repro.core.policies`.

Naming convention: everything local to the proxy is prefixed ``proxy_`` so
that ``__getattr__`` can treat all other names as remote operations.
"""

from __future__ import annotations

from typing import Any

from ..iface.interface import Interface
from ..kernel.context import Context
from ..kernel.errors import InterfaceError, ObjectMoved, RpcTimeout
from ..wire.refs import ObjectRef


class Proxy:
    """Base proxy: transparent forwarding with migration rebinding.

    Subclasses (policies) customise behaviour by overriding :meth:`invoke`
    and the lifecycle hooks; client code never sees the difference — that is
    the encapsulation claim (experiment E5).

    Attributes:
        proxy_context: the context this proxy lives in.
        proxy_ref: current reference to the service object (rebinds on
            migration).
        proxy_interface: the interface the proxy exports.
        proxy_config: marshallable configuration shipped by the exporter.
        proxy_stats: per-proxy counters (invocations, remote calls, hits…).
    """

    #: Name under which this class registers in the factory codebase.
    policy_name = "stub"

    @classmethod
    def on_export(cls, space, entry) -> None:
        """Server-side setup hook, run when an object is exported under this
        policy (e.g. the caching policy installs its invalidation control
        here).  The base policy needs none."""

    def __init__(self, context: Context, ref: ObjectRef, interface: Interface,
                 config: dict | None = None):
        self.proxy_context = context
        self.proxy_ref = ref
        #: Resolved-``Operation`` cache (verb → Operation), filled lazily by
        #: :meth:`proxy_operation`; cleared with the bound-operation cache.
        self.proxy_opcache = {}
        self.proxy_interface = interface
        self.proxy_config = dict(config or {})
        self.proxy_protocol = context.system.rpc
        self.proxy_stats = {"invocations": 0, "remote_calls": 0, "rebinds": 0}
        self.proxy_last_used = context.clock.now
        self.proxy_handshaken = False
        #: When set, this proxy forwards through another proxy (its next
        #: layer) instead of the RPC protocol — see policies.composite.
        self.proxy_next: "Proxy | None" = None

    # -- lifecycle hooks ------------------------------------------------------

    def proxy_install(self) -> None:
        """Called once, after the proxy is placed in its context's table.

        Policies use this to set up client-side machinery (e.g. export a
        cache-invalidation callback object).
        """

    def proxy_discard(self) -> None:
        """Called when the proxy is dropped from its context's table."""

    def proxy_upgrade(self, config: dict) -> None:
        """Fold in configuration from a late installation handshake.

        Called by :meth:`ObjectSpace.upgrade` on proxies that were first
        materialised without a handshake (e.g. from a reference embedded in
        a reply).  Shipped values do not override local ones already set.
        An upgrade may change operation-relevant configuration, so the
        operation caches are dropped.
        """
        merged = {**config, **self.proxy_config}
        self.proxy_config = merged
        self.proxy_invalidate_ops()
        self.proxy_install()

    # -- invocation ------------------------------------------------------------

    def __getattr__(self, verb: str) -> Any:
        if verb.startswith("proxy_") or verb.startswith("_"):
            raise AttributeError(verb)
        if verb not in self.proxy_interface:
            raise InterfaceError(
                f"interface {self.proxy_interface.name!r} declares no "
                f"operation {verb!r}")
        bound = _BoundProxyOperation(self, verb)
        # Memoise on the instance: the next ``proxy.verb`` is a plain
        # attribute hit that never re-enters ``__getattr__`` (verbs can never
        # start with ``proxy_`` or ``_``, so no internal name is shadowed).
        # Dropped by :meth:`proxy_invalidate_ops` on rebinds and upgrades.
        self.__dict__[verb] = bound
        return bound

    def proxy_operation(self, verb: str):
        """The resolved :class:`Operation` for ``verb``, cached per proxy.

        Saves the interface signature lookup on every repeated invocation;
        the cache is dropped whenever the interface or binding changes.
        """
        op = self.proxy_opcache.get(verb)
        if op is None:
            op = self.proxy_interface.operation(verb)
            self.proxy_opcache[verb] = op
        return op

    def proxy_invalidate_ops(self) -> None:
        """Drop every cached bound operation and resolved signature.

        Called on rebind, upgrade, and interface replacement, so a stale
        cache can never answer for an operation the current interface no
        longer declares (or route to a superseded binding).
        """
        instance = self.__dict__
        stale = [name for name, value in instance.items()
                 if value.__class__ is _BoundProxyOperation]
        for name in stale:
            del instance[name]
        cache = instance.get("proxy_opcache")
        if cache:
            cache.clear()

    def invoke(self, verb: str, args: tuple, kwargs: dict) -> Any:
        """Perform one operation.  Policies override this.

        The base behaviour is transparent forwarding, following at most
        ``proxy_config["max_forwards"]`` (default 4) migration redirects.
        """
        self.proxy_stats["invocations"] += 1
        return self.proxy_remote(verb, args, kwargs)

    def proxy_remote(self, verb: str, args: tuple, kwargs: dict,
                     retry=None, deadline=None) -> Any:
        """Forward to the current binding, rebinding on ``ObjectMoved``.

        When this proxy is stacked on another layer (``proxy_next``), the
        call flows down the stack instead of hitting the protocol directly.

        ``retry`` and ``deadline`` (:mod:`repro.resilience`) override the
        protocol's retransmission schedule and cap the call's total wait;
        both pass straight through to :meth:`RpcProtocol.call` (they do not
        apply to one-way sends or stacked layers, which pace themselves).
        """
        if self.proxy_next is not None:
            self.proxy_stats["remote_calls"] += 1
            return self.proxy_next.invoke(verb, args, kwargs)
        op = self.proxy_operation(verb)
        # First attempt straight away: the redirect budget only matters
        # once an ObjectMoved actually arrives, so its computation stays
        # off the no-migration path.
        self.proxy_stats["remote_calls"] += 1
        try:
            if op.oneway:
                self.proxy_protocol.send_oneway(
                    self.proxy_context, self.proxy_ref, verb, args, kwargs)
                return None
            return self.proxy_protocol.call(
                self.proxy_context, self.proxy_ref, verb, args, kwargs,
                retry=retry, deadline=deadline)
        except ObjectMoved as moved:
            if moved.forward is None:
                raise
            self.proxy_rebind(moved.forward)
        max_forwards = int(self.proxy_config.get("max_forwards", 4))
        for _ in range(max_forwards):
            self.proxy_stats["remote_calls"] += 1
            try:
                if op.oneway:
                    self.proxy_protocol.send_oneway(
                        self.proxy_context, self.proxy_ref, verb, args, kwargs)
                    return None
                return self.proxy_protocol.call(
                    self.proxy_context, self.proxy_ref, verb, args, kwargs,
                    retry=retry, deadline=deadline)
            except ObjectMoved as moved:
                if moved.forward is None:
                    raise
                self.proxy_rebind(moved.forward)
        raise RpcTimeout(
            f"{verb!r} on {self.proxy_ref}: too many migration redirects")

    def proxy_rebind(self, ref: ObjectRef) -> None:
        """Point this proxy at a new location of the same object."""
        self.proxy_stats["rebinds"] += 1
        old = self.proxy_ref
        self.proxy_ref = ref
        self.proxy_invalidate_ops()
        table = self.proxy_context.proxies
        if table.get(old.key) is self:
            del table[old.key]
            table[ref.key] = self

    # -- interface (operation caches track replacement) -------------------------

    @property
    def proxy_interface(self) -> Interface:
        """The interface this proxy exports.

        Replacing it (an interface upgrade) drops the operation caches, so
        stale bound operations cannot outlive the signature that admitted
        them.
        """
        return self._proxy_interface

    @proxy_interface.setter
    def proxy_interface(self, interface: Interface) -> None:
        self._proxy_interface = interface
        self.proxy_invalidate_ops()

    # -- introspection -----------------------------------------------------------

    @property
    def proxy_is_local(self) -> bool:
        """Whether the target currently lives in this proxy's own context."""
        return self.proxy_ref.context_id == self.proxy_context.context_id

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.proxy_ref} "
                f"in {self.proxy_context.context_id!r})")


class _BoundProxyOperation:
    """A callable bound to one proxy operation."""

    __slots__ = ("_proxy", "_verb")

    def __init__(self, proxy: Proxy, verb: str):
        self._proxy = proxy
        self._verb = verb

    def __call__(self, *args, **kwargs):
        proxy = self._proxy
        proxy.proxy_last_used = proxy.proxy_context.clock.now
        return proxy.invoke(self._verb, args, kwargs)

    def __repr__(self) -> str:
        return f"<proxied operation {self._verb!r} on {self._proxy.proxy_ref}>"


def is_proxy(value: Any) -> bool:
    """Whether ``value`` is a proxy (of any policy)."""
    return isinstance(value, Proxy)
