"""Lease-based reclamation of exports (distributed garbage collection).

An export kept alive forever "just in case a client still holds the
reference" is a storage leak; an export revoked while clients hold proxies
is a dangling reference.  The classic compromise — and the one Shapiro's
later GC work grew out of — is the **lease**: holders acquire a time-bounded
claim and renew it while interested; the exporter reclaims objects whose
every lease has lapsed.

Server side: a per-context :class:`LeaseService` (well-known oid
``"_leases"``) records holders and expiry times for gc-managed exports, and
:func:`expire_leases` reclaims what lapsed (run it like any maintenance
sweep).

Client side: the ``leased`` proxy policy acquires a lease at installation,
renews transparently when an invocation finds the lease past its half-life,
and releases on discard.  A client that stays silent past the lease (e.g.
partitioned away) simply loses the claim: its next call raises
``DanglingReference`` and it must re-bind through the name service — the
documented, intentional failure mode.
"""

from __future__ import annotations

from ..iface.interface import operation
from ..kernel.errors import DistributionError
from ..wire.refs import ObjectRef
from .export import ObjectSpace
from .factory import register_policy
from .proxy import Proxy

#: Well-known oid of the per-context lease service.
LEASES_OID = "_leases"

#: Default lease duration in virtual seconds.
DEFAULT_LEASE = 5.0


class LeaseService:
    """Per-context lease bookkeeping for gc-managed exports."""

    def __init__(self, space: ObjectSpace):
        self._space = space
        #: oid -> {holder context id -> expiry time}
        self._holders: dict[str, dict[str, float]] = {}
        self.stats = {"acquired": 0, "renewed": 0, "released": 0,
                      "expired": 0, "reclaimed": 0}

    # -- remote interface ------------------------------------------------------

    @operation
    def acquire(self, oid: str, holder: str, duration: float) -> float:
        """Claim (or re-claim) a lease; returns the expiry time granted."""
        entry = self._space.context.exports.get(oid)
        if entry is None or entry.revoked:
            raise KeyError(f"no live export {oid!r}")
        expiry = self._space.context.clock.now + float(duration)
        self._holders.setdefault(oid, {})[holder] = expiry
        self.stats["acquired"] += 1
        return expiry

    @operation
    def renew(self, oid: str, holder: str, duration: float) -> float:
        """Extend an existing lease; raises ``KeyError`` if it lapsed and
        the export has already been reclaimed."""
        entry = self._space.context.exports.get(oid)
        if entry is None or entry.revoked:
            raise KeyError(f"no live export {oid!r}")
        expiry = self._space.context.clock.now + float(duration)
        self._holders.setdefault(oid, {})[holder] = expiry
        self.stats["renewed"] += 1
        return expiry

    @operation
    def release(self, oid: str, holder: str) -> bool:
        """Give up a lease early; returns whether it existed."""
        holders = self._holders.get(oid)
        existed = holders is not None and holders.pop(holder, None) is not None
        if existed:
            self.stats["released"] += 1
        return existed

    @operation(readonly=True)
    def holders_of(self, oid: str) -> list:
        """Context ids currently holding a lease on ``oid``."""
        return sorted(self._holders.get(oid, {}))

    # -- local maintenance --------------------------------------------------------

    def expire(self) -> int:
        """Drop lapsed leases and reclaim gc-managed exports with none left.

        Returns the number of exports reclaimed.
        """
        now = self._space.context.clock.now
        reclaimed = 0
        for oid, holders in list(self._holders.items()):
            lapsed = [holder for holder, expiry in holders.items()
                      if expiry < now]
            for holder in lapsed:
                del holders[holder]
                self.stats["expired"] += 1
            if holders:
                continue
            entry = self._space.context.exports.get(oid)
            if entry is not None and not entry.revoked \
                    and getattr(entry, "gc_managed", False) \
                    and entry.moved_to is None:
                self._space.unexport(entry.ref)
                reclaimed += 1
                self.stats["reclaimed"] += 1
            del self._holders[oid]
        return reclaimed


def ensure_lease_service(space: ObjectSpace) -> LeaseService:
    """Install (or fetch) the lease service of a context."""
    entry = space.context.exports.get(LEASES_OID)
    if entry is not None and not entry.revoked:
        return entry.obj
    service = LeaseService(space)
    space.export(service, oid=LEASES_OID)
    return service


def expire_leases(space: ObjectSpace) -> int:
    """Run one expiry sweep in a context; returns exports reclaimed."""
    entry = space.context.exports.get(LEASES_OID)
    if entry is None or entry.revoked:
        return 0
    return entry.obj.expire()


def lease_service_proxy(space: ObjectSpace, context_id: str):
    """A binding to the lease service of (possibly remote) ``context_id``."""
    ref = ObjectRef(context_id, LEASES_OID, "LeaseService", 0, "stub")
    return space.bind_ref(ref, handshake=False)


@register_policy
class LeasedProxy(Proxy):
    """Forwarding proxy that maintains a lease on its target."""

    policy_name = "leased"

    def __init__(self, context, ref, interface, config=None):
        super().__init__(context, ref, interface, config)
        self._expiry: float | None = None
        self.proxy_stats.update(lease_acquires=0, lease_renewals=0)

    def _duration(self) -> float:
        return float(self.proxy_config.get("lease_duration", DEFAULT_LEASE))

    def _lease_service(self):
        return lease_service_proxy(self.proxy_context.space,
                                   self.proxy_ref.context_id)

    def proxy_install(self) -> None:
        try:
            self._expiry = self._lease_service().acquire(
                self.proxy_ref.oid, self.proxy_context.context_id,
                self._duration())
            self.proxy_stats["lease_acquires"] += 1
        except (DistributionError, KeyError):
            self._expiry = None  # degrade: behave like a plain stub

    def proxy_discard(self) -> None:
        if self._expiry is not None:
            try:
                self._lease_service().release(
                    self.proxy_ref.oid, self.proxy_context.context_id)
            except (DistributionError, KeyError):
                pass
        self._expiry = None

    def invoke(self, verb, args, kwargs):
        self.proxy_stats["invocations"] += 1
        self._maybe_renew()
        return self.proxy_remote(verb, args, kwargs)

    def _maybe_renew(self) -> None:
        if self._expiry is None:
            return
        now = self.proxy_context.clock.now
        half_life = self._expiry - self._duration() / 2.0
        if now >= half_life:
            try:
                self._expiry = self._lease_service().renew(
                    self.proxy_ref.oid, self.proxy_context.context_id,
                    self._duration())
                self.proxy_stats["lease_renewals"] += 1
            except (DistributionError, KeyError):
                self._expiry = None  # lapsed; the next call may dangle

    @property
    def proxy_lease_expiry(self) -> float | None:
        """Expiry time of the current lease (None when lease-less)."""
        return self._expiry

    @classmethod
    def on_export(cls, space, entry) -> None:
        """Mark the export gc-managed and stand up the lease service."""
        ensure_lease_service(space)
        entry.gc_managed = True
