"""The proxy principle: proxies, factories, export/bind, and enforcement."""

from .export import CTXMGR_OID, ContextManager, ObjectSpace, get_space
from .factory import Codebase, global_policies, register_policy
from .leases import (
    LEASES_OID,
    LeaseService,
    ensure_lease_service,
    expire_leases,
)
from .principle import AuditReport, assert_principle, audit
from .proxy import Proxy, is_proxy
from .service import Service
from .views import export_view, readonly_view, restrict

__all__ = [
    "AuditReport", "CTXMGR_OID", "Codebase", "ContextManager", "LEASES_OID",
    "LeaseService", "ObjectSpace", "Proxy", "Service", "assert_principle",
    "audit", "ensure_lease_service", "expire_leases", "export_view",
    "get_space", "global_policies", "is_proxy", "readonly_view",
    "register_policy", "restrict",
]
