"""Auditing the proxy principle.

The principle is *enforced* mechanically by the swizzle hooks in
:mod:`repro.core.export`; this module provides the tools that *verify* a
running system obeys it — used by the property tests and available to
applications as a debugging aid.

The invariants audited:

I1. Every value in a context's proxy table is a :class:`Proxy` whose
    ``proxy_context`` is that context.
I2. A proxy pointing into its own context is legal only over a live local
    export (the post-migration optimised state); a home-pointing proxy with
    no backing export is a leak.
I3. At most one proxy per (context, logical object): table keys are object
    keys and each proxy's current ref key matches its slot.
I4. Every exported entry's object is not itself a proxy.
I5. Cross-context aliasing: any object reachable from two contexts' tables
    is reachable only as (home object) + (proxies elsewhere) — never as the
    raw object in a foreign table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernel.system import System
from .proxy import Proxy


@dataclass
class AuditReport:
    """Outcome of a principle audit.

    Attributes:
        violations: human-readable invariant breaches (empty = clean).
        contexts_audited: number of contexts examined.
        proxies_seen: total proxies across all tables.
        exports_seen: total live exports across all tables.
    """

    violations: list[str] = field(default_factory=list)
    contexts_audited: int = 0
    proxies_seen: int = 0
    exports_seen: int = 0

    @property
    def clean(self) -> bool:
        """True when no invariant was breached."""
        return not self.violations


def audit(system: System) -> AuditReport:
    """Audit every context of ``system`` against invariants I1–I5."""
    report = AuditReport()
    home_of: dict[int, str] = {}
    for ctx in system.contexts():
        for entry in ctx.exports.values():
            if entry.revoked:
                continue
            report.exports_seen += 1
            if isinstance(entry.obj, Proxy):
                report.violations.append(
                    f"I4: {ctx.context_id} exports a proxy as "
                    f"{entry.ref.oid!r}")
            if entry.moved_to is None:
                home_of[id(entry.obj)] = ctx.context_id
    for ctx in system.contexts():
        report.contexts_audited += 1
        for key, proxy in ctx.proxies.items():
            report.proxies_seen += 1
            if not isinstance(proxy, Proxy):
                report.violations.append(
                    f"I1: {ctx.context_id} table holds non-proxy "
                    f"{type(proxy).__name__!r} under {key!r}")
                continue
            if proxy.proxy_context is not ctx:
                report.violations.append(
                    f"I1: proxy under {key!r} in {ctx.context_id} belongs to "
                    f"{proxy.proxy_context.context_id}")
            if proxy.proxy_ref.context_id == ctx.context_id:
                entry = ctx.exports.get(proxy.proxy_ref.oid)
                if entry is None or entry.revoked:
                    report.violations.append(
                        f"I2: {ctx.context_id} holds a home proxy for "
                        f"{proxy.proxy_ref.oid!r} with no backing export")
            if proxy.proxy_ref.key != key:
                report.violations.append(
                    f"I3: proxy slot {key!r} in {ctx.context_id} holds a "
                    f"proxy bound to {proxy.proxy_ref.key!r}")
        for entry in ctx.exports.values():
            if entry.revoked or entry.moved_to is not None:
                continue
            home = home_of.get(id(entry.obj))
            if home is not None and home != ctx.context_id:
                report.violations.append(
                    f"I5: object {entry.ref.oid!r} is exported raw from both "
                    f"{home} and {ctx.context_id}")
    return report


def assert_principle(system: System) -> None:
    """Raise ``AssertionError`` with details unless the audit is clean."""
    report = audit(system)
    if not report.clean:
        raise AssertionError(
            "proxy principle violated:\n  " + "\n  ".join(report.violations))
