"""Restricted views: exporting less than the whole interface.

Encapsulation cuts both ways: a service may want different *clients* to see
different facets of one object.  Because a proxy checks every invocation
against the interface carried by its reference, exporting the same object
under a **narrowed** interface yields a capability: holders of the narrow
reference simply cannot name the operations it omits — the server-side
dispatcher rejects them too, so the restriction is not merely cosmetic.

Helpers here build narrowed interfaces (arbitrary operation subsets, or the
common readonly facet) and export an object under one.  Conformance is
checked in the safe direction: the full interface must conform to the view
(it provides at least the view's behaviour).
"""

from __future__ import annotations

from typing import Any, Iterable

from ..iface.conformance import check_conforms
from ..iface.interface import Interface
from ..kernel.errors import InterfaceError
from ..wire.refs import ObjectRef
from .export import ObjectSpace


def restrict(interface: Interface, operations: Iterable[str],
             name: str | None = None) -> Interface:
    """A narrowed interface exposing only the named operations."""
    wanted = list(operations)
    missing = [op for op in wanted if op not in interface]
    if missing:
        raise InterfaceError(
            f"cannot restrict {interface.name!r} to unknown operations "
            f"{missing}")
    view = Interface(name or f"{interface.name}View",
                     [interface.operation(op) for op in wanted])
    check_conforms(interface, view)
    return view


def readonly_view(interface: Interface, name: str | None = None) -> Interface:
    """The readonly facet: every ``readonly`` operation, nothing else."""
    readonly_ops = [op.name for op in interface.operations.values()
                    if op.readonly]
    if not readonly_ops:
        raise InterfaceError(
            f"interface {interface.name!r} has no readonly operations")
    return restrict(interface, readonly_ops,
                    name or f"{interface.name}Reader")


def export_view(space: ObjectSpace, obj: Any, view: Interface,
                policy: str | None = None,
                config: dict | None = None) -> ObjectRef:
    """Export ``obj`` under a narrowed interface as a *separate* export.

    The object may already be exported under its full interface; the view
    gets its own oid, so revoking the view does not revoke the full access
    path (and vice versa).  Holders of the view's reference get a proxy
    that exposes only the view's operations, and the dispatcher refuses
    anything else by construction.
    """
    full = Interface.of(type(obj))
    check_conforms(full, view)
    # Bypass the identity shortcut: a second export of the same object is
    # intentional here, so mint a distinct oid via a wrapper entry.
    oid = space.minter.mint()
    ref = ObjectRef(space.context.context_id, oid, view.name, 0,
                    policy or "stub")
    from ..rpc.dispatcher import ExportEntry
    space.system.codebase.register_interface(view)
    if (policy or "stub") not in space.system.codebase.factories:
        from ..kernel.errors import ConfigurationError
        raise ConfigurationError(f"unknown proxy policy {policy!r}")
    entry = ExportEntry(obj=obj, interface=view, ref=ref,
                        policy_name=policy or "stub",
                        policy_config=dict(config or {}))
    space.context.exports[oid] = entry
    space.stats["exports"] += 1
    return ref
