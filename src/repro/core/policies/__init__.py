"""Proxy policies: the service-selectable client-side representatives.

Importing this package registers every built-in policy in the global
codebase:

========== ===============================================================
``stub``        transparent forwarding (the RPC-stub baseline)
``caching``     read-through cache with server-driven invalidation or TTL
``batching``    client-side buffering of mutating operations
``migrating``   pulls a hot object into the caller's context
``replicated``  read-one/write-all routing over a replica group
``regional``    replication with region-aware, breaker-admitted reads
``sharded``     consistent-hash routing over a partitioned key space
``tracing``     client-side latency metering, reported to a collector
``leased``      maintains a GC lease on the target (repro.core.leases)
``composite``   stacks several of the above behind one proxy face
``resilient``   backoff + deadlines + breakers + failover (repro.resilience)
========== ===============================================================

Custom policies subclass :class:`repro.core.proxy.Proxy`, set
``policy_name``, and register with
:func:`repro.core.factory.register_policy` (globally) or
``system.codebase.register_factory`` (per system).
"""

from .batching import BatchControl, BatchingProxy, DEFAULT_BATCH_SIZE
from .caching import (
    CacheCallback,
    CacheCoherence,
    CacheControl,
    CachingProxy,
    DEFAULT_TTL,
    invalidated_values,
)
from .composite import CompositeProxy
from .migrating import DEFAULT_MIGRATE_AFTER, MigratingProxy
from .regional import RegionalProxy
from .replicating import ReplicatedProxy, replicate
from .sharding import ShardedProxy, shard
from .stub import ForwardingProxy
from .tracing import TraceCollector, TracingProxy
from ..leases import LeasedProxy
from ...resilience.policy import ResilientProxy, resilient_group

__all__ = [
    "BatchControl", "BatchingProxy", "CacheCallback", "CacheCoherence",
    "CacheControl", "CachingProxy", "CompositeProxy", "DEFAULT_BATCH_SIZE",
    "DEFAULT_MIGRATE_AFTER", "DEFAULT_TTL", "ForwardingProxy", "LeasedProxy",
    "MigratingProxy", "RegionalProxy", "ReplicatedProxy", "ResilientProxy",
    "ShardedProxy",
    "TraceCollector", "TracingProxy", "invalidated_values", "replicate",
    "resilient_group", "shard",
]
