"""The ``migrating`` policy: a proxy that pulls its object local.

The paper: "proxies can make use of local information and decide to migrate
the remote object it represents from its remote context to the local one."

The proxy counts remote invocations; once the count reaches the threshold
the exporter configured (``migrate_after``), it asks the migration substrate
to move the object into its own context and rebinds.  From then on every
invocation takes the same-context fast path — the crossover economics of
experiment E3.

Migration is an *optimisation*, never a correctness requirement: if the
object is not migratable, the movers are unreachable, or another proxy beat
us to it, the proxy silently keeps forwarding.
"""

from __future__ import annotations

from typing import Any

from ..factory import register_policy
from ..proxy import Proxy

#: Default number of remote calls after which the proxy migrates the object.
DEFAULT_MIGRATE_AFTER = 4


@register_policy
class MigratingProxy(Proxy):
    """Forwarding proxy that relocates a hot object into its own context."""

    policy_name = "migrating"

    def __init__(self, context, ref, interface, config=None):
        super().__init__(context, ref, interface, config)
        self._remote_count = 0
        self._attempted = False
        self.proxy_stats.update(migrations=0, migration_failures=0)

    def proxy_install(self) -> None:
        """Make sure this context can *receive* objects."""
        from ...migration.mover import ensure_mover
        ensure_mover(self.proxy_context.space)

    def invoke(self, verb: str, args: tuple, kwargs: dict) -> Any:
        self.proxy_stats["invocations"] += 1
        if not self.proxy_is_local:
            self._remote_count += 1
            if not self._attempted and self._remote_count >= self._threshold():
                self._pull_local()
        return self.proxy_remote(verb, args, kwargs)

    def _threshold(self) -> int:
        return int(self.proxy_config.get("migrate_after", DEFAULT_MIGRATE_AFTER))

    def _pull_local(self) -> None:
        from ...migration.mover import migrate
        self._attempted = True
        new_ref = migrate(self.proxy_context, self.proxy_ref)
        if new_ref is None:
            self.proxy_stats["migration_failures"] += 1
            return
        if new_ref.key == self.proxy_ref.key:
            self.proxy_rebind(new_ref)
        self.proxy_stats["migrations"] += 1

    @classmethod
    def on_export(cls, space, entry) -> None:
        """Server-side setup: install the mover and register the class so the
        object can be re-instantiated wherever it lands."""
        from ...migration.mover import ensure_mover
        ensure_mover(space)
        space.system.codebase.register_class(type(entry.obj))
