"""The ``composite`` policy: stacking proxy intelligences.

Policies compose: a cache in front of a replica group, tracing around a
migrating proxy.  The composite proxy instantiates each named layer and
chains them with ``proxy_next``, so a call entering the outermost layer
flows down the stack and only the innermost layer talks to the protocol.

Configuration::

    config = {
        "layers": ["caching", "replicated"],      # outermost first
        "layer_configs": {"caching": {...}, "replicated": {...}},
    }

Server-side components of every layer are installed at export time (each
layer's ``on_export`` hook runs), so e.g. ``["caching", "replicated"]``
gets both the invalidation control and the replica list.
"""

from __future__ import annotations

from typing import Any

from ...kernel.errors import ConfigurationError
from ..factory import register_policy
from ..proxy import Proxy


def _layer_names(config: dict) -> list[str]:
    layers = config.get("layers") or []
    if not layers:
        raise ConfigurationError(
            "composite policy needs a non-empty 'layers' list")
    if "composite" in layers:
        raise ConfigurationError("composite layers cannot nest composites")
    return list(layers)


def _layer_config(config: dict, name: str) -> dict:
    specific = dict((config.get("layer_configs") or {}).get(name, {}))
    # Layer-relevant shared keys (shipped by on_export hooks) pass through.
    for key in ("control", "batch_control", "replicas", "collector",
                "read_policy", "write_quorum", "ttl", "invalidation",
                "migrate_after", "batch_size", "batch_ops", "report_every",
                "retry", "call_budget", "breaker", "stale_reads", "hedge",
                "adaptive_budget", "shards", "ring", "ring_epoch",
                "shard_key", "vnodes"):
        if key in config and key not in specific:
            specific[key] = config[key]
    return specific


@register_policy
class CompositeProxy(Proxy):
    """A stack of policy layers behind one proxy face."""

    policy_name = "composite"

    def __init__(self, context, ref, interface, config=None):
        super().__init__(context, ref, interface, config)
        self._stack: list[Proxy] | None = None

    def _build_stack(self) -> list[Proxy]:
        if self._stack is not None:
            return self._stack
        codebase = self.proxy_context.system.codebase
        names = _layer_names(self.proxy_config)
        layers: list[Proxy] = []
        for name in names:
            factory = codebase.factories.get(name)
            if factory is None:
                raise ConfigurationError(f"unknown layer policy {name!r}")
            layer = factory(self.proxy_context, self.proxy_ref,
                            self.proxy_interface,
                            _layer_config(self.proxy_config, name))
            layers.append(layer)
        for outer, inner in zip(layers, layers[1:]):
            outer.proxy_next = inner
        for layer in layers:
            layer.proxy_install()
        self._stack = layers
        return layers

    def proxy_install(self) -> None:
        # Defer to first use so a handshake-less bind stays message-free.
        pass

    def proxy_discard(self) -> None:
        for layer in self._stack or []:
            layer.proxy_discard()
        self._stack = None

    def invoke(self, verb: str, args: tuple, kwargs: dict) -> Any:
        self.proxy_stats["invocations"] += 1
        stack = self._build_stack()
        return stack[0].invoke(verb, args, kwargs)

    @property
    def proxy_layers(self) -> list[str]:
        """Class names of the instantiated layers (outermost first)."""
        return [type(layer).__name__ for layer in self._build_stack()]

    @classmethod
    def on_export(cls, space, entry) -> None:
        """Run every layer's server-side installation."""
        codebase = space.system.codebase
        for name in _layer_names(entry.policy_config):
            factory = codebase.factories.get(name)
            if factory is None:
                raise ConfigurationError(f"unknown layer policy {name!r}")
            hook = getattr(factory, "on_export", None)
            if hook is not None:
                hook(space, entry)
