"""The ``batching`` policy: a proxy that amortises message overhead.

Mutating operations are buffered client-side and shipped as one request,
trading per-call latency for message count — the right choice for
append-heavy interfaces (logs, mailboxes, metering).

Semantics contract (documented, enforced by flushing):

* batched operations return ``None`` — choose this policy only for
  interfaces whose mutators' results are ignorable;
* the buffer is flushed before any non-batched operation executes, so a
  client always reads its own writes;
* the buffer is flushed when it reaches ``batch_size`` and when the proxy is
  discarded.

The server half is :class:`BatchControl`, exported automatically next to the
object by :meth:`BatchingProxy.on_export`.
"""

from __future__ import annotations

from typing import Any

from ...iface.interface import operation
from ...wire.refs import ObjectRef
from ..factory import register_policy
from ..proxy import Proxy

#: Default number of buffered operations that triggers a flush.
DEFAULT_BATCH_SIZE = 8


@register_policy
class BatchingProxy(Proxy):
    """Buffer mutating operations; ship them in batches."""

    policy_name = "batching"

    def __init__(self, context, ref, interface, config=None):
        super().__init__(context, ref, interface, config)
        self._buffer: list[tuple[str, list, dict]] = []
        self._control = None
        self.proxy_stats.update(batched=0, flushes=0, flushed_ops=0)

    # -- invocation --------------------------------------------------------------

    def invoke(self, verb: str, args: tuple, kwargs: dict) -> Any:
        self.proxy_stats["invocations"] += 1
        op = self.proxy_interface.operation(verb)
        if self._batchable(verb, op):
            self._buffer.append((verb, list(args), dict(kwargs)))
            self.proxy_stats["batched"] += 1
            if len(self._buffer) >= self._batch_size():
                self.proxy_flush()
            return None
        self.proxy_flush()
        return self.proxy_remote(verb, args, kwargs)

    def proxy_flush(self) -> int:
        """Ship the buffered operations now; returns how many were sent."""
        if not self._buffer:
            return 0
        control = self._resolve_control()
        ops, self._buffer = self._buffer, []
        control.apply(ops)
        self.proxy_stats["flushes"] += 1
        self.proxy_stats["flushed_ops"] += len(ops)
        return len(ops)

    def proxy_discard(self) -> None:
        self.proxy_flush()

    @property
    def proxy_pending(self) -> int:
        """Number of operations currently buffered."""
        return len(self._buffer)

    # -- internals ------------------------------------------------------------------

    def _batchable(self, verb: str, op) -> bool:
        if op.readonly or op.oneway:
            return False
        if self.proxy_config.get("batch_control") is None:
            return False
        allowed = self.proxy_config.get("batch_ops")
        return True if allowed is None else verb in allowed

    def _batch_size(self) -> int:
        return int(self.proxy_config.get("batch_size", DEFAULT_BATCH_SIZE))

    def _resolve_control(self):
        if self._control is None:
            control = self.proxy_config["batch_control"]
            if isinstance(control, ObjectRef):
                control = self.proxy_context.space.bind_ref(control,
                                                            handshake=False)
            self._control = control
        return self._control

    # -- server-side installation ---------------------------------------------------

    @classmethod
    def on_export(cls, space, entry) -> None:
        """Export the batch-apply control next to the object."""
        control = BatchControl(entry, space.context)
        entry.policy_config["batch_control"] = space.export(control)


class BatchControl:
    """Server-side executor for batched operations against one object."""

    def __init__(self, entry, context):
        self._entry = entry
        self._context = context

    @operation
    def apply(self, ops: list) -> int:
        """Execute a batch of ``[verb, args, kwargs]`` in order.

        Individual results are discarded (the batching contract); the first
        failing operation aborts the remainder and propagates its error.
        Each constituent operation's declared compute cost is charged, so
        batching saves messages, not server work.  Returns the number of
        operations executed.
        """
        executed = 0
        for verb, args, kwargs in ops:
            declared = self._entry.interface.operation(verb)
            if declared.compute:
                self._context.charge(declared.compute)
            method = getattr(self._entry.obj, verb)
            method(*args, **(kwargs or {}))
            executed += 1
            if not declared.readonly:
                # Batched mutations must still drive coherence/persistence.
                self._entry.run_mutation_hooks(verb, tuple(args), kwargs or {})
        return executed
