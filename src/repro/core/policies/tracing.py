"""The ``tracing`` policy: service-shipped observability.

A further kind of proxy intelligence the paper's framing invites: the
service ships instrumentation *into its clients*.  The tracing proxy
records per-operation counts and virtual-time latencies locally, and — when
the exporter deployed a collector — periodically ships a summary to it as a
one-way message, so the service operator sees client-side latency (which
includes queueing and retransmission time the server never observes).
"""

from __future__ import annotations

from typing import Any

from ...iface.interface import operation
from ...wire.refs import ObjectRef
from ..factory import register_policy
from ..proxy import Proxy

#: Ship a report to the collector every N invocations.
DEFAULT_REPORT_EVERY = 32


@register_policy
class TracingProxy(Proxy):
    """Forwarding proxy that measures every operation from the client side."""

    policy_name = "tracing"

    def __init__(self, context, ref, interface, config=None):
        super().__init__(context, ref, interface, config)
        self._collector = None
        self._since_report = 0
        self.proxy_trace: dict[str, dict] = {}
        self.proxy_stats.update(reports=0)

    def invoke(self, verb: str, args: tuple, kwargs: dict) -> Any:
        self.proxy_stats["invocations"] += 1
        started = self.proxy_context.clock.now
        try:
            return self.proxy_remote(verb, args, kwargs)
        finally:
            self._record(verb, self.proxy_context.clock.now - started)

    def _record(self, verb: str, elapsed: float) -> None:
        slot = self.proxy_trace.setdefault(
            verb, {"count": 0, "total": 0.0, "max": 0.0})
        slot["count"] += 1
        slot["total"] += elapsed
        slot["max"] = max(slot["max"], elapsed)
        self._since_report += 1
        if self._since_report >= self._report_every():
            self.proxy_report()

    def _report_every(self) -> int:
        return int(self.proxy_config.get("report_every", DEFAULT_REPORT_EVERY))

    def proxy_report(self) -> bool:
        """Ship the current summary to the collector (if any); resets the
        reporting counter.  Returns whether a report was sent."""
        self._since_report = 0
        collector = self._resolve_collector()
        if collector is None:
            return False
        summary = {verb: dict(slot) for verb, slot in self.proxy_trace.items()}
        collector.report(self.proxy_context.context_id, summary)
        self.proxy_stats["reports"] += 1
        return True

    def _resolve_collector(self):
        if self._collector is None:
            target = self.proxy_config.get("collector")
            if target is None:
                return None
            if isinstance(target, ObjectRef):
                target = self.proxy_context.space.bind_ref(target,
                                                           handshake=False)
            self._collector = target
        return self._collector

    @classmethod
    def on_export(cls, space, entry) -> None:
        """Deploy a collector next to the object when asked to."""
        if entry.policy_config.get("collect", True):
            collector = TraceCollector()
            entry.policy_config["collector"] = space.export(collector)


class TraceCollector:
    """Server-side aggregation point for client-shipped latency summaries."""

    def __init__(self):
        self._by_client: dict[str, dict] = {}

    @operation(oneway=True)
    def report(self, client_id: str, summary: dict) -> None:
        """Accept one client's summary (replaces its previous one)."""
        self._by_client[client_id] = summary

    @operation(readonly=True)
    def aggregate(self) -> dict:
        """Merged view across clients: verb -> count/total/max."""
        merged: dict[str, dict] = {}
        for summary in self._by_client.values():
            for verb, slot in summary.items():
                agg = merged.setdefault(
                    verb, {"count": 0, "total": 0.0, "max": 0.0})
                agg["count"] += slot["count"]
                agg["total"] += slot["total"]
                agg["max"] = max(agg["max"], slot["max"])
        return merged

    @operation(readonly=True)
    def clients(self) -> list:
        """Context ids that have reported so far, sorted."""
        return sorted(self._by_client)
