"""The ``replicated`` policy: a proxy that binds to a replica group.

The service is deployed as N copies in different contexts; the proxy the
service ships routes each operation:

* **reads** (``readonly`` operations) go to one replica, chosen by the
  configured ``read_policy`` (``"nearest"`` by transit time, ``"roundrobin"``,
  or ``"primary"``), failing over to the next candidate on a distribution
  error — this is the availability story of experiment E9;
* **writes** (everything else) go to *all* replicas, synchronously, in a
  fixed order; the write succeeds when at least ``write_quorum`` replicas
  (default: all alive is required — i.e. ``len(replicas)``) acknowledged.

Consistency contract: with synchronous write-all and a single writer this
gives read-your-writes everywhere.  Concurrent writers are ordered only
per-replica (no global order) — the 1986-era trade-off; services needing
more layer a sequencer on top.

Deployment helper: :func:`replicate` builds the group and returns the
client-facing reference.
"""

from __future__ import annotations

from typing import Any, Callable

from ...kernel.errors import DistributionError
from ...wire.refs import ObjectRef
from ..factory import register_policy
from ..proxy import Proxy


@register_policy
class ReplicatedProxy(Proxy):
    """Route reads to one replica and writes to all of them."""

    policy_name = "replicated"

    def __init__(self, context, ref, interface, config=None):
        super().__init__(context, ref, interface, config)
        self._replicas: list | None = None
        self._rr_counter = 0
        self.proxy_stats.update(reads=0, writes=0, read_failovers=0,
                                write_failures=0)

    # -- replica resolution -------------------------------------------------------

    def _resolve_replicas(self) -> list:
        """Sub-proxies for every replica, fetched lazily.

        Falls back to the installation handshake when the configuration
        arrived without the replica list (reference passed by value), and to
        plain forwarding when even that yields nothing.
        """
        if self._replicas is not None:
            return self._replicas
        raw = self.proxy_config.get("replicas")
        if raw is None and not self.proxy_handshaken:
            self.proxy_context.space.upgrade(self)
            raw = self.proxy_config.get("replicas")
        space = self.proxy_context.space
        replicas = []
        for item in raw or []:
            if isinstance(item, ObjectRef):
                item = space.bind_ref(item, handshake=False)
            replicas.append(item)
        self._replicas = replicas
        return replicas

    def _read_order(self, replicas: list) -> list:
        policy = self.proxy_config.get("read_policy", "nearest")
        if policy == "roundrobin":
            start = self._rr_counter % len(replicas)
            self._rr_counter += 1
            return replicas[start:] + replicas[:start]
        if policy == "primary":
            return list(replicas)
        network = self.proxy_context.system.network
        my_node = self.proxy_context.node.name

        def distance(replica) -> float:
            if not isinstance(replica, Proxy):
                return 0.0  # a co-located raw replica is as near as it gets
            return network.transit_time(my_node, replica.proxy_ref.node_name, 64)

        return sorted(replicas, key=distance)

    # -- invocation ---------------------------------------------------------------------

    def invoke(self, verb: str, args: tuple, kwargs: dict) -> Any:
        self.proxy_stats["invocations"] += 1
        replicas = self._resolve_replicas()
        if not replicas:
            return self.proxy_remote(verb, args, kwargs)
        op = self.proxy_interface.operation(verb)
        if op.readonly:
            return self._read(replicas, verb, args, kwargs)
        return self._write(replicas, verb, args, kwargs)

    def _call(self, replica, verb: str, args: tuple, kwargs: dict) -> Any:
        """Invoke on one replica: through its proxy, or directly when the
        replica lives in this very context (home access is the object)."""
        if isinstance(replica, Proxy):
            return replica.invoke(verb, args, kwargs)
        self.proxy_context.charge(self.proxy_context.system.costs.local_call)
        return getattr(replica, verb)(*args, **kwargs)

    def _read(self, replicas: list, verb: str, args: tuple, kwargs: dict) -> Any:
        self.proxy_stats["reads"] += 1
        last_error: Exception | None = None
        for replica in self._read_order(replicas):
            try:
                return self._call(replica, verb, args, kwargs)
            except DistributionError as exc:
                self.proxy_stats["read_failovers"] += 1
                last_error = exc
        raise last_error if last_error is not None else DistributionError(
            f"no replica answered {verb!r}")

    def _write(self, replicas: list, verb: str, args: tuple, kwargs: dict) -> Any:
        self.proxy_stats["writes"] += 1
        quorum = int(self.proxy_config.get("write_quorum", len(replicas)))
        acknowledged = 0
        result: Any = None
        last_error: Exception | None = None
        for replica in replicas:
            try:
                outcome = self._call(replica, verb, args, kwargs)
            except DistributionError as exc:
                last_error = exc
                continue
            if acknowledged == 0:
                result = outcome
            acknowledged += 1
        if acknowledged < quorum:
            self.proxy_stats["write_failures"] += 1
            raise DistributionError(
                f"write {verb!r} reached {acknowledged}/{len(replicas)} "
                f"replicas, quorum is {quorum}") from last_error
        return result


def replicate(contexts: list, factory: Callable[[], object],
              interface=None, read_policy: str = "nearest",
              write_quorum: int | None = None,
              extra_layers: list[str] | None = None) -> ObjectRef:
    """Deploy a replica group and return the client-facing reference.

    One instance from ``factory`` is exported (under the plain ``stub``
    policy) in each of ``contexts``; the first context additionally exports
    the group entry under the ``replicated`` policy, whose configuration
    carries the replica references.  Clients bind the returned reference and
    receive a :class:`ReplicatedProxy`.

    ``extra_layers`` stacks additional policies *in front of* replication
    (outermost first), e.g. ``["caching"]`` for a cached replica group; the
    group is then exported under the ``composite`` policy.
    """
    from ...iface.adapters import make_delegate
    from ...iface.interface import Interface
    from ..export import get_space
    if not contexts:
        raise ValueError("replicate() needs at least one context")
    replica_refs = []
    first_obj = None
    for ctx in contexts:
        obj = factory()
        if first_obj is None:
            first_obj = obj
            if interface is None:
                interface = Interface.of(type(obj))
        replica_refs.append(get_space(ctx).export(obj, interface=interface,
                                                  policy="stub"))
    config: dict = {"replicas": replica_refs, "read_policy": read_policy}
    if write_quorum is not None:
        config["write_quorum"] = write_quorum
    policy = "replicated"
    if extra_layers:
        policy = "composite"
        config["layers"] = list(extra_layers) + ["replicated"]
    # The group entry is a distinct delegate object (not the primary itself),
    # so the primary's identity keeps exactly one export and the group
    # reference carries the replicated policy.  The delegate answers clients
    # that call the group entry directly (e.g. before resolving replicas).
    coordinator = make_delegate(first_obj, interface)
    primary_space = get_space(contexts[0])
    group_ref = primary_space.export(coordinator, interface=interface,
                                     policy=policy, config=config)
    # Server-side layer components (e.g. the caching layer's invalidation
    # hook) install on the *group* entry, but writes are dispatched to the
    # replica stub entries directly — mirror the hook list onto every
    # replica so mutations observed at any copy fire the same machinery.
    # The list object is shared, so later installs propagate too; hooks are
    # idempotent per write, so the per-replica duplication is harmless.
    group_entry = primary_space.entry(group_ref.oid)
    if group_entry.mutation_hooks:
        for ctx, ref in zip(contexts, replica_refs):
            get_space(ctx).entry(ref.oid).mutation_hooks = \
                group_entry.mutation_hooks
    return group_ref
