"""The ``replicated`` policy: a proxy that binds to a replica group.

The service is deployed as N copies in different contexts; the proxy the
service ships routes each operation.  Two modes share the deployment:

**Legacy write-all** (the 1986-era contract, still the default):

* **reads** go to one replica, chosen by the configured ``read_policy``
  (``"nearest"`` by transit time, ``"roundrobin"``, or ``"primary"``),
  failing over to the next candidate on a distribution error;
* **writes** go to *all* replicas, synchronously, in a fixed order; the
  write succeeds when at least ``write_quorum`` replicas acknowledged.

With ``write_quorum < N`` this gives read-your-writes only when the read
happens to land on a replica that acknowledged — a *probabilistic*
freshness story, and the reason simtest's fault menu confines this mode
to latency faults.

**Versioned quorum mode** (``read_quorum`` set, or ``versioned=True``):
Gifford-style weighted voting with a primary sequencer.  Every write is
executed first at the primary (``replicas[0]``), which assigns the next
per-key **version** and logs the operation; the proxy then fans the write
out with that version attached (:mod:`repro.wire.versions`), repairs any
replica that reports a missing prefix, and succeeds once ``write_quorum``
(W) copies hold the version.  Reads collect versioned answers from
``read_quorum`` (R) replicas, return the **newest**, read-repair the
stale answerers, and — before returning — confirm the winning version on
at least W copies (ABD-style promotion), so an overlapped configuration
(``R + W > N``) is linearizable under crashes, partitions, and message
loss; the sim-chaos battery holds it to that.  An under-quorumed
configuration (``R + W <= N``) trades that consistency for availability —
measured in experiment E9.

Deployment helper: :func:`replicate` builds the group and returns the
client-facing reference.
"""

from __future__ import annotations

from typing import Any, Callable

from ...kernel.errors import (
    ConfigurationError,
    DanglingReference,
    DistributionError,
    ReproError,
)
from ...rpc.protocol import RemoteError, remote_exception
from ...wire import versions
from ...wire.refs import ObjectRef
from ..factory import register_policy
from ..proxy import Proxy


@register_policy
class ReplicatedProxy(Proxy):
    """Route reads to R replicas and writes through the primary to all."""

    policy_name = "replicated"

    def __init__(self, context, ref, interface, config=None):
        super().__init__(context, ref, interface, config)
        self._replicas: list | None = None
        self._replica_refs: list[ObjectRef | None] = []
        self._rr_counter = 0
        self.proxy_stats.update(reads=0, writes=0, read_failovers=0,
                                write_failures=0, read_failures=0,
                                app_errors=0, read_repairs=0,
                                write_repairs=0, repair_failures=0)

    # -- replica resolution -------------------------------------------------------

    def _resolve_replicas(self) -> list:
        """Sub-proxies for every replica, fetched lazily.

        Falls back to the installation handshake when the configuration
        arrived without the replica list (reference passed by value), and to
        plain forwarding when even that yields nothing.  An **empty**
        resolution is not memoised: the replica list may simply not have
        been delivered yet (handshake raced or skipped), and caching the
        emptiness would degrade the proxy to plain forwarding forever.
        """
        if self._replicas is not None:
            return self._replicas
        raw = self.proxy_config.get("replicas")
        if raw is None and not self.proxy_handshaken:
            self.proxy_context.space.upgrade(self)
            raw = self.proxy_config.get("replicas")
        space = self.proxy_context.space
        replicas: list = []
        refs: list[ObjectRef | None] = []
        for item in raw or []:
            if isinstance(item, ObjectRef):
                refs.append(item)
                item = space.bind_ref(item, handshake=False)
            else:
                # A co-located replica arrives as the raw object (home
                # access); recover its export reference so the versioned
                # path can reach its entry (and version log).
                ref = getattr(item, "proxy_ref", None)
                if ref is None:
                    try:
                        ref = space.ref_of(item)
                    except ReproError:
                        ref = None
                refs.append(ref)
            replicas.append(item)
        if not replicas:
            return []
        self._replicas = replicas
        self._replica_refs = refs
        return replicas

    def _read_order_indices(self, count: int) -> list[int]:
        indices = list(range(count))
        policy = self.proxy_config.get("read_policy", "nearest")
        if policy == "roundrobin":
            start = self._rr_counter % count
            self._rr_counter += 1
            return indices[start:] + indices[:start]
        if policy == "primary":
            return indices
        network = self.proxy_context.system.network
        my_node = self.proxy_context.node.name

        def distance(index: int) -> float:
            replica = self._replicas[index]
            if not isinstance(replica, Proxy):
                return 0.0  # a co-located raw replica is as near as it gets
            return network.transit_time(my_node, replica.proxy_ref.node_name,
                                        64)

        return sorted(indices, key=distance)

    def _read_order(self, replicas: list) -> list:
        return [replicas[i] for i in self._read_order_indices(len(replicas))]

    # -- configuration ------------------------------------------------------------

    def _quorum_mode(self) -> bool:
        """True when the group runs versioned quorum reads/writes."""
        config = self.proxy_config
        return bool(config.get("versioned")) or "read_quorum" in config

    def _quorum_params(self, count: int) -> tuple[int, int]:
        """Validated ``(write_quorum, read_quorum)`` for a ``count`` group.

        ``write_quorum`` outside ``1..count`` is a configuration error, not
        a distribution outcome: zero (or negative) would let a write that
        reached *no* replica "succeed", and more than ``count`` can never
        be met.  Same bounds for ``read_quorum`` (quorum mode only).
        """
        write_quorum = int(self.proxy_config.get("write_quorum", count))
        if not 1 <= write_quorum <= count:
            raise ConfigurationError(
                f"write_quorum={write_quorum} outside 1..{count} for a "
                f"{count}-replica group")
        read_quorum = int(self.proxy_config.get("read_quorum",
                                                count - write_quorum + 1))
        if not 1 <= read_quorum <= count:
            raise ConfigurationError(
                f"read_quorum={read_quorum} outside 1..{count} for a "
                f"{count}-replica group")
        return write_quorum, read_quorum

    def _version_key(self, args: tuple) -> Any:
        """The version-log key of one operation.

        ``version_key="arg0"`` partitions the log by the first argument
        (right for keyed services — KV, locks); the default ``"object"``
        serialises every write of the object under one log, which is always
        safe.
        """
        if self.proxy_config.get("version_key") == "arg0" and args:
            return args[0]
        return "*"

    # -- invocation ---------------------------------------------------------------------

    def invoke(self, verb: str, args: tuple, kwargs: dict) -> Any:
        self.proxy_stats["invocations"] += 1
        replicas = self._resolve_replicas()
        if not replicas:
            return self.proxy_remote(verb, args, kwargs)
        op = self.proxy_interface.operation(verb)
        if self._quorum_mode():
            write_quorum, read_quorum = self._quorum_params(len(replicas))
            key = self._version_key(args)
            if op.readonly:
                return self._read_versioned(replicas, verb, args, kwargs,
                                            key, write_quorum, read_quorum)
            return self._write_versioned(replicas, verb, args, kwargs, key,
                                         write_quorum)
        if op.readonly:
            return self._read(replicas, verb, args, kwargs)
        return self._write(replicas, verb, args, kwargs)

    def _call(self, replica, verb: str, args: tuple, kwargs: dict) -> Any:
        """Invoke on one replica: through its proxy, or directly when the
        replica lives in this very context (home access is the object)."""
        if isinstance(replica, Proxy):
            return replica.invoke(verb, args, kwargs)
        self.proxy_context.charge(self.proxy_context.system.costs.local_call)
        return getattr(replica, verb)(*args, **kwargs)

    def _read(self, replicas: list, verb: str, args: tuple, kwargs: dict) -> Any:
        self.proxy_stats["reads"] += 1
        last_error: Exception | None = None
        for replica in self._read_order(replicas):
            try:
                return self._call(replica, verb, args, kwargs)
            except DistributionError as exc:
                self.proxy_stats["read_failovers"] += 1
                last_error = exc
        raise last_error if last_error is not None else DistributionError(
            f"no replica answered {verb!r}")

    def _write(self, replicas: list, verb: str, args: tuple, kwargs: dict) -> Any:
        self.proxy_stats["writes"] += 1
        quorum = self._quorum_params(len(replicas))[0]
        acknowledged = 0
        result: Any = None
        last_error: Exception | None = None
        app_error: BaseException | None = None
        for replica in replicas:
            try:
                outcome = self._call(replica, verb, args, kwargs)
            except RemoteError as exc:
                # An application exception of an unreconstructible type:
                # the replica executed the operation and raised.
                if app_error is None:
                    app_error = exc
                continue
            except DistributionError as exc:
                last_error = exc
                continue
            except ReproError:
                raise    # a kernel/harness problem, not a write outcome
            except Exception as exc:
                # A reconstructed application exception.  Aborting here
                # would leave the remaining replicas without the write —
                # silent divergence — so complete the fan-out first and
                # re-raise after the group has converged.
                if app_error is None:
                    app_error = exc
                continue
            if acknowledged == 0:
                result = outcome
            acknowledged += 1
        if app_error is not None:
            self.proxy_stats["app_errors"] += 1
            raise app_error
        if acknowledged < quorum:
            self.proxy_stats["write_failures"] += 1
            raise DistributionError(
                f"write {verb!r} reached {acknowledged}/{len(replicas)} "
                f"replicas, quorum is {quorum}") from last_error
        return result

    # -- versioned quorum mode ----------------------------------------------------

    def _versioned_call(self, index: int, verb: str, args: tuple,
                        kwargs: dict, headers: dict) -> dict:
        """One enveloped replica call; returns the reply wrapper.

        Remote replicas get the envelope in the frame headers; a replica
        co-located with the caller bypasses the frame layer and runs the
        same protocol step against the local export entry.
        """
        replica = self._replicas[index]
        context = self.proxy_context
        if isinstance(replica, Proxy):
            return context.system.rpc.call(context, replica.proxy_ref, verb,
                                           args, kwargs, headers=headers)
        ref = self._replica_refs[index]
        if ref is None:
            raise ConfigurationError(
                "versioned replication needs reference-addressed replicas")
        entry = context.exports.get(ref.oid)
        if entry is None or entry.revoked:
            raise DanglingReference(
                f"context {context.context_id!r} exports no object "
                f"{ref.oid!r}")
        context.charge(context.system.costs.local_call)
        return versions.serve_envelope(entry, verb, args, kwargs, headers)

    def _control_call(self, index: int, control: list,
                      body_args: tuple) -> dict:
        """A verb-less log-transfer call (repair traffic) to one replica."""
        return self._versioned_call(index, "", tuple(body_args), {},
                                    {versions.H_CONTROL: control})

    def _repair(self, target: int, source: int, key, since: int) -> int:
        """Transfer ``key``'s log suffix after ``since`` from ``source`` to
        ``target``; returns the target's resulting version (-1 on failure)."""
        try:
            pulled = self._control_call(source, ["pull", key, int(since)], ())
            pushed = self._control_call(target, ["push", key],
                                        (pulled.get(versions.K_LOG, []),))
        except DistributionError:
            self.proxy_stats["repair_failures"] += 1
            return -1
        return int(pushed.get(versions.K_VERSION, -1))

    def _write_versioned(self, replicas: list, verb: str, args: tuple,
                         kwargs: dict, key, write_quorum: int) -> Any:
        """Primary-sequenced quorum write.

        The primary executes first and assigns the version, so an
        application exception surfaces before any fan-out — the group never
        diverges on a raising write.  A replica that reports a missing
        prefix is repaired (suffix pull from the primary) and then counts;
        the write succeeds once ``write_quorum`` copies hold the version.
        """
        self.proxy_stats["writes"] += 1
        try:
            primary = self._versioned_call(0, verb, args, kwargs,
                                           {versions.H_ASSIGN: [key]})
        except RemoteError:
            self.proxy_stats["app_errors"] += 1
            raise
        except DistributionError:
            # The primary is unreachable: no version was assigned that we
            # know of (a lost reply still makes this a "maybe").
            self.proxy_stats["write_failures"] += 1
            raise
        except ReproError:
            raise
        except Exception:
            self.proxy_stats["app_errors"] += 1
            raise
        version = int(primary[versions.K_VERSION])
        acknowledged = 1
        last_error: Exception | None = None
        for index in range(1, len(replicas)):
            try:
                reply = self._versioned_call(
                    index, verb, args, kwargs,
                    {versions.H_APPLY: [key, version]})
            except DistributionError as exc:
                last_error = exc
                continue
            if int(reply[versions.K_VERSION]) >= version:
                acknowledged += 1
            elif versions.K_EXC not in reply:
                # The replica is missing a prefix: pull it from the primary,
                # which holds every assigned version of this key.
                if self._repair(index, 0, key, since=reply[
                        versions.K_VERSION]) >= version:
                    self.proxy_stats["write_repairs"] += 1
                    acknowledged += 1
            # A K_EXC reply is a diverged replica (the primary executed this
            # operation cleanly): never acknowledged, repair won't help.
        if acknowledged < write_quorum:
            self.proxy_stats["write_failures"] += 1
            raise DistributionError(
                f"write {verb!r} at version {version} of {key!r} reached "
                f"{acknowledged}/{len(replicas)} replicas, quorum is "
                f"{write_quorum}") from last_error
        return primary.get(versions.K_VALUE)

    def _read_versioned(self, replicas: list, verb: str, args: tuple,
                        kwargs: dict, key, write_quorum: int,
                        read_quorum: int) -> Any:
        """Quorum read: collect R versioned answers, newest wins.

        Before the winner is returned, its version must be **confirmed on
        at least W replicas** (read-repairing stale answerers and, if still
        short, unanswered replicas).  That promotion step is what makes a
        barely-committed — or merely *maybe*-committed — write safe to
        expose: any later R-read overlaps the confirmed set, so a value
        shown once can never disappear again.  A read that cannot promote
        its winner fails (and a failed read moves no state).
        """
        self.proxy_stats["reads"] += 1
        order = self._read_order_indices(len(replicas))
        answers: dict[int, dict] = {}
        last_error: Exception | None = None
        for index in order:
            if len(answers) >= read_quorum:
                break
            try:
                answers[index] = self._versioned_call(
                    index, verb, args, kwargs, {versions.H_READ: [key]})
            except DistributionError as exc:
                self.proxy_stats["read_failovers"] += 1
                last_error = exc
        if len(answers) < read_quorum:
            self.proxy_stats["read_failures"] += 1
            raise DistributionError(
                f"read {verb!r} of {key!r} reached {len(answers)}/"
                f"{len(replicas)} replicas, read quorum is "
                f"{read_quorum}") from last_error
        newest = max(int(reply[versions.K_VERSION])
                     for reply in answers.values())
        winner_index = next(i for i in order if i in answers and
                            int(answers[i][versions.K_VERSION]) >= newest)
        confirmed = {i for i, reply in answers.items()
                     if int(reply[versions.K_VERSION]) >= newest}
        for index, reply in answers.items():
            seen = int(reply[versions.K_VERSION])
            if seen < newest:    # read-repair the stale answerer
                if self._repair(index, winner_index, key,
                                since=seen) >= newest:
                    self.proxy_stats["read_repairs"] += 1
                    confirmed.add(index)
        if len(confirmed) < write_quorum:
            for index in order:
                if len(confirmed) >= write_quorum:
                    break
                if index in answers:
                    continue
                if self._repair(index, winner_index, key, since=0) >= newest:
                    self.proxy_stats["read_repairs"] += 1
                    confirmed.add(index)
        if len(confirmed) < write_quorum:
            self.proxy_stats["read_failures"] += 1
            raise DistributionError(
                f"read {verb!r} saw version {newest} of {key!r} on only "
                f"{len(confirmed)} replicas, write quorum is {write_quorum}")
        winner = answers[winner_index]
        failure = winner.get(versions.K_EXC)
        if failure is not None:
            raise remote_exception(failure[0], failure[1])
        return winner.get(versions.K_VALUE)


def replicate(contexts: list, factory: Callable[[], object],
              interface=None, read_policy: str = "nearest",
              write_quorum: int | None = None,
              read_quorum: int | None = None,
              versioned: bool = False,
              version_key: str | None = None,
              extra_layers: list[str] | None = None) -> ObjectRef:
    """Deploy a replica group and return the client-facing reference.

    One instance from ``factory`` is exported (under the plain ``stub``
    policy) in each of ``contexts``; the first context additionally exports
    the group entry under the ``replicated`` policy, whose configuration
    carries the replica references.  Clients bind the returned reference and
    receive a :class:`ReplicatedProxy`.

    ``read_quorum`` (or ``versioned=True``) switches the group to the
    versioned quorum mode (module docstring); ``version_key="arg0"``
    partitions the version log by the operations' first argument.  Quorum
    bounds are validated here as well as at call time, so a broken
    deployment fails at deploy.

    ``extra_layers`` stacks additional policies *in front of* replication
    (outermost first), e.g. ``["caching"]`` for a cached replica group; the
    group is then exported under the ``composite`` policy.
    """
    from ...iface.adapters import make_delegate
    from ...iface.interface import Interface
    from ..export import get_space
    if not contexts:
        raise ValueError("replicate() needs at least one context")
    count = len(contexts)
    for label, quorum in (("write_quorum", write_quorum),
                          ("read_quorum", read_quorum)):
        if quorum is not None and not 1 <= int(quorum) <= count:
            raise ConfigurationError(
                f"{label}={quorum} outside 1..{count} for a "
                f"{count}-replica group")
    replica_refs = []
    first_obj = None
    for ctx in contexts:
        obj = factory()
        if first_obj is None:
            first_obj = obj
            if interface is None:
                interface = Interface.of(type(obj))
        replica_refs.append(get_space(ctx).export(obj, interface=interface,
                                                  policy="stub"))
    config: dict = {"replicas": replica_refs, "read_policy": read_policy}
    if write_quorum is not None:
        config["write_quorum"] = int(write_quorum)
    if read_quorum is not None:
        config["read_quorum"] = int(read_quorum)
    if versioned:
        config["versioned"] = True
    if version_key is not None:
        config["version_key"] = version_key
    policy = "replicated"
    if extra_layers:
        policy = "composite"
        config["layers"] = list(extra_layers) + ["replicated"]
    # The group entry is a distinct delegate object (not the primary itself),
    # so the primary's identity keeps exactly one export and the group
    # reference carries the replicated policy.  The delegate answers clients
    # that call the group entry directly (e.g. before resolving replicas).
    coordinator = make_delegate(first_obj, interface)
    primary_space = get_space(contexts[0])
    group_ref = primary_space.export(coordinator, interface=interface,
                                     policy=policy, config=config)
    # Server-side layer components (e.g. the caching layer's invalidation
    # hook) install on the *group* entry, but writes are dispatched to the
    # replica stub entries directly — mirror the hook list onto every
    # replica so mutations observed at any copy fire the same machinery.
    # The list object is shared, so later installs propagate too; hooks are
    # idempotent per write, so the per-replica duplication is harmless.
    group_entry = primary_space.entry(group_ref.oid)
    if group_entry.mutation_hooks:
        for ctx, ref in zip(contexts, replica_refs):
            get_space(ctx).entry(ref.oid).mutation_hooks = \
                group_entry.mutation_hooks
    return group_ref
