"""The ``replicated`` policy: a proxy that binds to a replica group.

The service is deployed as N copies in different contexts; the proxy the
service ships routes each operation.  Two modes share the deployment:

**Legacy write-all** (the 1986-era contract, still the default):

* **reads** go to one replica, chosen by the configured ``read_policy``
  (``"nearest"`` by transit time, ``"roundrobin"``, or ``"primary"``),
  failing over to the next candidate on a distribution error;
* **writes** go to *all* replicas, synchronously, in a fixed order; the
  write succeeds when at least ``write_quorum`` replicas acknowledged.

With ``write_quorum < N`` this gives read-your-writes only when the read
happens to land on a replica that acknowledged — a *probabilistic*
freshness story, and the reason simtest's fault menu confines this mode
to latency faults.

**Versioned quorum mode** (``read_quorum`` set, or ``versioned=True``):
Gifford-style weighted voting with a primary sequencer.  Every write is
executed first at the primary (``replicas[0]``), which assigns the next
per-key **version** and logs the operation; the proxy then fans the write
out with that version attached (:mod:`repro.wire.versions`), repairs any
replica that reports a missing prefix, and succeeds once ``write_quorum``
(W) copies hold the version.  Reads collect versioned answers from
``read_quorum`` (R) replicas, return the **newest**, read-repair the
stale answerers, and — before returning — confirm the winning version on
at least W copies (ABD-style promotion), so an overlapped configuration
(``R + W > N``) is linearizable under crashes, partitions, and message
loss; the sim-chaos battery holds it to that.  An under-quorumed
configuration (``R + W <= N``) trades that consistency for availability —
measured in experiment E9.

**Election mode** (``elect=True`` on top of quorum mode): the primary is
no longer a fixed single point of failure.  Every replica carries an
:class:`~repro.failures.election.ElectionState` (a term number, a leader
belief, and a lease), every envelope is stamped with the proxy's
``(term, leader)`` belief, and stale-term writes are fenced server-side
with a redirect the proxy follows like a migration forward.  When the
leader stops answering, the proxy — policy code shipped by the service,
so clients never see any of this — runs the deterministic election of
:mod:`repro.failures.election` and resumes writes at the winner; the
write unavailability window is bounded by the lease TTL plus the
election time (experiment E9's failover panel measures it).  Log entries
carry the term that assigned them, versions order lexicographically by
``(term, version)``, and a replica holding a *different* entry at the
same version (an old leader's uncommitted tail) is detected as diverged
and repaired by reset + full log replay from the leader.  A periodic
:meth:`ReplicatedProxy.proxy_anti_entropy` sweep pushes missing log
suffixes from the leader to lagging replicas so restarted nodes catch up
without waiting for read-repair.

Deployment helper: :func:`replicate` builds the group and returns the
client-facing reference.
"""

from __future__ import annotations

from typing import Any, Callable

from ...kernel.errors import (
    ConfigurationError,
    DanglingReference,
    DistributionError,
    ReproError,
)
from ...rpc.protocol import RemoteError, remote_exception
from ...wire import versions
from ...wire.refs import ObjectRef
from ..factory import register_policy
from ..proxy import Proxy

#: Leader-retry bound per write (fence redirects, renewals, elections).
ASSIGN_ATTEMPTS = 4

#: Candidacy rounds one election call may drive before giving up.
ELECTION_ROUNDS = 4


@register_policy
class ReplicatedProxy(Proxy):
    """Route reads to R replicas and writes through the primary to all."""

    policy_name = "replicated"

    def __init__(self, context, ref, interface, config=None):
        super().__init__(context, ref, interface, config)
        self._replicas: list | None = None
        self._replica_refs: list[ObjectRef | None] = []
        self._rr_counter = 0
        #: Cached leadership belief (election mode): stamped on every
        #: envelope, corrected by fencing redirects and elections.
        self._term = 1
        self._leader = 0
        self.proxy_stats.update(reads=0, writes=0, read_failovers=0,
                                write_failures=0, read_failures=0,
                                app_errors=0, read_repairs=0,
                                write_repairs=0, repair_failures=0,
                                terms_started=0, elections=0,
                                elections_won=0, election_waits=0,
                                fencing_rejects=0, lease_renewals=0,
                                resyncs=0, anti_entropy_runs=0,
                                anti_entropy_keys=0, anti_entropy_bytes=0)

    # -- replica resolution -------------------------------------------------------

    def _resolve_replicas(self) -> list:
        """Sub-proxies for every replica, fetched lazily.

        Falls back to the installation handshake when the configuration
        arrived without the replica list (reference passed by value), and to
        plain forwarding when even that yields nothing.  An **empty**
        resolution is not memoised: the replica list may simply not have
        been delivered yet (handshake raced or skipped), and caching the
        emptiness would degrade the proxy to plain forwarding forever.
        """
        if self._replicas is not None:
            return self._replicas
        raw = self.proxy_config.get("replicas")
        if raw is None and not self.proxy_handshaken:
            self.proxy_context.space.upgrade(self)
            raw = self.proxy_config.get("replicas")
        space = self.proxy_context.space
        replicas: list = []
        refs: list[ObjectRef | None] = []
        for item in raw or []:
            if isinstance(item, ObjectRef):
                refs.append(item)
                item = space.bind_ref(item, handshake=False)
            else:
                # A co-located replica arrives as the raw object (home
                # access); recover its export reference so the versioned
                # path can reach its entry (and version log).
                ref = getattr(item, "proxy_ref", None)
                if ref is None:
                    try:
                        ref = space.ref_of(item)
                    except ReproError:
                        ref = None
                refs.append(ref)
            replicas.append(item)
        if not replicas:
            return []
        self._replicas = replicas
        self._replica_refs = refs
        return replicas

    def _read_order_indices(self, count: int) -> list[int]:
        indices = list(range(count))
        policy = self.proxy_config.get("read_policy", "nearest")
        if policy == "roundrobin":
            start = self._rr_counter % count
            self._rr_counter += 1
            return indices[start:] + indices[:start]
        if policy == "primary":
            return indices
        network = self.proxy_context.system.network
        my_node = self.proxy_context.node.name

        def distance(index: int) -> float:
            replica = self._replicas[index]
            if not isinstance(replica, Proxy):
                return 0.0  # a co-located raw replica is as near as it gets
            return network.transit_time(my_node, replica.proxy_ref.node_name,
                                        64)

        return sorted(indices, key=distance)

    def _read_order(self, replicas: list) -> list:
        return [replicas[i] for i in self._read_order_indices(len(replicas))]

    # -- configuration ------------------------------------------------------------

    def _quorum_mode(self) -> bool:
        """True when the group runs versioned quorum reads/writes."""
        config = self.proxy_config
        return bool(config.get("versioned")) or "read_quorum" in config

    def _elect_mode(self) -> bool:
        """True when the group additionally runs leader election."""
        return bool(self.proxy_config.get("elect"))

    def _adopt(self, term: int, leader: int) -> bool:
        """Fold a ``(term, leader)`` observed on the wire into the cache."""
        term, leader = int(term), int(leader)
        if term > self._term or (term == self._term and leader != self._leader):
            self._term, self._leader = term, leader
            return True
        return False

    def _quorum_params(self, count: int) -> tuple[int, int]:
        """Validated ``(write_quorum, read_quorum)`` for a ``count`` group.

        ``write_quorum`` outside ``1..count`` is a configuration error, not
        a distribution outcome: zero (or negative) would let a write that
        reached *no* replica "succeed", and more than ``count`` can never
        be met.  Same bounds for ``read_quorum`` (quorum mode only).
        """
        write_quorum = int(self.proxy_config.get("write_quorum", count))
        if not 1 <= write_quorum <= count:
            raise ConfigurationError(
                f"write_quorum={write_quorum} outside 1..{count} for a "
                f"{count}-replica group")
        read_quorum = int(self.proxy_config.get("read_quorum",
                                                count - write_quorum + 1))
        if not 1 <= read_quorum <= count:
            raise ConfigurationError(
                f"read_quorum={read_quorum} outside 1..{count} for a "
                f"{count}-replica group")
        return write_quorum, read_quorum

    def _version_key(self, args: tuple) -> Any:
        """The version-log key of one operation.

        ``version_key="arg0"`` partitions the log by the first argument
        (right for keyed services — KV, locks); the default ``"object"``
        serialises every write of the object under one log, which is always
        safe.
        """
        if self.proxy_config.get("version_key") == "arg0" and args:
            return args[0]
        return "*"

    # -- invocation ---------------------------------------------------------------------

    def invoke(self, verb: str, args: tuple, kwargs: dict) -> Any:
        self.proxy_stats["invocations"] += 1
        replicas = self._resolve_replicas()
        if not replicas:
            return self.proxy_remote(verb, args, kwargs)
        op = self.proxy_interface.operation(verb)
        if self._quorum_mode():
            write_quorum, read_quorum = self._quorum_params(len(replicas))
            key = self._version_key(args)
            if self._elect_mode():
                if op.readonly:
                    return self._read_elected(replicas, verb, args, kwargs,
                                              key, write_quorum, read_quorum)
                return self._write_elected(replicas, verb, args, kwargs, key,
                                           write_quorum)
            if op.readonly:
                return self._read_versioned(replicas, verb, args, kwargs,
                                            key, write_quorum, read_quorum)
            return self._write_versioned(replicas, verb, args, kwargs, key,
                                         write_quorum)
        if op.readonly:
            return self._read(replicas, verb, args, kwargs)
        return self._write(replicas, verb, args, kwargs)

    def _call(self, replica, verb: str, args: tuple, kwargs: dict) -> Any:
        """Invoke on one replica: through its proxy, or directly when the
        replica lives in this very context (home access is the object)."""
        if isinstance(replica, Proxy):
            return replica.invoke(verb, args, kwargs)
        self.proxy_context.charge(self.proxy_context.system.costs.local_call)
        return getattr(replica, verb)(*args, **kwargs)

    def _read(self, replicas: list, verb: str, args: tuple, kwargs: dict) -> Any:
        self.proxy_stats["reads"] += 1
        last_error: Exception | None = None
        for replica in self._read_order(replicas):
            try:
                return self._call(replica, verb, args, kwargs)
            except DistributionError as exc:
                self.proxy_stats["read_failovers"] += 1
                last_error = exc
        raise last_error if last_error is not None else DistributionError(
            f"no replica answered {verb!r}")

    def _write(self, replicas: list, verb: str, args: tuple, kwargs: dict) -> Any:
        self.proxy_stats["writes"] += 1
        quorum = self._quorum_params(len(replicas))[0]
        acknowledged = 0
        result: Any = None
        last_error: Exception | None = None
        app_error: BaseException | None = None
        for replica in replicas:
            try:
                outcome = self._call(replica, verb, args, kwargs)
            except RemoteError as exc:
                # An application exception of an unreconstructible type:
                # the replica executed the operation and raised.
                if app_error is None:
                    app_error = exc
                continue
            except DistributionError as exc:
                last_error = exc
                continue
            except ReproError:
                raise    # a kernel/harness problem, not a write outcome
            except Exception as exc:
                # A reconstructed application exception.  Aborting here
                # would leave the remaining replicas without the write —
                # silent divergence — so complete the fan-out first and
                # re-raise after the group has converged.
                if app_error is None:
                    app_error = exc
                continue
            if acknowledged == 0:
                result = outcome
            acknowledged += 1
        if app_error is not None:
            self.proxy_stats["app_errors"] += 1
            raise app_error
        if acknowledged < quorum:
            self.proxy_stats["write_failures"] += 1
            raise DistributionError(
                f"write {verb!r} reached {acknowledged}/{len(replicas)} "
                f"replicas, quorum is {quorum}") from last_error
        return result

    # -- versioned quorum mode ----------------------------------------------------

    def _versioned_call(self, index: int, verb: str, args: tuple,
                        kwargs: dict, headers: dict) -> dict:
        """One enveloped replica call; returns the reply wrapper.

        Remote replicas get the envelope in the frame headers; a replica
        co-located with the caller bypasses the frame layer and runs the
        same protocol step against the local export entry.
        """
        replica = self._replicas[index]
        context = self.proxy_context
        if isinstance(replica, Proxy):
            return context.system.rpc.call(context, replica.proxy_ref, verb,
                                           args, kwargs, headers=headers)
        ref = self._replica_refs[index]
        if ref is None:
            raise ConfigurationError(
                "versioned replication needs reference-addressed replicas")
        entry = context.exports.get(ref.oid)
        if entry is None or entry.revoked:
            raise DanglingReference(
                f"context {context.context_id!r} exports no object "
                f"{ref.oid!r}")
        context.charge(context.system.costs.local_call)
        return versions.serve_envelope(entry, verb, args, kwargs, headers,
                                       now=context.clock.now)

    def _control_call(self, index: int, control: list, body_args: tuple,
                      extra_headers: dict | None = None) -> dict:
        """A verb-less log-transfer/election call to one replica."""
        headers = {versions.H_CONTROL: control}
        if extra_headers:
            headers.update(extra_headers)
        return self._versioned_call(index, "", tuple(body_args), {}, headers)

    def _repair(self, target: int, source: int, key, since: int) -> int:
        """Transfer ``key``'s log suffix after ``since`` from ``source`` to
        ``target``; returns the target's resulting version (-1 on failure)."""
        try:
            pulled = self._control_call(source, ["pull", key, int(since)], ())
            pushed = self._control_call(target, ["push", key],
                                        (pulled.get(versions.K_LOG, []),))
        except DistributionError:
            self.proxy_stats["repair_failures"] += 1
            return -1
        return int(pushed.get(versions.K_VERSION, -1))

    def _write_versioned(self, replicas: list, verb: str, args: tuple,
                         kwargs: dict, key, write_quorum: int) -> Any:
        """Primary-sequenced quorum write.

        The primary executes first and assigns the version, so an
        application exception surfaces before any fan-out — the group never
        diverges on a raising write.  A replica that reports a missing
        prefix is repaired (suffix pull from the primary) and then counts;
        the write succeeds once ``write_quorum`` copies hold the version.
        """
        self.proxy_stats["writes"] += 1
        try:
            primary = self._versioned_call(0, verb, args, kwargs,
                                           {versions.H_ASSIGN: [key]})
        except RemoteError:
            self.proxy_stats["app_errors"] += 1
            raise
        except DistributionError:
            # The primary is unreachable: no version was assigned that we
            # know of (a lost reply still makes this a "maybe").
            self.proxy_stats["write_failures"] += 1
            raise
        except ReproError:
            raise
        except Exception:
            self.proxy_stats["app_errors"] += 1
            raise
        version = int(primary[versions.K_VERSION])
        acknowledged = 1
        last_error: Exception | None = None
        for index in range(1, len(replicas)):
            try:
                reply = self._versioned_call(
                    index, verb, args, kwargs,
                    {versions.H_APPLY: [key, version]})
            except DistributionError as exc:
                last_error = exc
                continue
            if int(reply[versions.K_VERSION]) >= version:
                acknowledged += 1
            elif versions.K_EXC not in reply:
                # The replica is missing a prefix: pull it from the primary,
                # which holds every assigned version of this key.
                if self._repair(index, 0, key, since=reply[
                        versions.K_VERSION]) >= version:
                    self.proxy_stats["write_repairs"] += 1
                    acknowledged += 1
            # A K_EXC reply is a diverged replica (the primary executed this
            # operation cleanly): never acknowledged, repair won't help.
        if acknowledged < write_quorum:
            self.proxy_stats["write_failures"] += 1
            raise DistributionError(
                f"write {verb!r} at version {version} of {key!r} reached "
                f"{acknowledged}/{len(replicas)} replicas, quorum is "
                f"{write_quorum}") from last_error
        return primary.get(versions.K_VALUE)

    def _read_versioned(self, replicas: list, verb: str, args: tuple,
                        kwargs: dict, key, write_quorum: int,
                        read_quorum: int) -> Any:
        """Quorum read: collect R versioned answers, newest wins.

        Before the winner is returned, its version must be **confirmed on
        at least W replicas** (read-repairing stale answerers and, if still
        short, unanswered replicas).  That promotion step is what makes a
        barely-committed — or merely *maybe*-committed — write safe to
        expose: any later R-read overlaps the confirmed set, so a value
        shown once can never disappear again.  A read that cannot promote
        its winner fails (and a failed read moves no state).
        """
        self.proxy_stats["reads"] += 1
        order = self._read_order_indices(len(replicas))
        answers: dict[int, dict] = {}
        last_error: Exception | None = None
        for index in order:
            if len(answers) >= read_quorum:
                break
            try:
                answers[index] = self._versioned_call(
                    index, verb, args, kwargs, {versions.H_READ: [key]})
            except DistributionError as exc:
                self.proxy_stats["read_failovers"] += 1
                last_error = exc
        if len(answers) < read_quorum:
            self.proxy_stats["read_failures"] += 1
            raise DistributionError(
                f"read {verb!r} of {key!r} reached {len(answers)}/"
                f"{len(replicas)} replicas, read quorum is "
                f"{read_quorum}") from last_error
        newest = max(int(reply[versions.K_VERSION])
                     for reply in answers.values())
        winner_index = next(i for i in order if i in answers and
                            int(answers[i][versions.K_VERSION]) >= newest)
        confirmed = {i for i, reply in answers.items()
                     if int(reply[versions.K_VERSION]) >= newest}
        for index, reply in answers.items():
            seen = int(reply[versions.K_VERSION])
            if seen < newest:    # read-repair the stale answerer
                if self._repair(index, winner_index, key,
                                since=seen) >= newest:
                    self.proxy_stats["read_repairs"] += 1
                    confirmed.add(index)
        if len(confirmed) < write_quorum:
            for index in order:
                if len(confirmed) >= write_quorum:
                    break
                if index in answers:
                    continue
                if self._repair(index, winner_index, key, since=0) >= newest:
                    self.proxy_stats["read_repairs"] += 1
                    confirmed.add(index)
        if len(confirmed) < write_quorum:
            self.proxy_stats["read_failures"] += 1
            raise DistributionError(
                f"read {verb!r} saw version {newest} of {key!r} on only "
                f"{len(confirmed)} replicas, write quorum is {write_quorum}")
        winner = answers[winner_index]
        failure = winner.get(versions.K_EXC)
        if failure is not None:
            raise remote_exception(failure[0], failure[1])
        return winner.get(versions.K_VALUE)

    # -- election mode ------------------------------------------------------------

    def _term_header(self, term: int | None = None,
                     leader: int | None = None) -> dict:
        """The :data:`~repro.wire.versions.H_TERM` stamp for one envelope."""
        return {versions.H_TERM: [
            self._term if term is None else int(term),
            self._leader if leader is None else int(leader)]}

    def _adopt_newer(self, reply: dict) -> None:
        """Fold a strictly newer ``(term, leader)`` advertised in a reply."""
        pair = reply.get(versions.K_TERM)
        if pair is not None and int(pair[0]) > self._term:
            self._adopt(pair[0], pair[1])

    def _repair_elected(self, target: int, source: int, key, since: int,
                        since_term: int, allow_resync: bool = True) -> int:
        """Term-aware suffix repair of ``key`` from ``source`` to ``target``.

        The pull's boundary term must match the target's last-entry term
        (equal ``(version, term)`` pairs imply equal prefixes); a mismatch
        — or a diverged push — falls back to reset + full resync.  Returns
        the target's resulting version of ``key`` (-1 on failure, -2 for a
        divergence ``allow_resync`` forbids repairing, e.g. the leader).
        """
        try:
            pulled = self._control_call(source, ["pull", key, int(since)], ())
            if int(since) > 0 and \
                    int(pulled.get(versions.K_VTERM, 0)) != int(since_term):
                return self._diverged(target, source, key, allow_resync)
            pushed = self._control_call(target, ["push", key],
                                        (pulled.get(versions.K_LOG, []),),
                                        self._term_header())
        except DistributionError:
            self.proxy_stats["repair_failures"] += 1
            return -1
        if versions.K_FENCED in pushed:
            self.proxy_stats["fencing_rejects"] += 1
            self._adopt(*pushed[versions.K_FENCED])
            return -1
        if versions.K_DIVERGED in pushed:
            return self._diverged(target, source, key, allow_resync)
        return int(pushed.get(versions.K_VERSION, -1))

    def _diverged(self, target: int, source: int, key,
                  allow_resync: bool) -> int:
        if not allow_resync:
            return -2
        synced = self._resync(target, source)
        if synced is None:
            return -1
        return int(synced.get(key, -1))

    def _resync(self, target: int, source: int) -> dict | None:
        """Divergence repair: reset ``target``, replay ``source``'s logs.

        A suffix push cannot un-apply a diverged entry (an old leader's
        uncommitted tail that a newer term overwrote), so the target's
        object is recreated and every key's full log replayed.  Returns
        the per-key versions reached, or ``None`` on failure.
        """
        reached: dict = {}
        try:
            digest = self._control_call(source, ["digest"], ())
            reset = self._control_call(target, ["reset"], (),
                                       self._term_header())
            if versions.K_FENCED in reset:
                self.proxy_stats["fencing_rejects"] += 1
                self._adopt(*reset[versions.K_FENCED])
                return None
            for key, _term, _version in digest.get(versions.K_DIGEST, []):
                pulled = self._control_call(source, ["pull", key, 0], ())
                pushed = self._control_call(target, ["push", key],
                                            (pulled.get(versions.K_LOG, []),),
                                            self._term_header())
                if versions.K_FENCED in pushed:
                    self.proxy_stats["fencing_rejects"] += 1
                    self._adopt(*pushed[versions.K_FENCED])
                    return None
                reached[key] = int(pushed.get(versions.K_VERSION, -1))
        except DistributionError:
            self.proxy_stats["repair_failures"] += 1
            return None
        self.proxy_stats["resyncs"] += 1
        return reached

    def _write_elected(self, replicas: list, verb: str, args: tuple,
                       kwargs: dict, key, write_quorum: int) -> Any:
        """Leader-sequenced quorum write with fencing and failover.

        The assign loop follows fencing redirects like the migration
        chain, renews the leader's lease when it reports expiry, and runs
        an election when the leader stops answering — so one invoke rides
        out a leader change whenever a majority is reachable.  The fan-out
        then carries the assign's ``(term, leader)``; a fenced apply never
        acknowledges, a stale one is suffix-repaired from the leader, and
        a diverged one is reset + fully resynced.  A proxy deposed *during*
        the fan-out (its assign landed at a stale leader and the applies
        came back fenced) adopts the newer term and retries the whole
        write there — the stale assign was never quorum-committed, so
        re-sequencing it under the new term is the designed outcome, and
        the old leader's orphaned tail is erased by divergence repair.
        """
        self.proxy_stats["writes"] += 1
        last_error: Exception | None = None
        assigned = acknowledged = 0
        wterm = self._term
        for _ in range(ASSIGN_ATTEMPTS):
            reply = self._assign_elected(replicas, verb, args, kwargs, key)
            assigned = int(reply[versions.K_VERSION])
            wterm = int(reply.get(versions.K_VTERM, self._term))
            leader = self._leader
            acknowledged = 1
            for index in range(len(replicas)):
                if index == leader:
                    continue
                try:
                    ack = self._versioned_call(
                        index, verb, args, kwargs,
                        {versions.H_APPLY: [key, assigned],
                         versions.H_TERM: [wterm, leader]})
                except DistributionError as exc:
                    last_error = exc
                    continue
                if versions.K_FENCED in ack:
                    self.proxy_stats["fencing_rejects"] += 1
                    self._adopt(*ack[versions.K_FENCED])
                    continue
                if versions.K_DIVERGED in ack:
                    synced = self._resync(index, leader)
                    if synced is not None and synced.get(key, -1) >= assigned:
                        self.proxy_stats["write_repairs"] += 1
                        acknowledged += 1
                    continue
                if versions.K_EXC in ack:
                    continue    # diverged execution: never acknowledged
                if int(ack[versions.K_VERSION]) >= assigned:
                    acknowledged += 1
                elif self._repair_elected(
                        index, leader, key,
                        since=int(ack[versions.K_VERSION]),
                        since_term=int(ack.get(versions.K_VTERM, 0))
                        ) >= assigned:
                    self.proxy_stats["write_repairs"] += 1
                    acknowledged += 1
            if acknowledged >= write_quorum:
                return reply.get(versions.K_VALUE)
            if self._term > wterm:
                continue    # deposed mid-fan-out: retry at the new leader
            break
        self.proxy_stats["write_failures"] += 1
        raise DistributionError(
            f"write {verb!r} at version {assigned} (term {wterm}) of "
            f"{key!r} reached {acknowledged}/{len(replicas)} replicas, "
            f"quorum is {write_quorum}") from last_error

    def _assign_elected(self, replicas: list, verb: str, args: tuple,
                        kwargs: dict, key) -> dict:
        """Leader assign: follow fencing redirects, renew an expired
        lease, and elect when the leader stops answering."""
        last_error: Exception | None = None
        for _ in range(ASSIGN_ATTEMPTS):
            try:
                reply = self._versioned_call(
                    self._leader, verb, args, kwargs,
                    {versions.H_ASSIGN: [key], **self._term_header()})
            except RemoteError:
                self.proxy_stats["app_errors"] += 1
                raise
            except DistributionError as exc:
                last_error = exc
                try:
                    self._run_election(replicas)
                except DistributionError:
                    self.proxy_stats["write_failures"] += 1
                    raise
                continue
            except ReproError:
                raise
            except Exception:
                self.proxy_stats["app_errors"] += 1
                raise
            if versions.K_FENCED in reply:
                self.proxy_stats["fencing_rejects"] += 1
                self._adopt(*reply[versions.K_FENCED])
                continue
            if versions.K_EXPIRED in reply:
                if not self._renew_lease(replicas):
                    try:
                        self._run_election(replicas)
                    except DistributionError:
                        self.proxy_stats["write_failures"] += 1
                        raise
                continue
            return reply
        self.proxy_stats["write_failures"] += 1
        raise DistributionError(
            f"write {verb!r} found no assignable leader in "
            f"{ASSIGN_ATTEMPTS} attempts") from last_error

    def _read_elected(self, replicas: list, verb: str, args: tuple,
                      kwargs: dict, key, write_quorum: int,
                      read_quorum: int) -> Any:
        """Quorum read under elections: newest ``(term, version)`` wins.

        Reads are never fenced (a replica answers during an election
        window — co-located reads keep working while writes wait), but
        replies advertise the group's leadership so the proxy adopts a
        newer term opportunistically.  Promotion works as in the static
        mode with one addition: the winner must also land in the
        **leader's** log before it is exposed, otherwise the leader's
        next assign would reuse the winner's version under a newer term
        and silently supersede a value this read already showed.  An
        unreachable leader is tolerated — the next election syncs its
        winner from a vote majority, which always intersects the
        confirmed write-quorum set.
        """
        self.proxy_stats["reads"] += 1
        order = self._read_order_indices(len(replicas))
        answers: dict[int, dict] = {}
        last_error: Exception | None = None
        for index in order:
            if len(answers) >= read_quorum:
                break
            try:
                reply = self._versioned_call(
                    index, verb, args, kwargs,
                    {versions.H_READ: [key], **self._term_header()})
            except DistributionError as exc:
                self.proxy_stats["read_failovers"] += 1
                last_error = exc
                continue
            self._adopt_newer(reply)
            answers[index] = reply
        if len(answers) < read_quorum:
            self.proxy_stats["read_failures"] += 1
            raise DistributionError(
                f"read {verb!r} of {key!r} reached {len(answers)}/"
                f"{len(replicas)} replicas, read quorum is "
                f"{read_quorum}") from last_error

        def pair_of(reply: dict) -> tuple[int, int]:
            return (int(reply.get(versions.K_VTERM, 0)),
                    int(reply[versions.K_VERSION]))

        newest = max(pair_of(reply) for reply in answers.values())
        winner_index = next(i for i in order if i in answers
                            and pair_of(answers[i]) == newest)
        confirmed = {i for i, reply in answers.items()
                     if pair_of(reply) == newest}
        for index, reply in answers.items():
            seen_term, seen = pair_of(reply)
            if (seen_term, seen) < newest:    # read-repair the stale answerer
                if self._repair_elected(index, winner_index, key, seen,
                                        seen_term) >= newest[1]:
                    self.proxy_stats["read_repairs"] += 1
                    confirmed.add(index)
        if len(confirmed) < write_quorum:
            for index in order:
                if len(confirmed) >= write_quorum:
                    break
                if index in answers:
                    continue
                if self._repair_elected(index, winner_index, key, 0,
                                        0) >= newest[1]:
                    self.proxy_stats["read_repairs"] += 1
                    confirmed.add(index)
        if len(confirmed) < write_quorum:
            self.proxy_stats["read_failures"] += 1
            raise DistributionError(
                f"read {verb!r} saw version {newest[1]} (term {newest[0]}) "
                f"of {key!r} on only {len(confirmed)} replicas, write "
                f"quorum is {write_quorum}")
        leader = self._leader
        if leader not in confirmed and leader < len(replicas):
            promoted = self._repair_elected(leader, winner_index, key, 0, 0,
                                            allow_resync=False)
            if promoted == -2:
                # The leader holds different, newer-term entries at these
                # versions: the winner is already superseded.  Fail — a
                # failed read moves no state, and the anti-entropy sweep
                # resyncs the stragglers from the leader.
                self.proxy_stats["read_failures"] += 1
                raise DistributionError(
                    f"read {verb!r} of {key!r}: winner at {newest} is "
                    f"superseded by the leader's log")
            if promoted >= newest[1]:
                self.proxy_stats["read_repairs"] += 1
                confirmed.add(leader)
        winner = answers[winner_index]
        failure = winner.get(versions.K_EXC)
        if failure is not None:
            raise remote_exception(failure[0], failure[1])
        return winner.get(versions.K_VALUE)

    def _renew_lease(self, replicas: list) -> bool:
        """One lease-renewal round: followers first, then the leader.

        The leader's own lease is extended only after a majority of the
        group (counting the leader) re-promised, so in the common path a
        leader's valid self-lease implies outstanding follower promises.
        """
        count = len(replicas)
        majority = count // 2 + 1
        leader = self._leader
        grants = 0
        for index in [i for i in range(count) if i != leader]:
            try:
                reply = self._control_call(
                    index, ["renew", self._term, leader], ())
            except DistributionError:
                continue
            if reply.get(versions.K_GRANT):
                grants += 1
            else:
                self._adopt_newer(reply)
        if grants < majority - 1:
            return False
        try:
            reply = self._control_call(
                leader, ["renew", self._term, leader], ())
        except DistributionError:
            return False
        if not reply.get(versions.K_GRANT):
            self._adopt_newer(reply)
            return False
        self.proxy_stats["lease_renewals"] += 1
        return True

    def _run_election(self, replicas: list) -> None:
        """Elect a leader (module docstring of :mod:`repro.failures.election`).

        Status-probes the group, nominates the most up-to-date reachable
        replica (ties to the lowest index — the bully rule), gathers
        votes at the next term, syncs the winner from its voters, and
        announces.  Vote refusals carry lease-expiry hints; the proxy
        waits the shortest one out (that wait *is* the bounded
        unavailability window) and retries, up to :data:`ELECTION_ROUNDS`.
        Raises :class:`DistributionError` when no majority is reachable.
        """
        count = len(replicas)
        majority = count // 2 + 1
        clock = self.proxy_context.clock
        self.proxy_stats["elections"] += 1
        last_error: Exception | None = None
        for _ in range(ELECTION_ROUNDS):
            statuses: dict[int, dict] = {}
            for index in range(count):
                try:
                    statuses[index] = self._control_call(index, ["status"],
                                                         ())
                except DistributionError as exc:
                    last_error = exc
            if len(statuses) < majority:
                raise DistributionError(
                    f"election: {len(statuses)}/{count} replicas reachable, "
                    f"majority is {majority}") from last_error
            best = max(statuses.values(),
                       key=lambda s: int(s[versions.K_TERM][0]))
            top_term = int(best[versions.K_TERM][0])
            if top_term > self._term:
                # A rival proxy already elected a newer leader: adopt it.
                self._adopt(top_term, int(best[versions.K_TERM][1]))
                return
            target = top_term + 1
            candidate = max(
                statuses,
                key=lambda i: (_digest_total(
                    statuses[i].get(versions.K_DIGEST, [])), -i))
            self.proxy_stats["terms_started"] += 1
            grants: dict[int, dict] = {}
            hints: list[float] = []
            for index in sorted(statuses):
                try:
                    reply = self._control_call(
                        index, ["vote", target, candidate], ())
                except DistributionError as exc:
                    last_error = exc
                    continue
                if reply.get(versions.K_GRANT):
                    grants[index] = reply
                    continue
                self._adopt_newer(reply)
                hint = reply.get(versions.K_EXPIRY)
                if hint is not None:
                    hints.append(float(hint))
            if len(grants) >= majority:
                try:
                    self._sync_candidate(candidate, target, grants)
                except DistributionError as exc:
                    last_error = exc
                    continue
                if self._announce(replicas, target, candidate):
                    self._term, self._leader = target, candidate
                    self.proxy_stats["elections_won"] += 1
                    return
                continue
            future = [hint for hint in hints if hint > clock.now]
            if future:
                # Wait out the shortest outstanding lease promise; this
                # wait plus the election round-trips is the write
                # unavailability the lease TTL bounds.
                self.proxy_stats["election_waits"] += 1
                clock.advance_to(min(future) + 1e-6)
        raise DistributionError(
            f"election gave up after {ELECTION_ROUNDS} rounds") \
            from last_error

    def _announce(self, replicas: list, term: int, leader: int) -> bool:
        """Announce ``(term, leader)`` group-wide; the winner must accept."""
        accepted_self = False
        for index in range(len(replicas)):
            try:
                reply = self._control_call(index,
                                           ["announce", term, leader], ())
            except DistributionError:
                continue
            if index == leader and reply.get(versions.K_GRANT):
                accepted_self = True
        return accepted_self

    def _sync_candidate(self, candidate: int, target: int,
                        grants: dict) -> None:
        """Bring the candidate up to the best entries its voters hold.

        Any vote majority intersects every write quorum, so pulling each
        key's best ``(term, version)`` suffix from the granting voters
        guarantees the new leader misses no committed entry.  A diverged
        candidate tail (an uncommitted old-term suffix) is reset and the
        whole transfer restarted from scratch — once.  Raises
        :class:`DistributionError` if the sync cannot complete; the
        election round is then abandoned (leaders are always synced).
        """
        def unpack(reply: dict) -> dict:
            return {entry[0]: (int(entry[1]), int(entry[2]))
                    for entry in reply.get(versions.K_DIGEST, [])}

        digests = {index: unpack(reply) for index, reply in grants.items()}
        if candidate in digests:
            cand = dict(digests[candidate])
        else:
            cand = unpack(self._control_call(candidate, ["digest"], ()))
        header = {versions.H_TERM: [int(target), int(candidate)]}
        keys = sorted({key for digest in digests.values() for key in digest},
                      key=repr)
        for _round in (0, 1):
            diverged = False
            for key in keys:
                best_index = max(digests, key=lambda i: (
                    digests[i].get(key, (0, 0)), -i))
                best = digests[best_index].get(key, (0, 0))
                have = cand.get(key, (0, 0))
                if have >= best:
                    continue
                since_term, since = have
                pulled = self._control_call(best_index,
                                            ["pull", key, since], ())
                if since and \
                        int(pulled.get(versions.K_VTERM, 0)) != since_term:
                    diverged = True
                    break
                pushed = self._control_call(
                    candidate, ["push", key],
                    (pulled.get(versions.K_LOG, []),), header)
                if versions.K_FENCED in pushed:
                    raise DistributionError(
                        "candidate sync fenced by a newer term")
                if versions.K_DIVERGED in pushed:
                    diverged = True
                    break
                if int(pushed.get(versions.K_VERSION, -1)) < best[1]:
                    raise DistributionError(
                        f"candidate sync of {key!r} stalled")
                cand[key] = best
            if not diverged:
                return
            reset = self._control_call(candidate, ["reset"], (), header)
            if versions.K_FENCED in reset:
                raise DistributionError(
                    "candidate sync fenced by a newer term")
            cand = {}
        raise DistributionError("candidate log diverged twice during sync")

    def proxy_anti_entropy(self) -> dict:
        """One anti-entropy sweep: push the leader's missing suffixes.

        Compares the leader's per-key digest against every other replica
        and pushes the missing suffix (reset + full resync on
        divergence), so a restarted or long-partitioned replica catches
        up without waiting for read-repair to land on it.  The sweep is
        driven periodically by whoever holds a proxy — the simtest
        driver, experiment E9, and the tests call it between operations;
        a deposed leader's sweep is fenced harmlessly.  Distribution
        errors are swallowed: a sweep is opportunistic repair, never an
        outcome.

        Returns ``{"keys": …, "entries": …, "bytes": …}`` pushed (bytes
        are the marshallable entries' repr length — a stable proxy for
        wire volume).
        """
        swept = {"keys": 0, "entries": 0, "bytes": 0}
        replicas = self._resolve_replicas()
        if not replicas or not self._quorum_mode() or not self._elect_mode():
            return swept
        self.proxy_stats["anti_entropy_runs"] += 1
        leader = self._leader
        try:
            reply = self._control_call(leader, ["digest"], ())
        except DistributionError:
            return swept
        leader_digest = {entry[0]: (int(entry[1]), int(entry[2]))
                         for entry in reply.get(versions.K_DIGEST, [])}
        if not leader_digest:
            return swept
        for index in range(len(replicas)):
            if index == leader:
                continue
            try:
                reply = self._control_call(index, ["digest"], ())
            except DistributionError:
                continue
            have = {entry[0]: (int(entry[1]), int(entry[2]))
                    for entry in reply.get(versions.K_DIGEST, [])}
            for key in sorted(leader_digest, key=repr):
                best = leader_digest[key]
                mine = have.get(key, (0, 0))
                if mine >= best:
                    continue
                since_term, since = mine
                try:
                    pulled = self._control_call(leader,
                                                ["pull", key, since], ())
                    entries = pulled.get(versions.K_LOG, [])
                    if since and int(pulled.get(versions.K_VTERM,
                                                0)) != since_term:
                        self._resync(index, leader)
                        continue
                    pushed = self._control_call(index, ["push", key],
                                                (entries,),
                                                self._term_header())
                except DistributionError:
                    self.proxy_stats["repair_failures"] += 1
                    continue
                if versions.K_FENCED in pushed:
                    # This proxy's leader was deposed mid-sweep: adopt the
                    # new term and stop — the new leader's sweeps take over.
                    self.proxy_stats["fencing_rejects"] += 1
                    self._adopt(*pushed[versions.K_FENCED])
                    return swept
                if versions.K_DIVERGED in pushed:
                    self._resync(index, leader)
                    continue
                if int(pushed.get(versions.K_VERSION, -1)) >= best[1]:
                    swept["keys"] += 1
                    swept["entries"] += len(entries)
                    swept["bytes"] += sum(len(repr(entry))
                                          for entry in entries)
        self.proxy_stats["anti_entropy_keys"] += swept["keys"]
        self.proxy_stats["anti_entropy_bytes"] += swept["bytes"]
        return swept


def _digest_total(digest: list) -> int:
    """Total logged entries in a digest (the candidacy up-to-dateness rank)."""
    return sum(int(entry[2]) for entry in digest)


def replicate(contexts: list, factory: Callable[[], object],
              interface=None, read_policy: str = "nearest",
              write_quorum: int | None = None,
              read_quorum: int | None = None,
              versioned: bool = False,
              version_key: str | None = None,
              extra_layers: list[str] | None = None,
              elect: bool = False,
              lease_ttl: float | None = None,
              policy: str = "replicated",
              extra_config: dict | None = None) -> ObjectRef:
    """Deploy a replica group and return the client-facing reference.

    One instance from ``factory`` is exported (under the plain ``stub``
    policy) in each of ``contexts``; the first context additionally exports
    the group entry under the ``replicated`` policy, whose configuration
    carries the replica references.  Clients bind the returned reference and
    receive a :class:`ReplicatedProxy`.

    ``read_quorum`` (or ``versioned=True``) switches the group to the
    versioned quorum mode (module docstring); ``version_key="arg0"``
    partitions the version log by the operations' first argument.  Quorum
    bounds are validated here as well as at call time, so a broken
    deployment fails at deploy.

    ``elect=True`` (versioned mode only) removes the fixed primary: every
    replica gets an :class:`~repro.failures.election.ElectionState` (term
    1 bootstraps on replica 0 with a ``lease_ttl``-long lease) plus a
    :class:`~repro.failures.detector.FailureDetector` watching its peers,
    and proxies run the election protocol of the module docstring when
    the leader stops answering.

    ``extra_layers`` stacks additional policies *in front of* replication
    (outermost first), e.g. ``["caching"]`` for a cached replica group; the
    group is then exported under the ``composite`` policy.  ``policy``
    overrides the group's registered policy name (the simtest canaries
    deploy buggy :class:`ReplicatedProxy` subclasses this way).
    ``extra_config`` merges additional keys into the group configuration —
    policy subclasses (e.g. ``regional``, which needs the replicas'
    region labels) receive them through ``proxy_config``.
    """
    from ...iface.adapters import make_delegate
    from ...iface.interface import Interface
    from ..export import get_space
    if not contexts:
        raise ValueError("replicate() needs at least one context")
    count = len(contexts)
    for label, quorum in (("write_quorum", write_quorum),
                          ("read_quorum", read_quorum)):
        if quorum is not None and not 1 <= int(quorum) <= count:
            raise ConfigurationError(
                f"{label}={quorum} outside 1..{count} for a "
                f"{count}-replica group")
    replica_refs = []
    first_obj = None
    for ctx in contexts:
        obj = factory()
        if first_obj is None:
            first_obj = obj
            if interface is None:
                interface = Interface.of(type(obj))
        replica_refs.append(get_space(ctx).export(obj, interface=interface,
                                                  policy="stub"))
    config: dict = {"replicas": replica_refs, "read_policy": read_policy}
    if write_quorum is not None:
        config["write_quorum"] = int(write_quorum)
    if read_quorum is not None:
        config["read_quorum"] = int(read_quorum)
    if versioned:
        config["versioned"] = True
    if version_key is not None:
        config["version_key"] = version_key
    if elect:
        if not (versioned or read_quorum is not None):
            raise ConfigurationError(
                "elect=True requires the versioned quorum mode "
                "(pass read_quorum or versioned=True)")
        config["elect"] = True
    if extra_config:
        config.update(extra_config)
    if extra_layers:
        config["layers"] = list(extra_layers) + [policy]
        policy = "composite"
    # The group entry is a distinct delegate object (not the primary itself),
    # so the primary's identity keeps exactly one export and the group
    # reference carries the replicated policy.  The delegate answers clients
    # that call the group entry directly (e.g. before resolving replicas).
    coordinator = make_delegate(first_obj, interface)
    primary_space = get_space(contexts[0])
    group_ref = primary_space.export(coordinator, interface=interface,
                                     policy=policy, config=config)
    # Server-side layer components (e.g. the caching layer's invalidation
    # hook) install on the *group* entry, but writes are dispatched to the
    # replica stub entries directly — mirror the hook list onto every
    # replica so mutations observed at any copy fire the same machinery.
    # The list object is shared, so later installs propagate too; hooks are
    # idempotent per write, so the per-replica duplication is harmless.
    group_entry = primary_space.entry(group_ref.oid)
    if group_entry.mutation_hooks:
        for ctx, ref in zip(contexts, replica_refs):
            get_space(ctx).entry(ref.oid).mutation_hooks = \
                group_entry.mutation_hooks
    if elect:
        # Arm every replica stub entry with its election state (term
        # fencing switches on at the dispatcher the moment the entry
        # carries one) and a failure detector watching its peers, so a
        # suspected leader unlocks votes before the lease runs out.
        from ...failures.detector import FailureDetector
        from ...failures.election import DEFAULT_LEASE_TTL, ElectionState
        ttl = DEFAULT_LEASE_TTL if lease_ttl is None else float(lease_ttl)
        context_ids = [ctx.context_id for ctx in contexts]
        for index, (ctx, ref) in enumerate(zip(contexts, replica_refs)):
            detector = FailureDetector(ctx)
            for peer in context_ids:
                if peer != ctx.context_id:
                    detector.watch(peer)
            get_space(ctx).entry(ref.oid).election = ElectionState(
                index, context_ids, ttl=ttl, detector=detector)
    return group_ref
