"""The ``stub`` policy: transparent forwarding.

This is the degenerate proxy — behaviourally identical to 1984-style RPC
stub code, and the baseline every smarter policy is measured against (E1,
E5).  Its existence demonstrates that the proxy mechanism strictly
generalises stubs: the service that wants plain RPC simply ships this
factory.
"""

from __future__ import annotations

from ..factory import register_policy
from ..proxy import Proxy


@register_policy
class ForwardingProxy(Proxy):
    """Forward every operation to the current binding; nothing else.

    Inherits the base :meth:`Proxy.invoke` (remote call with migration
    rebinding), so the class body is intentionally empty — the base class
    *is* the stub policy.
    """

    policy_name = "stub"
