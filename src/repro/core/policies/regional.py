"""The ``regional`` policy: geo-aware reads over a replica group.

A :class:`RegionalProxy` is a :class:`~repro.core.policies.replicating.
ReplicatedProxy` whose read ordering knows about *regions*
(``node.region``, stamped by :func:`repro.kernel.topology.build_regions`):

* **reads** prefer replicas in the caller's own region — same-region
  replicas rank ahead of cross-region ones, with open circuit breakers
  demoted (a replica the breaker registry currently refuses to dial is
  not "admitted", however near), ties broken by measured transit time and
  then replica index for determinism;
* **writes** are untouched: they run the inherited replicated machinery,
  and because the deployment helper puts the *home region's* replica
  first, primary-sequenced writes land home — the caller pays the WAN
  price exactly when it mutates, never when it reads locally.

The caller stays oblivious (the paper's point): the same client code binds
a ``stub``, a ``replicated``, or a ``regional`` reference and only the
latencies differ.  Quorum settings are orthogonal — a W=2/R=2 versioned
regional group is linearizable and merely *prefers* the near replica for
first contact, while a legacy read-one regional group trades staleness
for fully local reads (E21 measures both sides of that trade).
"""

from __future__ import annotations

from ..factory import register_policy
from ..proxy import Proxy
from .replicating import ReplicatedProxy


@register_policy
class RegionalProxy(ReplicatedProxy):
    """Replicated proxy with region-aware, breaker-admitted read ordering."""

    policy_name = "regional"

    def _read_order_indices(self, count: int) -> list[int]:
        if self.proxy_config.get("read_policy", "regional") != "regional":
            return super()._read_order_indices(count)
        self._resolve_replicas()
        regions = self.proxy_config.get("regions") or []
        context = self.proxy_context
        my_region = context.node.region
        network = context.system.network
        my_node = context.node.name
        registry = getattr(context.system, "breakers", None)
        now = context.clock.now

        def rank(index: int) -> tuple:
            replica = self._replicas[index]
            if not isinstance(replica, Proxy):
                return (0, 0, 0.0, index)  # co-located: nearest possible
            region = regions[index] if index < len(regions) else ""
            foreign = 0 if (region and region == my_region) else 1
            ref = replica.proxy_ref
            refused = 0
            if registry is not None:
                breaker = registry.between(context.context_id,
                                           ref.context_id)
                refused = 0 if breaker.would_allow(now) else 1
            transit = network.transit_time(my_node, ref.node_name, 64)
            return (refused, foreign, transit, index)

        return sorted(range(count), key=rank)
