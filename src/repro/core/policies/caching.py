"""The ``caching`` policy: a proxy that remembers recent results.

The paper's first example of proxy intelligence ("a proxy for a remote file
object may cache recently accessed data to speed up access").  Both halves
of the protocol live in this module — that is the encapsulation point: the
*service* ships the client-side cache **and** installs the server-side
invalidation machinery; clients just call operations.

Client side (:class:`CachingProxy`):

* results of ``readonly`` operations are cached under ``(verb, *args)``;
* hits cost one local call instead of a round trip;
* entries expire after a virtual-time TTL (TTL mode) and/or on invalidation
  messages from the server (invalidation mode);
* the proxy's own writes invalidate affected entries immediately, using the
  operation's ``invalidates`` metadata (conservatively: a mutating operation
  with no metadata flushes the whole cache).

Server side (installed by :meth:`CachingProxy.on_export`):

* a :class:`CacheControl` side-object where client caches register a
  callback;
* a :class:`CacheCoherence` component hooked into the dispatcher that, after
  every successful mutating operation, broadcasts the invalidated values to
  all registered caches as one-way messages.
"""

from __future__ import annotations

from typing import Any

from ...iface.interface import Operation, operation
from ...kernel.errors import DistributionError
from ...wire.refs import ObjectRef
from ..factory import register_policy
from ..proxy import Proxy

#: Default TTL (virtual seconds) when invalidation is not available.
DEFAULT_TTL = 0.05


def invalidated_values(op: Operation, args: tuple, kwargs: dict) -> list:
    """Values a mutating operation invalidates, from its metadata.

    ``op.invalidates`` names parameters whose *values* identify the affected
    entries; ``"*"`` (or no metadata at all) means "everything".
    """
    if not op.invalidates or "*" in op.invalidates:
        return ["*"]
    values = []
    for param in op.invalidates:
        if param in kwargs:
            values.append(kwargs[param])
        elif param in op.params:
            index = op.params.index(param)
            if index < len(args):
                values.append(args[index])
    return values or ["*"]


@register_policy
class CachingProxy(Proxy):
    """Read-through cache in front of a remote object."""

    policy_name = "caching"

    def __init__(self, context, ref, interface, config=None):
        super().__init__(context, ref, interface, config)
        self._cache: dict[tuple, tuple[Any, float]] = {}
        self._callback_obj: "CacheCallback | None" = None
        self._control = None
        self.proxy_stats.update(hits=0, misses=0, invalidations=0, writes=0)

    # -- lifecycle -------------------------------------------------------------

    def proxy_install(self) -> None:
        """Register with the server-side invalidation control, if shipped."""
        control = self.proxy_config.get("control")
        if control is None or self._control is not None:
            return
        if isinstance(control, ObjectRef):
            control = self.proxy_context.space.bind_ref(control, handshake=False)
        self._callback_obj = CacheCallback(self)
        self.proxy_context.space.export(self._callback_obj)
        try:
            control.register(self._callback_obj)
        except DistributionError:
            self.proxy_context.space.unexport(self._callback_obj)
            self._callback_obj = None
            return
        self._control = control

    def proxy_discard(self) -> None:
        """Unregister from the server and drop the callback export."""
        if self._control is not None and self._callback_obj is not None:
            try:
                self._control.unregister(self._callback_obj)
            except DistributionError:
                pass
            self.proxy_context.space.unexport(self._callback_obj)
        self._cache.clear()
        self._control = None
        self._callback_obj = None

    # -- invocation ----------------------------------------------------------------

    def invoke(self, verb: str, args: tuple, kwargs: dict) -> Any:
        self.proxy_stats["invocations"] += 1
        op = self.proxy_interface.operation(verb)
        if op.readonly and not kwargs:
            return self._read(verb, args, kwargs)
        if not op.readonly:
            self.proxy_stats["writes"] += 1
            result = self.proxy_remote(verb, args, kwargs)
            self.cache_invalidate(invalidated_values(op, args, kwargs))
            return result
        return self.proxy_remote(verb, args, kwargs)

    def _read(self, verb: str, args: tuple, kwargs: dict) -> Any:
        key = (verb,) + args
        ttl = self._effective_ttl()
        now = self.proxy_context.clock.now
        cached = self._cache.get(key)
        if cached is not None:
            value, stored_at = cached
            if ttl is None or now - stored_at <= ttl:
                self.proxy_stats["hits"] += 1
                self.proxy_context.charge(self.proxy_context.system.costs.local_call)
                return value
            del self._cache[key]
        self.proxy_stats["misses"] += 1
        value = self.proxy_remote(verb, args, kwargs)
        self._cache[key] = (value, self.proxy_context.clock.now)
        return value

    def _effective_ttl(self) -> float | None:
        ttl = self.proxy_config.get("ttl", "default")
        if ttl == "default":
            return None if self._control is not None else DEFAULT_TTL
        return ttl

    # -- invalidation ------------------------------------------------------------------

    def cache_invalidate(self, values: list) -> int:
        """Drop entries touched by the given values (``["*"]`` = flush all).

        An entry is touched when any invalidated value appears among the
        cached call's arguments.  Returns the number of entries dropped.
        """
        if "*" in values:
            dropped = len(self._cache)
            self._cache.clear()
        else:
            victims = [key for key in self._cache
                       if any(value in key[1:] for value in values)]
            for key in victims:
                del self._cache[key]
            dropped = len(victims)
        self.proxy_stats["invalidations"] += dropped
        return dropped

    @property
    def proxy_cache_size(self) -> int:
        """Number of live cached entries."""
        return len(self._cache)

    # -- server-side installation ----------------------------------------------------------

    @classmethod
    def on_export(cls, space, entry) -> None:
        """Install the invalidation control next to the exported object."""
        if not entry.policy_config.get("invalidation", True):
            return
        control = CacheControl()
        control_ref = space.export(control)
        entry.policy_config["control"] = control_ref
        entry.mutation_hooks.append(CacheCoherence(control, entry.interface))


class CacheCallback:
    """Client-side invalidation sink, exported next to each caching proxy."""

    def __init__(self, proxy: CachingProxy):
        self._proxy = proxy

    @operation(oneway=True)
    def invalidate(self, values: list) -> None:
        """Drop cache entries for the given values (server push)."""
        self._proxy.cache_invalidate(values)


class CacheControl:
    """Server-side registry of client caches for one exported object."""

    def __init__(self):
        self._callbacks: dict[str, Any] = {}

    @staticmethod
    def _key_of(callback) -> str:
        ref = getattr(callback, "proxy_ref", None)
        return ref.key if ref is not None else f"local:{id(callback)}"

    @operation
    def register(self, callback) -> int:
        """Enrol a client cache; returns the subscriber count."""
        self._callbacks[self._key_of(callback)] = callback
        return len(self._callbacks)

    @operation
    def unregister(self, callback) -> int:
        """Withdraw a client cache; returns the remaining subscriber count."""
        self._callbacks.pop(self._key_of(callback), None)
        return len(self._callbacks)

    @property
    def subscribers(self) -> int:
        """Number of registered client caches."""
        return len(self._callbacks)

    def broadcast(self, values: list) -> None:
        """Push an invalidation to every registered cache (one-way)."""
        for callback in list(self._callbacks.values()):
            try:
                callback.invalidate(values)
            except DistributionError:
                continue


class CacheCoherence:
    """Dispatcher hook: broadcast invalidations after mutating operations."""

    def __init__(self, control: CacheControl, interface):
        self._control = control
        self._interface = interface

    def after(self, verb: str, args: tuple, kwargs: dict) -> None:
        """Called by the dispatcher after each successful mutating op."""
        op = self._interface.operation(verb)
        self._control.broadcast(invalidated_values(op, args, kwargs))
