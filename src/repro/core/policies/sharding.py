"""The ``sharded`` policy: a proxy that routes each call by key.

The service's data spans N shard objects in N contexts; the proxy the
service ships holds a **consistent-hash ring** (:mod:`repro.wire.shards`)
and routes every operation to the owning shard — the client calls the
same interface it always did and never learns the service is partitioned.
That is the paper's thesis at its most productive: the distribution
structure (how many shards, where they live, how keys map to them) is
entirely behind the proxy.

**Routing.**  The shard key is the operation's argument at the
configurable ``shard_key`` index (default 0 — right for keyed services
like KV and locks, the same convention as the replicated policy's
``version_key``); ``shard_key=None`` routes the whole object as one unit.
The key hashes onto the ring (:func:`~repro.wire.shards.stable_hash` —
seeded ``hash()`` would break determinism) and a bisect finds the owner.

**Degenerate ring.**  A single-shard deployment at the bootstrap epoch
sends *plain* calls — byte-identical to a ``stub`` proxy bound to the
shard directly.  Multi-shard (or post-rebalance) traffic carries the ring
epoch in the frame headers, so a mis-routed call is **fenced** with a
redirect carrying the whole current map, which the proxy adopts and
retries — mirroring both the migration forwarding chain and PR 6's
``K_FENCED`` term fencing.  A plain call reaching a rebalanced shard gets
the same treatment via the ``StaleShardRing`` exception.

**Rebalancing** (:meth:`ShardedProxy.proxy_rebalance`) moves one ring
arc per sweep: the current epoch picks a ring point deterministically,
and a ``handoff`` control at the departing owner extracts the arc's
keys, installs them at the new owner *first*, then commits the epoch
bump (see :mod:`repro.wire.shards` for the safety argument).
:meth:`ShardedProxy.proxy_split` moves half a hot shard's arcs to a
designated target — the E19 hot-shard scenario — and
:meth:`ShardedProxy.proxy_move_shard` relocates a whole shard *object*
to another context through :mod:`repro.migration`'s mover, then commits
a map naming the new home.

**Composition.**  ``resilient``-over-``sharded`` stacks through the
composite policy (``extra_layers=["resilient"]``), and a shard may
itself be a ``replicate(...)`` group (pass a list of contexts in the
``contexts`` slot): the proxy then routes to the group's replicated
sub-proxy instead of a stub entry.  Replicated shards keep a static ring
(arc handoff needs direct fragment access, which a group encapsulates) —
scale-out with per-shard redundancy, rebalance within the stub tier.

Deployment helper: :func:`shard` builds the partitioned group and
returns the client-facing reference.
"""

from __future__ import annotations

from typing import Any, Callable

from ...kernel.errors import (
    ConfigurationError,
    DanglingReference,
    DistributionError,
    ObjectMoved,
    StaleShardRing,
)
from ...wire import shards
from ...wire.refs import ObjectRef
from ..factory import register_policy
from ..proxy import Proxy

#: Re-route bound per call (fence redirects, migration forwards).
ROUTE_ATTEMPTS = 4


@register_policy
class ShardedProxy(Proxy):
    """Route each operation to the shard owning its key."""

    policy_name = "sharded"

    def __init__(self, context, ref, interface, config=None):
        super().__init__(context, ref, interface, config)
        self._state: shards.ShardState | None = None
        self._subs: dict[str, Any] = {}
        self.proxy_stats.update(shard_routes=0, shard_local=0,
                                shard_redirects=0, shard_heals=0,
                                rebalances=0, splits=0,
                                shard_moves=0, handoff_failures=0,
                                map_syncs=0)
        if self.proxy_config.get("shards") is not None:
            # Broken deployments fail at construction, not first call.
            self._shard_params()

    # -- configuration ------------------------------------------------------------

    def _shard_params(self) -> tuple[int, list, list]:
        """Validated ``(epoch, ring, shard_specs)`` from the configuration.

        A zero-shard map, a non-positive epoch, a negative ``shard_key``
        index, a duplicate ring point, or a ring owner outside the shard
        range is a configuration error, not a distribution outcome.
        """
        config = self.proxy_config
        specs = config.get("shards") or []
        if not specs:
            raise ConfigurationError("sharded policy configured with no "
                                     "shards")
        ring = config.get("ring")
        if ring is None:
            ring = shards.default_ring(len(specs),
                                       int(config.get("vnodes",
                                                      shards.DEFAULT_VNODES)))
        else:
            ring = shards.validate_ring(ring, len(specs))
        epoch = int(config.get("ring_epoch", 1))
        if epoch < 1:
            raise ConfigurationError(f"ring_epoch {epoch} must be >= 1")
        key_index = config.get("shard_key", 0)
        if key_index is not None and int(key_index) < 0:
            raise ConfigurationError(
                f"shard_key index {key_index} is negative")
        return epoch, ring, [list(spec) for spec in specs]

    def _shard_state(self) -> shards.ShardState | None:
        """The routing state, resolved lazily.

        Falls back to the installation handshake when the configuration
        arrived without the shard map (reference passed by value), and to
        plain forwarding when even that yields nothing.  An absent map is
        not memoised — it may simply not have been delivered yet.
        """
        if self._state is not None:
            return self._state
        raw = self.proxy_config.get("shards")
        if raw is None and not self.proxy_handshaken:
            self.proxy_context.space.upgrade(self)
            raw = self.proxy_config.get("shards")
        if raw is None:
            return None
        epoch, ring, specs = self._shard_params()
        self._state = shards.ShardState(-1, epoch, ring, specs)
        return self._state

    def _shard_key(self, args: tuple) -> Any:
        """The shard key of one operation.

        ``shard_key`` names the argument index that carries it (like the
        replicated policy's ``version_key``); ``None`` — or an operation
        without that argument (``size()``, ``stats()``) — routes as the
        whole object.
        """
        index = self.proxy_config.get("shard_key", 0)
        if index is None:
            return shards.WHOLE_OBJECT
        index = int(index)
        if len(args) > index:
            return args[index]
        return shards.WHOLE_OBJECT

    # -- canary override points (see simtest's staleshard) ------------------------

    def _routing_state(self, state: shards.ShardState) -> shards.ShardState:
        """The state used for owner lookups (canaries freeze this)."""
        return state

    def _route_epoch(self, route: shards.ShardState) -> int:
        """The epoch stamped on envelopes (canaries spoof this)."""
        return route.epoch

    def _adopt_map(self, ring_map: list) -> bool:
        """Fold a fence redirect's (or sync's) newer map into the state."""
        state = self._shard_state()
        if state is None:
            return False
        return state.adopt(*ring_map)

    # -- invocation ---------------------------------------------------------------

    def invoke(self, verb: str, args: tuple, kwargs: dict) -> Any:
        self.proxy_stats["invocations"] += 1
        state = self._shard_state()
        if state is None:
            return self.proxy_remote(verb, args, kwargs)
        op = self.proxy_interface.operation(verb)
        h = shards.stable_hash(self._shard_key(args))
        for _ in range(ROUTE_ATTEMPTS):
            route = self._routing_state(state)
            index = route.owner_of(h)
            spec = route.shards[index]
            enveloped = spec[4] == "stub" and (len(route.shards) > 1
                                               or route.epoch > 1)
            try:
                if not enveloped:
                    result = self._plain_call(spec, verb, args, kwargs)
                else:
                    reply = self._enveloped_call(
                        spec, verb, args, kwargs,
                        {shards.H_EPOCH: [self._route_epoch(route)],
                         shards.H_KEY: h},
                        readonly=op.readonly)
                    if shards.K_FENCED in reply:
                        self.proxy_stats["shard_redirects"] += 1
                        self._adopt_map(reply[shards.K_FENCED])
                        continue
                    if shards.K_MAP in reply:
                        # Served despite a stale ring (the key had not
                        # moved): the shard healed us in-band.
                        self.proxy_stats["shard_heals"] += 1
                        self._adopt_map(reply[shards.K_MAP])
                    result = reply[shards.K_VALUE]
            except StaleShardRing as exc:
                # A plain call outran a rebalance: adopt the map the
                # redirect carries and re-route (now enveloped).
                self.proxy_stats["shard_redirects"] += 1
                if exc.ring_map is not None:
                    self._adopt_map(exc.ring_map)
                else:
                    self._sync_map(state)
                continue
            except ObjectMoved as exc:
                if exc.forward is None:
                    raise
                self._note_forward(route, index, exc.forward)
                continue
            self.proxy_stats["shard_routes"] += 1
            return result
        raise DistributionError(
            f"sharded call {verb!r} exhausted {ROUTE_ATTEMPTS} routing "
            f"attempts (ring epoch {state.epoch})")

    def _note_forward(self, route: shards.ShardState, index: int,
                      forward: ObjectRef) -> None:
        """A shard object migrated mid-call: rebind that slot and retry."""
        self.proxy_stats["rebinds"] += 1
        old = route.shards[index]
        self._subs.pop(old[1], None)
        route.shards[index] = [forward.context_id, forward.oid,
                               forward.interface, forward.epoch,
                               forward.policy]

    def _sub(self, spec: list):
        """The bound sub-proxy for one shard (raw object when co-located)."""
        sub = self._subs.get(spec[1])
        if sub is None:
            ref = ObjectRef(spec[0], spec[1], spec[2], spec[3], spec[4])
            sub = self.proxy_context.space.bind_ref(ref, handshake=False)
            self._subs[spec[1]] = sub
        return sub

    def _plain_call(self, spec: list, verb: str, args: tuple,
                    kwargs: dict) -> Any:
        """Un-enveloped invocation: single-shard fast path (byte-identical
        to a stub client) and non-stub shard policies (replicated groups)."""
        sub = self._sub(spec)
        if isinstance(sub, Proxy):
            return sub.invoke(verb, args, kwargs)
        self.proxy_stats["shard_local"] += 1
        context = self.proxy_context
        context.charge(context.system.costs.local_call)
        return getattr(sub, verb)(*args, **kwargs)

    def _enveloped_call(self, spec: list, verb: str, args: tuple,
                        kwargs: dict, headers: dict,
                        readonly: bool = False) -> dict:
        """One enveloped shard call; returns the reply wrapper.

        Remote shards get the envelope in the frame headers; a shard
        co-located with the caller bypasses the frame layer and runs the
        same protocol step against the local export entry.
        """
        context = self.proxy_context
        if spec[0] != context.context_id:
            ref = ObjectRef(spec[0], spec[1], spec[2], spec[3], spec[4])
            return self.proxy_protocol.call(context, ref, verb, args,
                                            kwargs, headers=headers)
        entry = context.exports.get(spec[1])
        if entry is None or entry.revoked:
            raise DanglingReference(
                f"context {context.context_id!r} exports no object "
                f"{spec[1]!r}")
        if entry.moved_to is not None:
            fwd = entry.moved_to
            raise ObjectMoved(
                f"object {spec[1]!r} migrated to {fwd.context_id!r}",
                forward=fwd)
        self.proxy_stats["shard_local"] += 1
        context.charge(context.system.costs.local_call)
        from ...rpc.dispatcher import ensure_dispatcher
        dispatcher = ensure_dispatcher(context, self.proxy_protocol.transport)
        return shards.serve_envelope(entry, verb, args, kwargs, headers,
                                     readonly=readonly,
                                     call_shard=dispatcher._shard_call)

    def _control_call(self, spec: list, control: list,
                      body_args: tuple = ()) -> dict:
        """A verb-less ring-control call to one shard (or the group)."""
        return self._enveloped_call(spec, "", tuple(body_args), {},
                                    {shards.H_CONTROL: control})

    # -- ring maintenance ---------------------------------------------------------

    def _group_spec(self) -> list:
        ref = self.proxy_ref
        return [ref.context_id, ref.oid, ref.interface, ref.epoch,
                ref.policy]

    def _sync_targets(self, state: shards.ShardState) -> list:
        """Every map holder: the stub shards plus the group entry."""
        targets = [spec for spec in state.shards if spec[4] == "stub"]
        group = self._group_spec()
        if all(spec[1] != group[1] for spec in targets):
            targets.append(group)
        return targets

    def _sync_map(self, state: shards.ShardState) -> list:
        """Map-sync anti-entropy: poll every holder, push the newest map.

        Heals shards that missed a handoff's best-effort commit (so no
        source can get stuck fencing handoffs against an old epoch) and
        keeps the group entry's bootstrap configuration current.  Failures
        are swallowed — a sweep is opportunistic repair, never an outcome.
        """
        self.proxy_stats["map_syncs"] += 1
        best = state.map()
        behind: list[list] = []
        for spec in self._sync_targets(state):
            try:
                reply = self._control_call(spec, ["map"])
            except DistributionError:
                continue
            seen = reply.get(shards.K_MAP)
            if seen is None:
                continue
            if seen[0] > best[0]:
                best = seen
            elif seen[0] < best[0]:
                behind.append(spec)
        if best[0] > state.epoch:
            self._adopt_map(best)
            # Everyone polled before the newer map surfaced may be behind.
            behind = [spec for spec in self._sync_targets(state)]
        for spec in behind:
            try:
                self._control_call(spec, ["commit"], (best,))
            except DistributionError:
                continue
        return state.map()

    def proxy_shard_map(self, sync: bool = True) -> list:
        """The current ``[epoch, ring, shards]`` map.

        ``sync`` runs the anti-entropy sweep first (one control round trip
        per holder); pass ``False`` to read the proxy's own view — right
        when the caller knows the ring is current (e.g. before the first
        rebalance) and the sweep's serial round trips would cost more than
        the staleness risk.
        """
        state = self._shard_state()
        if state is None:
            raise ConfigurationError("proxy has no shard map to sync")
        if sync:
            return self._sync_map(state)
        return state.map()

    def proxy_rebalance(self) -> list | None:
        """One rebalance sweep: move one deterministically chosen arc.

        The epoch picks the ring point (``epoch % len(ring)``) and the
        arc moves from its current owner to the next shard around — a
        rotation that exercises every arc over successive sweeps.  The
        handoff runs at the source; a fence or an unreachable source makes
        the sweep a no-op (it is opportunistic, like anti-entropy).
        Returns the resulting map, or ``None`` on an unsharded proxy.
        """
        state = self._shard_state()
        if state is None:
            return None
        if len(state.shards) < 2:
            return state.map()    # nowhere to move to
        self._sync_map(state)
        point = state.epoch % len(state.ring)
        source = int(state.ring[point][1])
        target = (source + 1) % len(state.shards)
        if state.shards[source][4] != "stub" \
                or state.shards[target][4] != "stub":
            return state.map()    # replicated shards keep a static ring
        try:
            reply = self._control_call(
                state.shards[source],
                ["handoff", point, target, state.epoch])
        except DistributionError:
            self.proxy_stats["handoff_failures"] += 1
            return state.map()
        if shards.K_FENCED in reply:
            self._adopt_map(reply[shards.K_FENCED])
            return state.map()
        self._adopt_map(reply[shards.K_MAP])
        self.proxy_stats["rebalances"] += 1
        return state.map()

    def proxy_split(self, source: int, target: int,
                    sync: bool = True) -> int:
        """Split a hot shard: move every other of its arcs to ``target``.

        The E19 scenario — a Zipf head concentrates on one shard, and the
        operator (or an autoscaler) splits its load in half.  Returns the
        number of arcs moved; failures skip the arc (the next sweep can
        retry).  ``sync=False`` skips the pre-split anti-entropy sweep —
        the handoffs themselves are still epoch-fenced, so a stale view
        costs a fenced no-op arc at worst, while the sweep's serial round
        trips run the caller's clock ahead of the traffic it is splitting
        around.
        """
        state = self._shard_state()
        if state is None:
            raise ConfigurationError("proxy has no shard map to split")
        if not (0 <= source < len(state.shards)
                and 0 <= target < len(state.shards)):
            raise ConfigurationError(
                f"split {source}->{target} outside "
                f"0..{len(state.shards) - 1}")
        if sync:
            self._sync_map(state)
        points = [i for i, entry in enumerate(state.ring)
                  if int(entry[1]) == source]
        moved = 0
        for j, point in enumerate(points):
            if j % 2 == 0:
                continue    # keep half the arcs at the source
            try:
                reply = self._control_call(
                    state.shards[source],
                    ["handoff", point, target, state.epoch])
            except DistributionError:
                self.proxy_stats["handoff_failures"] += 1
                continue
            if shards.K_FENCED in reply:
                self._adopt_map(reply[shards.K_FENCED])
                continue
            self._adopt_map(reply[shards.K_MAP])
            moved += 1
        if moved:
            self.proxy_stats["splits"] += 1
        return moved

    def proxy_move_shard(self, index: int, dst_context_id: str) -> ObjectRef:
        """Relocate one shard *object* to another context.

        Rebalancing moves arcs between existing shards; this moves the
        shard itself (capacity change, node drain) by reusing
        :mod:`repro.migration`'s mover, then commits a map naming the new
        home — epoch-bumped, so stale routes fence into it.  Calls racing
        the move follow the migration forwarding chain meanwhile.
        """
        from ...migration.mover import migrate
        state = self._shard_state()
        if state is None:
            raise ConfigurationError("proxy has no shard map to move")
        if not 0 <= index < len(state.shards):
            raise ConfigurationError(
                f"shard {index} outside 0..{len(state.shards) - 1}")
        spec = state.shards[index]
        if spec[4] != "stub":
            raise ConfigurationError(
                "only stub shards are movable; a replicated shard migrates "
                "through its own group machinery")
        ref = ObjectRef(spec[0], spec[1], spec[2], spec[3], spec[4])
        new_ref = migrate(self.proxy_context, ref, dst_context_id)
        if new_ref is None:
            raise DistributionError(
                f"shard {index} could not be migrated to "
                f"{dst_context_id!r}")
        self._subs.pop(spec[1], None)
        new_map = state.map()
        new_map[0] = state.epoch + 1
        new_map[2][index] = [new_ref.context_id, new_ref.oid,
                             new_ref.interface, new_ref.epoch,
                             new_ref.policy]
        self._adopt_map(new_map)
        # The freshly migrated entry has no shard state yet: its commit
        # installs one (index inferred from the map); then fan the map out.
        for target in self._sync_targets(state):
            try:
                self._control_call(target, ["commit"], (new_map,))
            except DistributionError:
                continue
        self.proxy_stats["shard_moves"] += 1
        return new_ref

    def proxy_publish(self, registry, name: str) -> None:
        """(Re-)publish the ring through a naming service.

        ``registry`` is a bound :class:`~repro.naming.service.NameService`
        proxy (or the object): ``name`` maps to the group reference and
        ``name + ".ring"`` to the current map, so late joiners bootstrap
        from the directory instead of redirecting their way to the truth.
        """
        state = self._shard_state()
        if state is None:
            raise ConfigurationError("proxy has no shard map to publish")
        self._sync_map(state)
        registry.unregister(name)
        registry.register(name, self.proxy_ref)
        registry.unregister(f"{name}.ring")
        registry.register(f"{name}.ring", state.map())


def shard(contexts: list, factory: Callable[[], object], interface=None,
          shard_key: int | None = 0, vnodes: int = shards.DEFAULT_VNODES,
          ring: list | None = None, ring_epoch: int = 1,
          extra_layers: list[str] | None = None,
          replicate_with: dict | None = None,
          policy: str = "sharded", registry=None,
          name: str | None = None) -> ObjectRef:
    """Deploy a sharded group and return the client-facing reference.

    One instance from ``factory`` is exported (under the plain ``stub``
    policy) in each of ``contexts``; the first context additionally
    exports the group entry under the ``sharded`` policy, whose
    configuration carries the shard map and ring.  Clients bind the
    returned reference and receive a :class:`ShardedProxy` — zero client
    change, per the paper.

    A ``contexts`` item that is itself a list deploys that shard as a
    ``replicate(...)`` group over those contexts (``replicate_with``
    supplies the replication kwargs) — sharding for scale, replication
    for durability, composed.  ``extra_layers`` stacks policies in front
    (e.g. ``["resilient"]``); ``policy`` overrides the registered policy
    name (the simtest canary deploys a broken subclass this way).
    ``registry``/``name`` publish the group and its ring through
    :mod:`repro.naming`.

    Configuration is validated here as well as at proxy construction, so
    a broken deployment fails at deploy: no contexts, a bad ring
    (duplicate points, out-of-range owners), a non-positive epoch or
    vnode count, or a negative ``shard_key`` all raise
    :class:`ConfigurationError`.
    """
    from ...iface.adapters import make_delegate
    from ...iface.interface import Interface
    from ...migration.mover import ensure_mover
    from ..export import get_space
    from .replicating import replicate
    if not contexts:
        raise ConfigurationError("shard() needs at least one context")
    count = len(contexts)
    if ring is not None:
        ring = shards.validate_ring(ring, count)
    else:
        ring = shards.default_ring(count, int(vnodes))
    if int(ring_epoch) < 1:
        raise ConfigurationError(f"ring_epoch {ring_epoch} must be >= 1")
    if shard_key is not None and int(shard_key) < 0:
        raise ConfigurationError(f"shard_key index {shard_key} is negative")
    specs: list[list] = []
    stub_entries: list[tuple[int, object, str]] = []  # (index, space, oid)
    first_obj = None
    for index, item in enumerate(contexts):
        if isinstance(item, (list, tuple)):
            if interface is None:
                interface = Interface.of(type(factory()))
            ref = replicate(list(item), factory, interface=interface,
                            **dict(replicate_with or {}))
        else:
            obj = factory()
            if first_obj is None:
                first_obj = obj
            if interface is None:
                interface = Interface.of(type(obj))
            space = get_space(item)
            ref = space.export(obj, interface=interface, policy="stub")
            stub_entries.append((index, space, ref.oid))
            # Movability: each stub context gets a mover, and the class is
            # registered so proxy_move_shard's migrate_in can rebuild it.
            ensure_mover(space)
            space.system.codebase.register_class(type(obj))
        specs.append([ref.context_id, ref.oid, ref.interface, ref.epoch,
                      ref.policy])
    if first_obj is None:
        first_obj = factory()    # every shard replicated: delegate template
    config: dict = {
        "shards": specs,
        "ring": [list(entry) for entry in ring],
        "ring_epoch": int(ring_epoch),
        "vnodes": int(vnodes),
        "shard_key": None if shard_key is None else int(shard_key),
    }
    group_policy = policy
    if extra_layers:
        config["layers"] = list(extra_layers) + [policy]
        group_policy = "composite"
    home = contexts[0] if not isinstance(contexts[0], (list, tuple)) \
        else contexts[0][0]
    home_space = get_space(home)
    coordinator = make_delegate(first_obj, interface)
    group_ref = home_space.export(coordinator, interface=interface,
                                  policy=group_policy, config=config)
    group_entry = home_space.entry(group_ref.oid)
    # Server-side layer components install on the group entry, but calls
    # dispatch to the shard stub entries — mirror the hook list so
    # mutations observed at any shard fire the same machinery (the list
    # object is shared, so later installs propagate too).
    if group_entry.mutation_hooks:
        for _index, space, oid in stub_entries:
            space.entry(oid).mutation_hooks = group_entry.mutation_hooks
    # Arm every stub shard entry — and the group entry — with its ring
    # state; fencing switches on at the dispatcher the moment an entry
    # carries one.
    for index, space, oid in stub_entries:
        space.entry(oid).sharding = shards.ShardState(index, ring_epoch,
                                                      ring, specs)
    group_entry.sharding = shards.ShardState(-1, ring_epoch, ring, specs)
    if registry is not None:
        label = name or f"sharded:{interface.name}"
        registry.register(label, group_ref)
        registry.register(f"{label}.ring", group_entry.sharding.map())
    return group_ref
