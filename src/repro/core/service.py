"""Service base class: a convenience for writing exportable objects.

Nothing in the library *requires* inheriting from :class:`Service` — any
object whose class marks methods with
:func:`~repro.iface.interface.operation` can be exported.  The base class
adds the idioms every real service wants:

* ``default_policy`` / ``default_config`` class attributes that name the
  proxy implementation the service ships to its clients (the heart of the
  encapsulation claim: changing these lines — and nothing in any client —
  changes the distribution protocol),
* a cached :meth:`interface` derivation,
* the migration protocol (:meth:`migrate_state` /
  :meth:`from_migration_state`) with a default implementation based on
  ``__dict__`` for services whose state is plain data.
"""

from __future__ import annotations

from typing import Any

from ..iface.interface import Interface


class Service:
    """Base class for exportable service implementations."""

    #: Proxy factory this service ships to clients (see repro.core.policies).
    default_policy: str = "stub"
    #: Configuration shipped with the factory (marshallable values only).
    default_config: dict = {}

    @classmethod
    def interface(cls) -> Interface:
        """The interface derived from this class's ``@operation`` methods."""
        return Interface.of(cls)

    # -- migration protocol ------------------------------------------------------

    def migrate_state(self) -> Any:
        """Marshallable snapshot of this object's state for migration.

        The default ships ``__dict__`` and requires every attribute to be
        plain data; services with richer state override this pair.
        """
        return dict(self.__dict__)

    @classmethod
    def from_migration_state(cls, state: Any) -> "Service":
        """Rebuild an instance at the migration destination."""
        obj = cls.__new__(cls)
        obj.__dict__.update(state)
        return obj
