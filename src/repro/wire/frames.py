"""Message frames: the unit the transport carries between contexts.

A frame is a small header (kind, message id, source, destination, target
object, operation verb) plus a body value.  Frames are encoded with a
:class:`~repro.wire.marshal.Marshaller`, so the swizzle hooks apply to the
body — this is the single choke point through which every argument and
result crosses a context boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..kernel.errors import ProtocolError
from .marshal import Marshaller

#: Frame kinds.
REQUEST = "req"      #: call expecting a reply
REPLY = "rep"        #: successful result
EXCEPTION = "exc"    #: error result (body: (error_class_name, message, detail))
ONEWAY = "one"       #: fire-and-forget notification (no reply)
MREPLY = "mrp"       #: batch of same-tick frames coalesced onto one link

_KINDS = {REQUEST, REPLY, EXCEPTION, ONEWAY, MREPLY}

#: Header key for the admission layer's retry-after hint (the PR-5/7
#: envelope convention: extensions ride the ``headers`` dict, and empty
#: headers are elided by the codec).  Stamped only on the ``Overloaded``
#: exception reply a shedding server returns, carrying the absolute
#: virtual time at which it expects capacity — so every frame of a
#: deployment that never sheds encodes byte-identically to a build
#: without admission control.
K_OVERLOAD = "o.ra"


@dataclass(slots=True)
class Frame:
    """One message.

    Attributes:
        kind: one of :data:`REQUEST`, :data:`REPLY`, :data:`EXCEPTION`,
            :data:`ONEWAY`.
        msg_id: sender-unique id used for reply matching and dedup.
        src: sending context id.
        dst: destination context id.
        target: oid of the object addressed (requests/oneways).
        verb: operation name (requests/oneways) or ``""``.
        body: payload value — ``(args, kwargs)`` for requests, the result for
            replies, ``(class_name, message, detail)`` for exceptions.
        headers: optional extra key/value pairs (protocol extensions).
    """

    kind: str
    msg_id: int
    src: str
    dst: str
    target: str = ""
    verb: str = ""
    body: Any = None
    headers: dict = field(default_factory=dict)

    def encode(self, marshaller: Marshaller) -> bytes:
        """Encode the frame (hooks of ``marshaller`` apply to the body)."""
        if self.kind not in _KINDS:
            raise ProtocolError(f"unknown frame kind {self.kind!r}")
        return marshaller.encode_frame_fields(
            self.kind, self.msg_id, self.src, self.dst,
            self.target, self.verb, self.body, self.headers)

    def encode_message(self, marshaller: Marshaller):
        """Encode via the message fast path: returns a
        :class:`~repro.wire.segments.WireMessage` (zero-copy segments,
        frame-template memo, carried fields for pure frames) or plain
        bytes when nothing applies.  ``len()`` of either is the honest
        wire size, so everything charged by length is unchanged."""
        if self.kind not in _KINDS:
            raise ProtocolError(f"unknown frame kind {self.kind!r}")
        return marshaller.encode_frame_message(
            self.kind, self.msg_id, self.src, self.dst,
            self.target, self.verb, self.body, self.headers)

    @classmethod
    def decode(cls, data: bytes, marshaller: Marshaller) -> "Frame":
        """Decode wire bytes into a frame (hooks apply to the body)."""
        fields = marshaller.decode_frame_fields(data)
        if fields is None:
            # Not an 8-element list: decode generically so malformed input
            # produces the same errors it always did.
            fields = marshaller.decode(data)
            if not isinstance(fields, list) or len(fields) != 8:
                raise ProtocolError("malformed frame")
        kind, msg_id, src, dst, target, verb, body, headers = fields
        if kind not in _KINDS:
            raise ProtocolError(f"unknown frame kind {kind!r}")
        return cls(kind, msg_id, src, dst, target, verb, body, headers)

    @classmethod
    def decode_message(cls, msg, marshaller: Marshaller) -> "Frame":
        """Decode a :class:`WireMessage` (or plain bytes) into a frame.

        Carried frames skip the decoder entirely: the sender proved the
        fields deeply immutable and parked them on the message, so the
        receiver only fabricates fresh mutable shells (``headers`` dict,
        request ``(args, kwargs)`` pair).  Everything else goes through
        the segment-aware decoder, which hands raw payloads back
        without copying.
        """
        if msg.__class__ is bytes or msg.__class__ is bytearray:
            return cls.decode(msg, marshaller)
        carried = msg.carried
        if carried is not None:
            kind, msg_id, src, dst, target, verb, payload, is_pair = carried
            body = (payload, {}) if is_pair else payload
            return cls(kind, msg_id, src, dst, target, verb, body, {})
        fields = marshaller.decode_frame_message(msg)
        if not isinstance(fields, list) or len(fields) != 8:
            raise ProtocolError("malformed frame")
        kind, msg_id, src, dst, target, verb, body, headers = fields
        if kind not in _KINDS:
            raise ProtocolError(f"unknown frame kind {kind!r}")
        return cls(kind, msg_id, src, dst, target, verb, body, headers)

    def reply_to(self, body: Any) -> "Frame":
        """Build the successful reply to this request."""
        return Frame(REPLY, self.msg_id, self.dst, self.src, body=body)

    def exception_to(self, error_class: str, message: str,
                     detail: Any = None) -> "Frame":
        """Build the error reply to this request."""
        return Frame(EXCEPTION, self.msg_id, self.dst, self.src,
                     body=(error_class, message, detail))

    def __repr__(self) -> str:
        return (f"Frame({self.kind}, #{self.msg_id}, {self.src}->{self.dst}, "
                f"{self.target}.{self.verb})")


class MessageIdMinter:
    """Mints per-context message ids (unique within one sender)."""

    __slots__ = ("_next",)

    def __init__(self):
        self._next = 1

    def mint(self) -> int:
        """Return a fresh message id."""
        msg_id = self._next
        self._next += 1
        return msg_id
