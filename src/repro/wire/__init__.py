"""Wire substrate: object references, marshalling, and message frames."""

from .frames import EXCEPTION, ONEWAY, REPLY, REQUEST, Frame, MessageIdMinter
from .marshal import PLAIN, DecoderHook, EncoderHook, Marshaller, wire_size
from .refs import ObjectRef, OidMinter

__all__ = [
    "EXCEPTION", "Frame", "Marshaller", "MessageIdMinter", "ONEWAY",
    "ObjectRef", "OidMinter", "PLAIN", "REPLY", "REQUEST",
    "DecoderHook", "EncoderHook", "wire_size",
]
