"""Object references.

An :class:`ObjectRef` names an object exported by some context.  References
are what actually travel on the wire; the proxy principle says a reference
arriving in a context must surface to application code *only* as a proxy.

The ``epoch`` field supports migration: when an object moves, its new host
bumps the epoch, and the old host (if it kept a forwarding pointer) answers
stale-epoch requests with a redirect.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True, order=True)
class ObjectRef:
    """A location-dependent name for one exported object.

    Attributes:
        context_id: id of the hosting context (``"node/context"``).
        oid: object identifier, unique within the exporting context's history.
        interface: name of the interface the object exports.
        epoch: incarnation number, bumped on each migration.
        policy: name of the proxy factory the *exporter* chose.  This is the
            proxy principle on the wire: the service, not the client, decides
            what local representative a holder of this reference gets.
    """

    context_id: str
    oid: str
    interface: str = ""
    epoch: int = 0
    policy: str = "stub"

    @property
    def node_name(self) -> str:
        """Name of the node hosting the referenced object."""
        return self.context_id.split("/", 1)[0]

    @property
    def key(self) -> str:
        """Stable identity key for proxy tables.

        Minted oids embed their minting context, so they are globally unique
        and stay valid across migrations: location and epoch are ignored.
        Well-known oids (leading underscore: ``"_ctxmgr"``, ``"_mover"``,
        ``"_nameservice"``) deliberately repeat in every context and never
        migrate, so their identity *is* their location."""
        if self.oid.startswith("_"):
            return f"{self.context_id}#{self.oid}"
        return self.oid

    def moved_to(self, context_id: str) -> "ObjectRef":
        """The ref after a migration to ``context_id`` (epoch bumped)."""
        return replace(self, context_id=context_id, epoch=self.epoch + 1)

    def __str__(self) -> str:
        return (f"{self.context_id}#{self.oid}@{self.epoch}"
                f":{self.interface}/{self.policy}")


class OidMinter:
    """Mints oids unique across the system.

    Each context owns a minter; oids embed the context id so that an object
    can migrate without its identity ever colliding with oids minted at the
    destination.
    """

    def __init__(self, context_id: str):
        self.context_id = context_id
        self._next = 0

    def mint(self) -> str:
        """Return a fresh oid."""
        oid = f"{self.context_id}:{self._next}"
        self._next += 1
        return oid
