"""Zero-copy wire messages: an encoded head plus raw payload segments.

The marshaller's bulk fast path (see ``wire/marshal.py``) does not copy
large ``bytes``/``bytearray``/``memoryview`` payloads into the encoded
stream.  Instead it writes a 5-byte raw marker (tag + u32 length — the
same overhead as the inline bytes encoding, so the wire byte count and
therefore every virtual-time figure is unchanged) and parks the payload
object itself in a segment list.  The result is a :class:`WireMessage`:
the contiguous *head* with markers inline, and the *segments* that
splice in at recorded offsets.

A ``WireMessage`` travels the simulated transport wherever plain frame
bytes travel; ``len()`` reports the honest wire size (head plus segment
payloads), which is what the cost model and the trace consume.  Nothing
downstream mutates one, so a single instance may be shared freely — the
frame template memo returns cached segment tuples, and ``bytes``
payloads cross the boundary without ever being copied.

``to_bytes()`` produces the contiguous wire image (markers followed by
their payloads), which the ordinary decoder accepts — the format is
self-describing with or without the segment list.
"""

from __future__ import annotations


class WireMessage:
    """One encoded message: contiguous head + zero-copy payload segments.

    Attributes:
        head: the encoded stream; raw markers (tag + length) sit inline
            where the payload content would be.
        segments: tuple of ``(offset, payload)`` pairs — ``offset`` is
            the position in ``head`` immediately after the payload's
            marker, i.e. where the content splices into the wire image;
            ``payload`` is the original bytes-like object, uncopied.
        nbytes: honest wire size — ``len(head)`` plus every segment's
            byte length.  This equals what the inline encoding would
            have produced, so marshal charges and network transit times
            are bit-identical to the copying path.
        carried: for *pure* frames (empty headers, deeply-immutable
            body), the decoded field tuple ``(kind, msg_id, src, dst,
            target, verb, payload, is_request_pair)`` — the receiver
            rebuilds the frame from it without touching the decoder at
            all.  ``None`` when the frame must be decoded for real.
    """

    __slots__ = ("head", "segments", "nbytes", "carried")

    def __init__(self, head: bytes, segments: tuple, nbytes: int,
                 carried: tuple | None = None):
        self.head = head
        self.segments = segments
        self.nbytes = nbytes
        self.carried = carried

    def __len__(self) -> int:
        return self.nbytes

    def to_bytes(self) -> bytes:
        """The contiguous wire image (segments spliced after their
        markers).  Decodable by the plain byte-stream decoder; used when
        a message is embedded inside another frame (reply batching)."""
        if not self.segments:
            return self.head
        head = self.head
        parts = []
        prev = 0
        for offset, payload in self.segments:
            parts.append(head[prev:offset])
            if payload.__class__ is not bytes:
                payload = bytes(payload)
            parts.append(payload)
            prev = offset
        parts.append(head[prev:])
        return b"".join(parts)

    def freeze(self) -> "WireMessage":
        """A message whose segments are all immutable ``bytes``.

        Returns ``self`` when nothing needs materialising.  Used when a
        message is staged for deferred delivery (reply batching): a
        ``bytearray``/``memoryview`` payload could legally be mutated by
        its owner between staging and the flush, so mutable segments are
        snapshotted exactly once here.
        """
        if all(p.__class__ is bytes for _, p in self.segments):
            return self
        frozen = tuple((offset, bytes(payload))
                       for offset, payload in self.segments)
        return WireMessage(self.head, frozen, self.nbytes, self.carried)

    def __repr__(self) -> str:
        return (f"WireMessage({self.nbytes} bytes, "
                f"{len(self.segments)} segments"
                f"{', carried' if self.carried is not None else ''})")
