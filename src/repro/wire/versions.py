"""Versioned replica envelopes: quorum metadata threaded through the wire.

The ``replicated`` policy's quorum mode attaches a per-key **version** (a
logical timestamp assigned by the group's primary) to every replica write,
and reads collect ``(version, answer)`` pairs so the newest copy wins.
This module owns the wire representation and the server-side protocol
steps, shared by two call paths:

* the dispatcher (:mod:`repro.rpc.dispatcher`) for remote replicas — the
  request metadata rides :attr:`~repro.wire.frames.Frame.headers` (the
  same extension point deadlines use), and the versioned reply is a
  **marshalled wrapper** (a dict with reserved ``q.*`` keys) because a
  reply frame's body is the only thing the RPC client hands back;
* the replicated proxy itself for a co-located replica, where the frame
  layer is bypassed entirely (home access is the object).

Frames that carry no quorum envelope are untouched: the header dict stays
empty and :meth:`Marshaller.encode_frame_fields` elides it, so non-
replicated traffic is byte-identical to a build without this module.

Request header keys (values are small marshallable lists):

========== ======================= ========================================
key        value                   meaning
========== ======================= ========================================
``q.w``    ``[key]``               primary write: apply, assign the next
                                   version of ``key``, log the operation
``q.a``    ``[key, n]``            replica write: apply iff ``n`` extends
                                   the replica's log of ``key`` contiguously
``q.r``    ``[key]``               versioned read: answer with the replica's
                                   current version of ``key``
``q.c``    ``["pull", key, since]`` log transfer for repair: return the
           / ``["push", key]``     suffix after ``since`` / apply pushed
                                   entries (ride the request body)
========== ======================= ========================================

Reply wrappers (reserved keys, see :func:`is_wrapped`):

* ``{"q.v": n, "q.val": result}`` — applied/answered at version ``n``;
* ``{"q.v": cur, "q.stale": True}`` — the replica is missing a prefix
  (apply of ``n > cur + 1``): the caller repairs, then retries the ack;
* ``{"q.v": cur, "q.exc": [type, message]}`` — the operation raised an
  application exception (versioned reads re-raise it client-side);
* ``{"q.v": cur, "q.log": [[n, verb, args, kwargs], ...]}`` — pull answer.
"""

from __future__ import annotations

from typing import Any, Callable

from ..kernel.errors import ProtocolError

#: Request header: primary write ``[key]`` — apply and assign the version.
H_ASSIGN = "q.w"
#: Request header: replica write ``[key, n]`` — apply iff contiguous.
H_APPLY = "q.a"
#: Request header: versioned read ``[key]``.
H_READ = "q.r"
#: Request header: log-transfer control ``["pull", key, since]``/``["push", key]``.
H_CONTROL = "q.c"

#: Reply key: the replica's version of the addressed key after the call.
K_VERSION = "q.v"
#: Reply key: the operation's result (present on success).
K_VALUE = "q.val"
#: Reply key: apply refused, the replica is missing a log prefix.
K_STALE = "q.stale"
#: Reply key: the operation raised ``[type_name, message]``.
K_EXC = "q.exc"
#: Reply key: pulled log suffix ``[[n, verb, args, kwargs], ...]``.
K_LOG = "q.log"

_QUORUM_HEADERS = (H_ASSIGN, H_APPLY, H_READ, H_CONTROL)


def has_envelope(headers: dict | None) -> bool:
    """True when a request carries any quorum envelope."""
    if not headers:
        return False
    return any(key in headers for key in _QUORUM_HEADERS)


class ReplicaLog:
    """Per-key contiguous operation log of one replica.

    The version of a key is simply the length of its log; entry ``n`` is
    the operation that moved the key from version ``n - 1`` to ``n``.
    Because versions are assigned by a single sequencer (the group's
    primary), every replica's log of a key is a prefix of the primary's —
    repair is therefore always a suffix transfer, never a merge.
    """

    __slots__ = ("_logs",)

    def __init__(self) -> None:
        self._logs: dict[Any, list] = {}

    def version(self, key) -> int:
        """The highest contiguous version this replica holds for ``key``."""
        log = self._logs.get(key)
        return len(log) if log else 0

    def append(self, key, n: int, verb: str, args, kwargs) -> None:
        """Record the operation that produced version ``n`` of ``key``."""
        log = self._logs.setdefault(key, [])
        if n != len(log) + 1:
            raise ProtocolError(
                f"replica log of {key!r} at version {len(log)} cannot "
                f"append version {n}")
        log.append((n, verb, list(args), dict(kwargs)))

    def suffix(self, key, since: int) -> list:
        """The marshallable entries after version ``since`` (for repair)."""
        log = self._logs.get(key)
        if not log:
            return []
        return [[n, verb, list(args), dict(kwargs)]
                for n, verb, args, kwargs in log[int(since):]]


def replica_log(entry) -> ReplicaLog:
    """The (lazily created) version log of one export-table entry."""
    log = entry.replica_log
    if log is None:
        log = entry.replica_log = ReplicaLog()
    return log


# -- server-side protocol steps -----------------------------------------------
#
# Each helper takes the export entry and an ``invoke`` thunk (the actual
# method call, with whatever interface checking and compute accounting the
# caller's layer does) and returns the marshallable reply wrapper.
# Application exceptions are folded into the wrapper for reads and replica
# applies; a primary write propagates them so nothing is logged and the
# fan-out never starts — the group stays converged.


def serve_read(entry, key, invoke: Callable[[], Any]) -> dict:
    """A versioned read: the answer plus the replica's version of ``key``."""
    log = replica_log(entry)
    try:
        result = invoke()
    except Exception as exc:
        return {K_VERSION: log.version(key),
                K_EXC: [type(exc).__name__, str(exc)]}
    return {K_VERSION: log.version(key), K_VALUE: result}


def serve_assign(entry, key, verb: str, args, kwargs,
                 invoke: Callable[[], Any]) -> dict:
    """A primary write: execute, then log it under the next version."""
    log = replica_log(entry)
    result = invoke()    # an exception propagates; nothing is logged
    n = log.version(key) + 1
    log.append(key, n, verb, args, kwargs)
    entry.run_mutation_hooks(verb, tuple(args), dict(kwargs))
    return {K_VERSION: n, K_VALUE: result}


def serve_apply(entry, key, n: int, verb: str, args, kwargs,
                invoke: Callable[[], Any]) -> dict:
    """A replica write at an assigned version: apply iff contiguous.

    ``n <= current`` is an idempotent ack (the replica already holds that
    prefix); a gap answers ``stale`` so the caller can repair and retry.
    """
    log = replica_log(entry)
    current = log.version(key)
    n = int(n)
    if n <= current:
        return {K_VERSION: current}
    if n > current + 1:
        return {K_VERSION: current, K_STALE: True}
    try:
        invoke()
    except Exception as exc:
        # The primary executed this operation without raising, so a raising
        # replica has diverged — refuse the ack, leave the log untouched.
        return {K_VERSION: current,
                K_EXC: [type(exc).__name__, str(exc)]}
    log.append(key, n, verb, args, kwargs)
    entry.run_mutation_hooks(verb, tuple(args), dict(kwargs))
    return {K_VERSION: n}


def serve_control(entry, control, body_args,
                  invoke: Callable[[str, tuple, dict], Any]) -> dict:
    """A log-transfer control call (repair traffic, verb-less frames).

    ``["pull", key, since]`` returns the suffix after ``since``;
    ``["push", key]`` applies the entries riding ``body_args[0]``
    contiguously (old entries are skipped, a gap or a raising entry stops
    the push) and returns the resulting version.
    """
    kind = control[0]
    log = replica_log(entry)
    if kind == "pull":
        key, since = control[1], int(control[2])
        return {K_VERSION: log.version(key), K_LOG: log.suffix(key, since)}
    if kind == "push":
        key = control[1]
        entries = body_args[0] if body_args else []
        for item in entries:
            n, verb, args, kwargs = (int(item[0]), item[1], tuple(item[2]),
                                     dict(item[3]))
            current = log.version(key)
            if n <= current:
                continue
            if n > current + 1:
                break
            try:
                invoke(verb, args, kwargs)
            except Exception:
                break    # diverged entry: stop, report how far we got
            log.append(key, n, verb, args, kwargs)
            entry.run_mutation_hooks(verb, args, kwargs)
        return {K_VERSION: log.version(key)}
    raise ProtocolError(f"unknown quorum control {kind!r}")


def serve_envelope(entry, verb: str, args, kwargs, headers: dict,
                   invoke: Callable[[], Any] | None = None,
                   control_invoke: Callable[[str, tuple, dict], Any] | None
                   = None) -> dict:
    """Dispatch one enveloped call to the matching protocol step.

    The co-located fast path of the replicated proxy uses this directly on
    the local export entry; the dispatcher inlines the same steps with its
    own interface/compute accounting.
    """
    control = headers.get(H_CONTROL)
    if control is not None:
        if control_invoke is None:
            control_invoke = lambda v, a, k: getattr(entry.obj, v)(*a, **k)  # noqa: E731
        return serve_control(entry, control, args, control_invoke)
    if invoke is None:
        invoke = lambda: getattr(entry.obj, verb)(*args, **kwargs)  # noqa: E731
    spec = headers.get(H_READ)
    if spec is not None:
        return serve_read(entry, spec[0], invoke)
    spec = headers.get(H_ASSIGN)
    if spec is not None:
        return serve_assign(entry, spec[0], verb, args, kwargs, invoke)
    spec = headers.get(H_APPLY)
    if spec is not None:
        return serve_apply(entry, spec[0], spec[1], verb, args, kwargs,
                           invoke)
    raise ProtocolError("frame carries no quorum envelope")
