"""Versioned replica envelopes: quorum metadata threaded through the wire.

The ``replicated`` policy's quorum mode attaches a per-key **version** (a
logical timestamp assigned by the group's primary) to every replica write,
and reads collect ``(version, answer)`` pairs so the newest copy wins.
This module owns the wire representation and the server-side protocol
steps, shared by two call paths:

* the dispatcher (:mod:`repro.rpc.dispatcher`) for remote replicas — the
  request metadata rides :attr:`~repro.wire.frames.Frame.headers` (the
  same extension point deadlines use), and the versioned reply is a
  **marshalled wrapper** (a dict with reserved ``q.*`` keys) because a
  reply frame's body is the only thing the RPC client hands back;
* the replicated proxy itself for a co-located replica, where the frame
  layer is bypassed entirely (home access is the object).

Frames that carry no quorum envelope are untouched: the header dict stays
empty and :meth:`Marshaller.encode_frame_fields` elides it, so non-
replicated traffic is byte-identical to a build without this module.

**Election mode** (the export entry carries an :class:`~repro.failures.
election.ElectionState`): every write envelope additionally carries the
caller's ``(term, leader)`` belief in :data:`H_TERM`, log entries are
stamped with the term they were assigned under, and stale-term writes are
**fenced** — refused with a :data:`K_FENCED` redirect naming the current
``(term, leader)``, mirroring the migration chain's reject-with-forwarding.
Every election-mode key is emitted *only* when the entry has election
state, so legacy quorum traffic stays byte-identical too.

Request header keys (values are small marshallable lists):

========== ======================= ========================================
key        value                   meaning
========== ======================= ========================================
``q.w``    ``[key]``               primary write: apply, assign the next
                                   version of ``key``, log the operation
``q.a``    ``[key, n]``            replica write: apply iff ``n`` extends
                                   the replica's log of ``key`` contiguously
``q.r``    ``[key]``               versioned read: answer with the replica's
                                   current version of ``key``
``q.c``    ``["pull", key, since]`` log transfer for repair: return the
           / ``["push", key]``     suffix after ``since`` / apply pushed
                                   entries (ride the request body)
``q.t``    ``[term, leader]``      election mode: the caller's leadership
                                   belief; stale terms are fenced, newer
                                   terms are adopted
========== ======================= ========================================

Election-mode control verbs (also under ``q.c``): ``["status"]``,
``["vote", term, candidate]``, ``["announce", term, leader]``,
``["renew", term, leader]``, ``["digest"]``, and ``["reset"]`` (discard
the object and its logs ahead of a full resync from the leader — the
divergence repair; a suffix push cannot *un*-apply an executed entry).

Reply wrappers (reserved keys, see :func:`is_wrapped`):

* ``{"q.v": n, "q.val": result}`` — applied/answered at version ``n``;
* ``{"q.v": cur, "q.stale": True}`` — the replica is missing a prefix
  (apply of ``n > cur + 1``): the caller repairs, then retries the ack;
* ``{"q.v": cur, "q.exc": [type, message]}`` — the operation raised an
  application exception (versioned reads re-raise it client-side);
* ``{"q.v": cur, "q.log": [[n, verb, args, kwargs(, term)], ...]}`` —
  pull answer (the fifth element appears only for term-stamped entries);
* ``{"q.f": [term, leader]}`` — fenced: the write's term is stale;
* ``{"q.exp": True}`` — the leader's own lease expired; the caller runs
  a renewal round and retries;
* ``{"q.div": True}`` — divergence: the replica holds a *different*
  entry (another term) at that version; only a reset + full resync from
  the leader can repair it;
* ``q.vt`` — the term of the key's last log entry (reads/stale replies)
  or of the entry at the pull boundary (prefix-equality witness: equal
  ``(version, term)`` pairs imply equal prefixes, because a term has at
  most one leader and a leader assigns each version once);
* ``q.tl`` — the replica's current ``[term, leader]`` (reads, election
  controls); ``q.x`` — its lease expiry; ``q.g`` — a vote/announce/renew
  grant flag; ``q.dig`` — a log digest ``[[key, last_term, version]...]``.
"""

from __future__ import annotations

from typing import Any, Callable

from ..kernel.errors import ProtocolError

#: Request header: primary write ``[key]`` — apply and assign the version.
H_ASSIGN = "q.w"
#: Request header: replica write ``[key, n]`` — apply iff contiguous.
H_APPLY = "q.a"
#: Request header: versioned read ``[key]``.
H_READ = "q.r"
#: Request header: log-transfer control ``["pull", key, since]``/``["push", key]``.
H_CONTROL = "q.c"
#: Request header: the caller's ``[term, leader]`` belief (election mode).
H_TERM = "q.t"

#: Reply key: the replica's version of the addressed key after the call.
K_VERSION = "q.v"
#: Reply key: the operation's result (present on success).
K_VALUE = "q.val"
#: Reply key: apply refused, the replica is missing a log prefix.
K_STALE = "q.stale"
#: Reply key: the operation raised ``[type_name, message]``.
K_EXC = "q.exc"
#: Reply key: pulled log suffix ``[[n, verb, args, kwargs(, term)], ...]``.
K_LOG = "q.log"
#: Reply key: fenced — the write's term is stale; value ``[term, leader]``.
K_FENCED = "q.f"
#: Reply key: the leader's self-lease expired; renew and retry.
K_EXPIRED = "q.exp"
#: Reply key: divergence — a different entry of another term sits at that
#: version; suffix repair cannot fix it, only reset + full resync can.
K_DIVERGED = "q.div"
#: Reply key: the term of the key's last entry (or the pull boundary's).
K_VTERM = "q.vt"
#: Reply key: the replica's current ``[term, leader]``.
K_TERM = "q.tl"
#: Reply key: the replica's lease expiry (vote refusals, status).
K_EXPIRY = "q.x"
#: Reply key: vote/announce/renew outcome flag.
K_GRANT = "q.g"
#: Reply key: per-key log digest ``[[key, last_term, version], ...]``.
K_DIGEST = "q.dig"

_QUORUM_HEADERS = (H_ASSIGN, H_APPLY, H_READ, H_CONTROL)

#: Control verbs served by the export entry's election state.
_ELECTION_CONTROLS = ("status", "vote", "announce", "renew")


def has_envelope(headers: dict | None) -> bool:
    """True when a request carries any quorum envelope."""
    if not headers:
        return False
    return any(key in headers for key in _QUORUM_HEADERS)


class ReplicaLog:
    """Per-key contiguous operation log of one replica.

    The version of a key is simply the length of its log; entry ``n`` is
    the operation that moved the key from version ``n - 1`` to ``n``.
    Because versions are assigned by a single sequencer (the leader of
    the entry's term), every replica's log of a key is a prefix of that
    leader's — repair is a suffix transfer.  Across a leader change two
    logs can hold *different* entries at the same version (an old
    leader's uncommitted tail); entries therefore carry the term they
    were assigned under, and ``(term, version)`` pairs order
    lexicographically: equal pairs imply equal prefixes (a term has one
    leader, and a leader assigns each version of a key exactly once).
    """

    __slots__ = ("_logs",)

    def __init__(self) -> None:
        self._logs: dict[Any, list] = {}

    def version(self, key) -> int:
        """The highest contiguous version this replica holds for ``key``."""
        log = self._logs.get(key)
        return len(log) if log else 0

    def last_term(self, key) -> int:
        """The term of the key's last entry (0 for an empty log)."""
        log = self._logs.get(key)
        return log[-1][4] if log else 0

    def term_at(self, key, n: int) -> int:
        """The term of the entry that produced version ``n`` (0 if absent)."""
        log = self._logs.get(key)
        n = int(n)
        if not log or not 1 <= n <= len(log):
            return 0
        return log[n - 1][4]

    def append(self, key, n: int, verb: str, args, kwargs,
               term: int = 0) -> None:
        """Record the operation that produced version ``n`` of ``key``."""
        log = self._logs.setdefault(key, [])
        if n != len(log) + 1:
            raise ProtocolError(
                f"replica log of {key!r} at version {len(log)} cannot "
                f"append version {n}")
        log.append((n, verb, list(args), dict(kwargs), int(term)))

    def suffix(self, key, since: int) -> list:
        """The marshallable entries after version ``since`` (for repair).

        Un-termed entries (legacy quorum mode) keep the four-element wire
        form, so repair traffic without elections is byte-identical to a
        build without term stamping.
        """
        log = self._logs.get(key)
        if not log:
            return []
        return [[n, verb, list(args), dict(kwargs)] if term == 0
                else [n, verb, list(args), dict(kwargs), term]
                for n, verb, args, kwargs, term in log[int(since):]]

    def digest(self) -> list:
        """``[[key, last_term, version], ...]`` over every key, sorted."""
        return [[key, log[-1][4], len(log)]
                for key, log in sorted(self._logs.items(),
                                       key=lambda item: repr(item[0]))
                if log]


def replica_log(entry) -> ReplicaLog:
    """The (lazily created) version log of one export-table entry."""
    log = entry.replica_log
    if log is None:
        log = entry.replica_log = ReplicaLog()
    return log


def _term_of(headers: dict | None) -> tuple[int, int] | None:
    """The ``(term, leader)`` a request carries, if any."""
    spec = headers.get(H_TERM) if headers else None
    if spec is None:
        return None
    return int(spec[0]), int(spec[1])


def _fence_write(entry, headers: dict | None, now: float) -> dict | None:
    """Election-mode gate for mutating envelopes (assign/apply/push/reset).

    A stale term answers the :data:`K_FENCED` redirect; a newer term is
    adopted on the spot (a lost announce heals through ordinary traffic).
    Returns the refusal wrapper, or ``None`` to proceed.
    """
    state = getattr(entry, "election", None)
    if state is None:
        return None
    claim = _term_of(headers)
    if claim is None:
        return None
    term, leader = claim
    refused = state.fence(term)
    if refused is not None:
        return refused
    state.adopt(term, leader, now)
    return None


# -- server-side protocol steps -----------------------------------------------
#
# Each helper takes the export entry and an ``invoke`` thunk (the actual
# method call, with whatever interface checking and compute accounting the
# caller's layer does) and returns the marshallable reply wrapper.
# Application exceptions are folded into the wrapper for reads and replica
# applies; a primary write propagates them so nothing is logged and the
# fan-out never starts — the group stays converged.


def serve_read(entry, key, invoke: Callable[[], Any]) -> dict:
    """A versioned read: the answer plus the replica's version of ``key``.

    Reads are never fenced — a replica may answer during an election
    window (the read-side promotion step is what keeps exposed values
    stable) — but in election mode the reply advertises the entry term
    of the answer and the replica's current ``(term, leader)`` so the
    caller can adopt a newer leadership opportunistically.
    """
    log = replica_log(entry)
    state = getattr(entry, "election", None)
    extra = ({K_VTERM: log.last_term(key),
              K_TERM: [state.term, state.leader]}
             if state is not None else {})
    try:
        result = invoke()
    except Exception as exc:
        return {K_VERSION: log.version(key),
                K_EXC: [type(exc).__name__, str(exc)], **extra}
    return {K_VERSION: log.version(key), K_VALUE: result, **extra}


def serve_assign(entry, key, verb: str, args, kwargs,
                 invoke: Callable[[], Any], headers: dict | None = None,
                 now: float = 0.0) -> dict:
    """A primary write: execute, then log it under the next version.

    In election mode the assign is the most-guarded step: the request's
    term must be current, this replica must believe *itself* leader of
    that term, and its own lease must still be valid (an expired lease
    answers :data:`K_EXPIRED`; the caller drives a renewal round through
    the followers and retries).  The entry is logged under the term that
    assigned it.
    """
    log = replica_log(entry)
    state = getattr(entry, "election", None)
    term = 0
    if state is not None:
        refused = _fence_write(entry, headers, now)
        if refused is not None:
            return refused
        if not state.is_leader():
            state.counters.incr("fencing_rejects")
            return {K_FENCED: [state.term, state.leader]}
        if not state.lease_valid(now):
            state.counters.incr("lease_refusals")
            return {K_EXPIRED: True, K_TERM: [state.term, state.leader]}
        term = state.term
    result = invoke()    # an exception propagates; nothing is logged
    n = log.version(key) + 1
    log.append(key, n, verb, args, kwargs, term)
    entry.run_mutation_hooks(verb, tuple(args), dict(kwargs))
    reply = {K_VERSION: n, K_VALUE: result}
    if state is not None:
        reply[K_VTERM] = term
    return reply


def serve_apply(entry, key, n: int, verb: str, args, kwargs,
                invoke: Callable[[], Any], headers: dict | None = None,
                now: float = 0.0) -> dict:
    """A replica write at an assigned version: apply iff contiguous.

    ``n <= current`` is an idempotent ack (the replica already holds that
    prefix); a gap answers ``stale`` so the caller can repair and retry.
    In election mode a stale term is fenced, and an ``n <= current`` ack
    additionally demands that the held entry's *term* matches the
    write's — a mismatch is divergence (:data:`K_DIVERGED`), repairable
    only by reset + full resync from the leader.
    """
    log = replica_log(entry)
    state = getattr(entry, "election", None)
    claim = _term_of(headers)
    wterm = claim[0] if (state is not None and claim is not None) else 0
    if state is not None:
        refused = _fence_write(entry, headers, now)
        if refused is not None:
            return refused
    current = log.version(key)
    n = int(n)
    if n <= current:
        if state is not None and log.term_at(key, n) != wterm:
            state.counters.incr("divergences")
            return {K_VERSION: current, K_DIVERGED: True}
        return {K_VERSION: current}
    if n > current + 1:
        reply = {K_VERSION: current, K_STALE: True}
        if state is not None:
            reply[K_VTERM] = log.last_term(key)
        return reply
    try:
        invoke()
    except Exception as exc:
        # The primary executed this operation without raising, so a raising
        # replica has diverged — refuse the ack, leave the log untouched.
        return {K_VERSION: current,
                K_EXC: [type(exc).__name__, str(exc)]}
    log.append(key, n, verb, args, kwargs, wterm)
    entry.run_mutation_hooks(verb, tuple(args), dict(kwargs))
    return {K_VERSION: n}


def serve_control(entry, control, body_args,
                  invoke: Callable[[str, tuple, dict], Any],
                  headers: dict | None = None, now: float = 0.0) -> dict:
    """A log-transfer or election control call (verb-less frames).

    ``["pull", key, since]`` returns the suffix after ``since``;
    ``["push", key]`` applies the entries riding ``body_args[0]``
    contiguously (old entries are skipped, a gap or a raising entry stops
    the push) and returns the resulting version.  Election mode adds
    ``["status"]``/``["vote", …]``/``["announce", …]``/``["renew", …]``
    (served by the entry's :class:`~repro.failures.election.
    ElectionState`), ``["digest"]``, and ``["reset"]`` — the divergence
    repair: discard the object and its logs, then take a full push.
    """
    kind = control[0]
    log = replica_log(entry)
    state = getattr(entry, "election", None)
    if kind in _ELECTION_CONTROLS:
        if state is None:
            raise ProtocolError(
                f"control {kind!r} on a group without election state")
        return state.control(kind, control, now, log)
    if kind == "digest":
        return {K_VERSION: 0, K_DIGEST: log.digest()}
    if kind == "reset":
        if state is None:
            raise ProtocolError("reset on a group without election state")
        refused = _fence_write(entry, headers, now)
        if refused is not None:
            return refused
        # A suffix push cannot un-apply a diverged entry: recreate the
        # object from scratch and let the caller replay the leader's full
        # logs.  Service state is rebuilt purely from the log, so nothing
        # needs to be marshalled.
        entry.obj = type(entry.obj)()
        entry.replica_log = ReplicaLog()
        state.counters.incr("resets")
        return {K_VERSION: 0}
    if kind == "pull":
        key, since = control[1], int(control[2])
        reply = {K_VERSION: log.version(key), K_LOG: log.suffix(key, since)}
        if state is not None:
            # The boundary witness: the term of the entry *at* ``since``.
            # The puller compares it with the target's last-entry term —
            # equal (version, term) pairs imply equal prefixes, so the
            # suffix is guaranteed to extend what the target holds.
            reply[K_VTERM] = log.term_at(key, since)
        return reply
    if kind == "push":
        refused = _fence_write(entry, headers, now)
        if refused is not None:
            return refused
        key = control[1]
        entries = body_args[0] if body_args else []
        for item in entries:
            n, verb, args, kwargs = (int(item[0]), item[1], tuple(item[2]),
                                     dict(item[3]))
            eterm = int(item[4]) if len(item) > 4 else 0
            current = log.version(key)
            if n <= current:
                if state is not None and log.term_at(key, n) != eterm:
                    state.counters.incr("divergences")
                    return {K_VERSION: current, K_DIVERGED: True}
                continue
            if n > current + 1:
                break
            try:
                invoke(verb, args, kwargs)
            except Exception:
                break    # diverged entry: stop, report how far we got
            log.append(key, n, verb, args, kwargs, eterm)
            entry.run_mutation_hooks(verb, args, kwargs)
        return {K_VERSION: log.version(key)}
    raise ProtocolError(f"unknown quorum control {kind!r}")


def serve_envelope(entry, verb: str, args, kwargs, headers: dict,
                   invoke: Callable[[], Any] | None = None,
                   control_invoke: Callable[[str, tuple, dict], Any] | None
                   = None, now: float = 0.0) -> dict:
    """Dispatch one enveloped call to the matching protocol step.

    The co-located fast path of the replicated proxy uses this directly on
    the local export entry; the dispatcher inlines the same steps with its
    own interface/compute accounting.
    """
    control = headers.get(H_CONTROL)
    if control is not None:
        if control_invoke is None:
            control_invoke = lambda v, a, k: getattr(entry.obj, v)(*a, **k)  # noqa: E731
        return serve_control(entry, control, args, control_invoke,
                             headers=headers, now=now)
    if invoke is None:
        invoke = lambda: getattr(entry.obj, verb)(*args, **kwargs)  # noqa: E731
    spec = headers.get(H_READ)
    if spec is not None:
        return serve_read(entry, spec[0], invoke)
    spec = headers.get(H_ASSIGN)
    if spec is not None:
        return serve_assign(entry, spec[0], verb, args, kwargs, invoke,
                            headers=headers, now=now)
    spec = headers.get(H_APPLY)
    if spec is not None:
        return serve_apply(entry, spec[0], spec[1], verb, args, kwargs,
                           invoke, headers=headers, now=now)
    raise ProtocolError("frame carries no quorum envelope")
