"""The wire format: a self-describing tagged binary encoding.

Hand-rolled (no ``pickle``) for three reasons: the byte count must be an
honest input to the network cost model; unmarshalling must never execute
arbitrary code; and the encoder needs *swizzle hooks* — the mechanism by
which the proxy principle is enforced.  When an exported object is about to
cross a context boundary, the encoder hook replaces it with an
:class:`~repro.wire.refs.ObjectRef`; the decoder hook on the far side turns
that ref into a proxy.  Application data passes by value.

Supported values: ``None``, ``bool``, ``int`` (arbitrary precision),
``float``, ``str``, ``bytes``, ``list``, ``tuple``, ``dict``, ``set``,
``frozenset``, :class:`ObjectRef`, plus anything the hooks translate.
"""

from __future__ import annotations

import struct
from typing import Any, Callable

from ..kernel.errors import MarshalError
from .refs import ObjectRef

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_BIGINT = b"I"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_TUPLE = b"t"
_TAG_DICT = b"d"
_TAG_SET = b"S"
_TAG_FROZENSET = b"Z"
_TAG_REF = b"R"

#: Encoder hook: given a value the base encoder cannot handle (or any value,
#: since hooks run first), return a replacement value or ``None`` to decline.
EncoderHook = Callable[[Any], Any]

#: Decoder hook: given a decoded :class:`ObjectRef`, return what application
#: code should see (a proxy).  Returning the ref unchanged is allowed.
DecoderHook = Callable[[ObjectRef], Any]


class Marshaller:
    """Encodes and decodes wire values, applying optional swizzle hooks."""

    def __init__(self, encoder_hook: EncoderHook | None = None,
                 decoder_hook: DecoderHook | None = None):
        self.encoder_hook = encoder_hook
        self.decoder_hook = decoder_hook

    # -- encoding ------------------------------------------------------------

    def encode(self, value: Any) -> bytes:
        """Encode ``value`` to wire bytes."""
        out = bytearray()
        self._encode_into(value, out)
        return bytes(out)

    def _encode_into(self, value: Any, out: bytearray) -> None:
        if self.encoder_hook is not None:
            replacement = self.encoder_hook(value)
            if replacement is not None and replacement is not value:
                value = replacement
        if value is None:
            out += _TAG_NONE
        elif value is True:
            out += _TAG_TRUE
        elif value is False:
            out += _TAG_FALSE
        elif isinstance(value, int):
            if -(2**63) <= value < 2**63:
                out += _TAG_INT
                out += _I64.pack(value)
            else:
                raw = value.to_bytes((value.bit_length() + 8) // 8 + 1,
                                     "big", signed=True)
                out += _TAG_BIGINT
                out += _U32.pack(len(raw))
                out += raw
        elif isinstance(value, float):
            out += _TAG_FLOAT
            out += _F64.pack(value)
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            out += _TAG_STR
            out += _U32.pack(len(raw))
            out += raw
        elif isinstance(value, (bytes, bytearray, memoryview)):
            raw = bytes(value)
            out += _TAG_BYTES
            out += _U32.pack(len(raw))
            out += raw
        elif isinstance(value, ObjectRef):
            self._encode_ref(value, out)
        elif isinstance(value, list):
            out += _TAG_LIST
            out += _U32.pack(len(value))
            for item in value:
                self._encode_into(item, out)
        elif isinstance(value, tuple):
            out += _TAG_TUPLE
            out += _U32.pack(len(value))
            for item in value:
                self._encode_into(item, out)
        elif isinstance(value, dict):
            out += _TAG_DICT
            out += _U32.pack(len(value))
            for key, val in value.items():
                self._encode_into(key, out)
                self._encode_into(val, out)
        elif isinstance(value, frozenset):
            out += _TAG_FROZENSET
            out += _U32.pack(len(value))
            for item in sorted(value, key=repr):
                self._encode_into(item, out)
        elif isinstance(value, set):
            out += _TAG_SET
            out += _U32.pack(len(value))
            for item in sorted(value, key=repr):
                self._encode_into(item, out)
        else:
            raise MarshalError(
                f"cannot marshal {type(value).__name__!r} value {value!r}; "
                "pass plain data, or export the object so it travels by reference")

    def _encode_ref(self, ref: ObjectRef, out: bytearray) -> None:
        out += _TAG_REF
        for field in (ref.context_id, ref.oid, ref.interface, ref.policy):
            raw = field.encode("utf-8")
            out += _U32.pack(len(raw))
            out += raw
        out += _I64.pack(ref.epoch)

    # -- decoding ------------------------------------------------------------

    def decode(self, data: bytes) -> Any:
        """Decode wire bytes produced by :meth:`encode`."""
        value, offset = self._decode_from(data, 0)
        if offset != len(data):
            raise MarshalError(f"trailing garbage: {len(data) - offset} bytes")
        return value

    def _decode_from(self, data: bytes, offset: int) -> tuple[Any, int]:
        try:
            tag = data[offset:offset + 1]
            offset += 1
            if tag == _TAG_NONE:
                return None, offset
            if tag == _TAG_TRUE:
                return True, offset
            if tag == _TAG_FALSE:
                return False, offset
            if tag == _TAG_INT:
                (value,) = _I64.unpack_from(data, offset)
                return value, offset + 8
            if tag == _TAG_BIGINT:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                raw = data[offset:offset + length]
                return int.from_bytes(raw, "big", signed=True), offset + length
            if tag == _TAG_FLOAT:
                (value,) = _F64.unpack_from(data, offset)
                return value, offset + 8
            if tag == _TAG_STR:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                raw = data[offset:offset + length]
                if len(raw) != length:
                    raise MarshalError("truncated string")
                return raw.decode("utf-8"), offset + length
            if tag == _TAG_BYTES:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                raw = data[offset:offset + length]
                if len(raw) != length:
                    raise MarshalError("truncated bytes")
                return raw, offset + length
            if tag == _TAG_REF:
                return self._decode_ref(data, offset)
            if tag in (_TAG_LIST, _TAG_TUPLE, _TAG_SET, _TAG_FROZENSET):
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                items = []
                for _ in range(length):
                    item, offset = self._decode_from(data, offset)
                    items.append(item)
                if tag == _TAG_LIST:
                    return items, offset
                if tag == _TAG_TUPLE:
                    return tuple(items), offset
                if tag == _TAG_SET:
                    return set(items), offset
                return frozenset(items), offset
            if tag == _TAG_DICT:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                result = {}
                for _ in range(length):
                    key, offset = self._decode_from(data, offset)
                    val, offset = self._decode_from(data, offset)
                    result[key] = val
                return result, offset
        except (struct.error, IndexError) as exc:
            raise MarshalError(f"truncated wire data at offset {offset}") from exc
        raise MarshalError(f"unknown wire tag {tag!r} at offset {offset - 1}")

    def _decode_ref(self, data: bytes, offset: int) -> tuple[Any, int]:
        fields = []
        for _ in range(4):
            (length,) = _U32.unpack_from(data, offset)
            offset += 4
            raw = data[offset:offset + length]
            if len(raw) != length:
                raise MarshalError("truncated ref")
            fields.append(raw.decode("utf-8"))
            offset += length
        (epoch,) = _I64.unpack_from(data, offset)
        offset += 8
        ref = ObjectRef(fields[0], fields[1], fields[2], epoch, fields[3])
        if self.decoder_hook is not None:
            return self.decoder_hook(ref), offset
        return ref, offset


#: A hook-free marshaller, for layers that must see raw refs (naming, GC).
PLAIN = Marshaller()


def wire_size(value: Any) -> int:
    """Byte size of ``value`` on the wire (hook-free encoding)."""
    return len(PLAIN.encode(value))
