"""The wire format: a self-describing tagged binary encoding.

Hand-rolled (no ``pickle``) for three reasons: the byte count must be an
honest input to the network cost model; unmarshalling must never execute
arbitrary code; and the encoder needs *swizzle hooks* — the mechanism by
which the proxy principle is enforced.  When an exported object is about to
cross a context boundary, the encoder hook replaces it with an
:class:`~repro.wire.refs.ObjectRef`; the decoder hook on the far side turns
that ref into a proxy.  Application data passes by value.

Supported values: ``None``, ``bool``, ``int`` (arbitrary precision),
``float``, ``str``, ``bytes``, ``list``, ``tuple``, ``dict``, ``set``,
``frozenset``, :class:`ObjectRef`, plus anything the hooks translate.

Performance model (see DESIGN.md): encoding dispatches on the *exact* type
of each value through a table of fast encoders.  Values of a built-in
primitive or container type are **hook-exempt** — the swizzle hook cannot
replace a plain int or list (the object-space hook declines them by
definition), so consulting it per value is pure overhead on the hot path.
Hooks still see every value of any other type, including elements nested
inside containers, so reference swizzling is unaffected.  Encodings are
byte-for-byte identical to the naive encoder (the fuzz test in
``tests/wire/test_marshal_fastpath.py`` keeps the naive encoder around as
the reference implementation and asserts exactly that).  Small immutable
payloads — interned strings such as verbs, context ids and hot keys, and
small ints — additionally hit a bounded encode/decode memo, which is safe
precisely because the encoding of a primitive is a pure function of its
value.
"""

from __future__ import annotations

import struct
from typing import Any, Callable

from ..kernel.errors import MarshalError
from .refs import ObjectRef

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_BIGINT = b"I"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_TUPLE = b"t"
_TAG_DICT = b"d"
_TAG_SET = b"S"
_TAG_FROZENSET = b"Z"
_TAG_REF = b"R"

# Integer tag values for the decoder (indexing bytes yields ints; comparing
# ints beats slicing one-byte substrings on the hot path).
_ORD_NONE = _TAG_NONE[0]
_ORD_TRUE = _TAG_TRUE[0]
_ORD_FALSE = _TAG_FALSE[0]
_ORD_INT = _TAG_INT[0]
_ORD_BIGINT = _TAG_BIGINT[0]
_ORD_FLOAT = _TAG_FLOAT[0]
_ORD_STR = _TAG_STR[0]
_ORD_BYTES = _TAG_BYTES[0]
_ORD_LIST = _TAG_LIST[0]
_ORD_TUPLE = _TAG_TUPLE[0]
_ORD_DICT = _TAG_DICT[0]
_ORD_SET = _TAG_SET[0]
_ORD_FROZENSET = _TAG_FROZENSET[0]
_ORD_REF = _TAG_REF[0]

# Precomputed fragments for the frame fast path: every frame is an 8-element
# list, and its headers dict is empty on all but protocol-extension frames.
_LIST8_HEAD = _TAG_LIST + _U32.pack(8)
_EMPTY_DICT = _TAG_DICT + _U32.pack(0)

#: Encoder hook: given a value the base encoder cannot handle (or any
#: hook-eligible value — see the module docstring for exemptions), return a
#: replacement value or ``None`` to decline.
EncoderHook = Callable[[Any], Any]

#: Decoder hook: given a decoded :class:`ObjectRef`, return what application
#: code should see (a proxy).  Returning the ref unchanged is allowed.
DecoderHook = Callable[[ObjectRef], Any]

# -- encode/decode memos for identical small payloads --------------------------
#
# Verbs, context ids, frame kinds and hot application keys repeat endlessly;
# their encodings are pure functions of the value, so a bounded memo turns
# "utf-8 encode + length pack + two appends" into one dict hit.  Bounded so a
# pathological workload of unique strings cannot grow them without limit.

_MEMO_MAX_ENTRIES = 4096
_MEMO_MAX_STR = 64

_STR_ENC: dict[str, bytes] = {}
_STR_DEC: dict[bytes, str] = {}
_INT_ENC: dict[int, bytes] = {}


class Marshaller:
    """Encodes and decodes wire values, applying optional swizzle hooks."""

    def __init__(self, encoder_hook: EncoderHook | None = None,
                 decoder_hook: DecoderHook | None = None):
        self.encoder_hook = encoder_hook
        self.decoder_hook = decoder_hook

    # -- encoding ------------------------------------------------------------

    def encode(self, value: Any) -> bytes:
        """Encode ``value`` to wire bytes."""
        out = bytearray()
        self._encode_into(value, out)
        return bytes(out)

    def _encode_into(self, value: Any, out: bytearray) -> None:
        fast = _FAST_ENCODERS.get(value.__class__)
        if fast is not None:
            fast(self, value, out)
        else:
            self._encode_general(value, out)

    def _encode_general(self, value: Any, out: bytearray) -> None:
        """Hook consultation plus the full isinstance chain.

        This is the reference semantics the fast path must agree with; it
        also handles subclasses of the built-in types, which the exact-type
        dispatch table deliberately does not claim.
        """
        if self.encoder_hook is not None:
            replacement = self.encoder_hook(value)
            if replacement is not None and replacement is not value:
                value = replacement
        if value is None:
            out += _TAG_NONE
        elif value is True:
            out += _TAG_TRUE
        elif value is False:
            out += _TAG_FALSE
        elif isinstance(value, int):
            _enc_int(self, value, out)
        elif isinstance(value, float):
            out += _TAG_FLOAT
            out += _F64.pack(value)
        elif isinstance(value, str):
            _enc_str(self, value, out)
        elif isinstance(value, (bytes, bytearray, memoryview)):
            raw = bytes(value)
            out += _TAG_BYTES
            out += _U32.pack(len(raw))
            out += raw
        elif isinstance(value, ObjectRef):
            self._encode_ref(value, out)
        elif isinstance(value, list):
            _enc_list(self, value, out)
        elif isinstance(value, tuple):
            _enc_tuple(self, value, out)
        elif isinstance(value, dict):
            _enc_dict(self, value, out)
        elif isinstance(value, frozenset):
            _enc_frozenset(self, value, out)
        elif isinstance(value, set):
            _enc_set(self, value, out)
        else:
            raise MarshalError(
                f"cannot marshal {type(value).__name__!r} value {value!r}; "
                "pass plain data, or export the object so it travels by reference")

    # -- the frame fast path --------------------------------------------------

    def encode_frame_fields(self, kind: str, msg_id: int, src: str, dst: str,
                            target: str, verb: str, body: Any,
                            headers: dict) -> bytes:
        """Encode the 8-field frame list without materialising the list.

        Byte-identical to ``encode([kind, msg_id, src, dst, target, verb,
        body, headers])``.  The framing layer's one hot structure gets its
        own path: five memo-hit strings, one small int, the body, and an
        almost-always-empty headers dict.
        """
        out = bytearray(_LIST8_HEAD)
        cached = _STR_ENC.get(kind)
        if cached is not None:
            out += cached
        else:
            _enc_str(self, kind, out)
        cached = _INT_ENC.get(msg_id)
        if cached is not None:
            out += cached
        else:
            _enc_int(self, msg_id, out)
        for text in (src, dst, target, verb):
            cached = _STR_ENC.get(text)
            if cached is not None:
                out += cached
            else:
                _enc_str(self, text, out)
        self._encode_into(body, out)
        if headers.__class__ is dict and not headers:
            out += _EMPTY_DICT
        else:
            self._encode_into(headers, out)
        return bytes(out)

    def decode_frame_fields(self, data: bytes) -> list | None:
        """Decode an 8-field frame list encoded by :meth:`encode_frame_fields`.

        Returns the eight fields, or ``None`` when ``data`` is not an
        8-element list at all (the framing layer falls back to the generic
        decoder, whose error behaviour it preserves).  Raises
        :class:`MarshalError` on truncated or trailing bytes, exactly like
        :meth:`decode`.
        """
        if data[:5] != _LIST8_HEAD:
            return None
        offset = 5
        fields = []
        append = fields.append
        decode_from = self._decode_from
        try:
            for _ in range(8):
                sub = data[offset]
                if sub == _ORD_STR:
                    (slen,) = _U32.unpack_from(data, offset + 1)
                    start = offset + 5
                    raw = data[start:start + slen]
                    if len(raw) != slen:
                        raise MarshalError("truncated string")
                    item = _STR_DEC.get(raw)
                    if item is None:
                        item = raw.decode("utf-8")
                        if slen <= _MEMO_MAX_STR and \
                                len(_STR_DEC) < _MEMO_MAX_ENTRIES:
                            _STR_DEC[raw] = item
                    offset = start + slen
                elif sub == _ORD_INT:
                    (item,) = _I64.unpack_from(data, offset + 1)
                    offset += 9
                elif sub == _ORD_NONE:
                    item = None
                    offset += 1
                elif sub == _ORD_DICT and \
                        data[offset:offset + 5] == _EMPTY_DICT:
                    item = {}
                    offset += 5
                else:
                    item, offset = decode_from(data, offset)
                append(item)
        except (struct.error, IndexError) as exc:
            raise MarshalError(
                f"truncated wire data at offset {offset}") from exc
        if offset != len(data):
            raise MarshalError(f"trailing garbage: {len(data) - offset} bytes")
        return fields

    def _encode_ref(self, ref: ObjectRef, out: bytearray) -> None:
        out += _TAG_REF
        for field in (ref.context_id, ref.oid, ref.interface, ref.policy):
            raw = field.encode("utf-8")
            out += _U32.pack(len(raw))
            out += raw
        out += _I64.pack(ref.epoch)

    # -- decoding ------------------------------------------------------------

    def decode(self, data: bytes) -> Any:
        """Decode wire bytes produced by :meth:`encode`."""
        value, offset = self._decode_from(data, 0)
        if offset != len(data):
            raise MarshalError(f"trailing garbage: {len(data) - offset} bytes")
        return value

    def _decode_from(self, data: bytes, offset: int) -> tuple[Any, int]:
        try:
            tag = data[offset]
            offset += 1
            # Branches ordered by hot-path frequency: frames are mostly
            # strings and small ints inside lists/tuples/dicts.
            if tag == _ORD_STR:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                raw = data[offset:offset + length]
                if len(raw) != length:
                    raise MarshalError("truncated string")
                value = _STR_DEC.get(raw)
                if value is None:
                    value = raw.decode("utf-8")
                    if length <= _MEMO_MAX_STR and \
                            len(_STR_DEC) < _MEMO_MAX_ENTRIES:
                        _STR_DEC[raw] = value
                return value, offset + length
            if tag == _ORD_INT:
                (value,) = _I64.unpack_from(data, offset)
                return value, offset + 8
            if tag == _ORD_LIST or tag == _ORD_TUPLE or tag == _ORD_SET \
                    or tag == _ORD_FROZENSET:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                items = []
                append = items.append
                decode_from = self._decode_from
                # The str/int cases are inlined in the element loop: frames
                # are mostly short strings and small ints inside containers,
                # and the recursive call per element costs more than the
                # decode itself.
                for _ in range(length):
                    sub = data[offset]
                    if sub == _ORD_STR:
                        (slen,) = _U32.unpack_from(data, offset + 1)
                        start = offset + 5
                        raw = data[start:start + slen]
                        if len(raw) != slen:
                            raise MarshalError("truncated string")
                        item = _STR_DEC.get(raw)
                        if item is None:
                            item = raw.decode("utf-8")
                            if slen <= _MEMO_MAX_STR and \
                                    len(_STR_DEC) < _MEMO_MAX_ENTRIES:
                                _STR_DEC[raw] = item
                        offset = start + slen
                    elif sub == _ORD_INT:
                        (item,) = _I64.unpack_from(data, offset + 1)
                        offset += 9
                    elif sub == _ORD_NONE:
                        item = None
                        offset += 1
                    elif sub == _ORD_TRUE:
                        item = True
                        offset += 1
                    elif sub == _ORD_FALSE:
                        item = False
                        offset += 1
                    elif sub == _ORD_DICT and \
                            data[offset:offset + 5] == _EMPTY_DICT:
                        item = {}
                        offset += 5
                    else:
                        item, offset = decode_from(data, offset)
                    append(item)
                if tag == _ORD_LIST:
                    return items, offset
                if tag == _ORD_TUPLE:
                    return tuple(items), offset
                if tag == _ORD_SET:
                    return set(items), offset
                return frozenset(items), offset
            if tag == _ORD_DICT:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                result = {}
                decode_from = self._decode_from
                for _ in range(length):
                    sub = data[offset]
                    if sub == _ORD_STR:
                        (slen,) = _U32.unpack_from(data, offset + 1)
                        start = offset + 5
                        raw = data[start:start + slen]
                        if len(raw) != slen:
                            raise MarshalError("truncated string")
                        key = _STR_DEC.get(raw)
                        if key is None:
                            key = raw.decode("utf-8")
                            if slen <= _MEMO_MAX_STR and \
                                    len(_STR_DEC) < _MEMO_MAX_ENTRIES:
                                _STR_DEC[raw] = key
                        offset = start + slen
                    else:
                        key, offset = decode_from(data, offset)
                    val, offset = decode_from(data, offset)
                    result[key] = val
                return result, offset
            if tag == _ORD_NONE:
                return None, offset
            if tag == _ORD_TRUE:
                return True, offset
            if tag == _ORD_FALSE:
                return False, offset
            if tag == _ORD_FLOAT:
                (value,) = _F64.unpack_from(data, offset)
                return value, offset + 8
            if tag == _ORD_BYTES:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                raw = data[offset:offset + length]
                if len(raw) != length:
                    raise MarshalError("truncated bytes")
                return raw, offset + length
            if tag == _ORD_REF:
                return self._decode_ref(data, offset)
            if tag == _ORD_BIGINT:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                raw = data[offset:offset + length]
                return int.from_bytes(raw, "big", signed=True), offset + length
        except (struct.error, IndexError) as exc:
            raise MarshalError(f"truncated wire data at offset {offset}") from exc
        raise MarshalError(
            f"unknown wire tag {bytes((tag,))!r} at offset {offset - 1}")

    def _decode_ref(self, data: bytes, offset: int) -> tuple[Any, int]:
        fields = []
        for _ in range(4):
            (length,) = _U32.unpack_from(data, offset)
            offset += 4
            raw = data[offset:offset + length]
            if len(raw) != length:
                raise MarshalError("truncated ref")
            value = _STR_DEC.get(raw)
            if value is None:
                value = raw.decode("utf-8")
                if length <= _MEMO_MAX_STR and \
                        len(_STR_DEC) < _MEMO_MAX_ENTRIES:
                    _STR_DEC[raw] = value
            fields.append(value)
            offset += length
        (epoch,) = _I64.unpack_from(data, offset)
        offset += 8
        ref = ObjectRef(fields[0], fields[1], fields[2], epoch, fields[3])
        if self.decoder_hook is not None:
            return self.decoder_hook(ref), offset
        return ref, offset


# -- the fast encoders ---------------------------------------------------------
#
# One function per exact built-in type, dispatched from a table.  These are
# module-level (not methods) so the dispatch dict holds plain functions and
# the call site pays no bound-method construction.

def _enc_none(m: Marshaller, value, out: bytearray) -> None:
    out += _TAG_NONE


def _enc_bool(m: Marshaller, value, out: bytearray) -> None:
    out += _TAG_TRUE if value else _TAG_FALSE


def _enc_int(m: Marshaller, value: int, out: bytearray) -> None:
    cached = _INT_ENC.get(value)
    if cached is not None:
        out += cached
        return
    if -(2**63) <= value < 2**63:
        enc = _TAG_INT + _I64.pack(value)
    else:
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1,
                             "big", signed=True)
        enc = _TAG_BIGINT + _U32.pack(len(raw)) + raw
    if len(_INT_ENC) < _MEMO_MAX_ENTRIES:
        _INT_ENC[value] = enc
    out += enc


def _enc_float(m: Marshaller, value: float, out: bytearray) -> None:
    out += _TAG_FLOAT
    out += _F64.pack(value)


def _enc_str(m: Marshaller, value: str, out: bytearray) -> None:
    cached = _STR_ENC.get(value)
    if cached is None:
        raw = value.encode("utf-8")
        cached = _TAG_STR + _U32.pack(len(raw)) + raw
        if len(value) <= _MEMO_MAX_STR and len(_STR_ENC) < _MEMO_MAX_ENTRIES:
            _STR_ENC[value] = cached
    out += cached


def _enc_bytes(m: Marshaller, value: bytes, out: bytearray) -> None:
    out += _TAG_BYTES
    out += _U32.pack(len(value))
    out += value


def _enc_bytelike(m: Marshaller, value, out: bytearray) -> None:
    raw = bytes(value)
    out += _TAG_BYTES
    out += _U32.pack(len(raw))
    out += raw


def _enc_list(m: Marshaller, value: list, out: bytearray) -> None:
    out += _TAG_LIST
    out += _U32.pack(len(value))
    # Memo-hit strings and ints are appended inline: container elements are
    # overwhelmingly repeated short strings (verbs, context ids, keys) and
    # small ints, and the dispatch call per element dwarfs the append.
    for item in value:
        cls = item.__class__
        if cls is str:
            cached = _STR_ENC.get(item)
            if cached is not None:
                out += cached
            else:
                _enc_str(m, item, out)
        elif cls is int:
            cached = _INT_ENC.get(item)
            if cached is not None:
                out += cached
            else:
                _enc_int(m, item, out)
        elif item is None:
            out += _TAG_NONE
        elif cls is dict and not item:
            out += _EMPTY_DICT
        else:
            fast = _FAST_ENCODERS.get(cls)
            if fast is not None:
                fast(m, item, out)
            else:
                m._encode_general(item, out)


def _enc_tuple(m: Marshaller, value: tuple, out: bytearray) -> None:
    out += _TAG_TUPLE
    out += _U32.pack(len(value))
    for item in value:
        cls = item.__class__
        if cls is str:
            cached = _STR_ENC.get(item)
            if cached is not None:
                out += cached
            else:
                _enc_str(m, item, out)
        elif cls is int:
            cached = _INT_ENC.get(item)
            if cached is not None:
                out += cached
            else:
                _enc_int(m, item, out)
        elif item is None:
            out += _TAG_NONE
        elif cls is dict and not item:
            out += _EMPTY_DICT
        else:
            fast = _FAST_ENCODERS.get(cls)
            if fast is not None:
                fast(m, item, out)
            else:
                m._encode_general(item, out)


def _enc_dict(m: Marshaller, value: dict, out: bytearray) -> None:
    out += _TAG_DICT
    out += _U32.pack(len(value))
    encode_into = m._encode_into
    for key, val in value.items():
        if key.__class__ is str:
            cached = _STR_ENC.get(key)
            if cached is not None:
                out += cached
            else:
                _enc_str(m, key, out)
        else:
            encode_into(key, out)
        cls = val.__class__
        if cls is str:
            cached = _STR_ENC.get(val)
            if cached is not None:
                out += cached
            else:
                _enc_str(m, val, out)
        elif cls is int:
            cached = _INT_ENC.get(val)
            if cached is not None:
                out += cached
            else:
                _enc_int(m, val, out)
        else:
            encode_into(val, out)


def _enc_set(m: Marshaller, value: set, out: bytearray) -> None:
    out += _TAG_SET
    out += _U32.pack(len(value))
    encode_into = m._encode_into
    for item in sorted(value, key=repr):
        encode_into(item, out)


def _enc_frozenset(m: Marshaller, value: frozenset, out: bytearray) -> None:
    out += _TAG_FROZENSET
    out += _U32.pack(len(value))
    encode_into = m._encode_into
    for item in sorted(value, key=repr):
        encode_into(item, out)


def _enc_ref(m: Marshaller, value: ObjectRef, out: bytearray) -> None:
    m._encode_ref(value, out)


#: Exact-type dispatch table.  A type listed here is hook-exempt: the swizzle
#: hook can never replace a value of a plain built-in type (the object-space
#: hook declines them by definition), and :class:`ObjectRef` is already the
#: hook's *output*.  Subclasses fall through to :meth:`_encode_general`,
#: which preserves the original hook-first semantics for them.
_FAST_ENCODERS: dict[type, Callable] = {
    type(None): _enc_none,
    bool: _enc_bool,
    int: _enc_int,
    float: _enc_float,
    str: _enc_str,
    bytes: _enc_bytes,
    bytearray: _enc_bytelike,
    memoryview: _enc_bytelike,
    list: _enc_list,
    tuple: _enc_tuple,
    dict: _enc_dict,
    set: _enc_set,
    frozenset: _enc_frozenset,
    ObjectRef: _enc_ref,
}


#: A hook-free marshaller, for layers that must see raw refs (naming, GC).
PLAIN = Marshaller()


def wire_size(value: Any) -> int:
    """Byte size of ``value`` on the wire (hook-free encoding)."""
    return len(PLAIN.encode(value))
