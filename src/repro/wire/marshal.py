"""The wire format: a self-describing tagged binary encoding.

Hand-rolled (no ``pickle``) for three reasons: the byte count must be an
honest input to the network cost model; unmarshalling must never execute
arbitrary code; and the encoder needs *swizzle hooks* — the mechanism by
which the proxy principle is enforced.  When an exported object is about to
cross a context boundary, the encoder hook replaces it with an
:class:`~repro.wire.refs.ObjectRef`; the decoder hook on the far side turns
that ref into a proxy.  Application data passes by value.

Supported values: ``None``, ``bool``, ``int`` (arbitrary precision),
``float``, ``str``, ``bytes``, ``list``, ``tuple``, ``dict``, ``set``,
``frozenset``, :class:`ObjectRef`, plus anything the hooks translate.

Performance model (see DESIGN.md): encoding dispatches on the *exact* type
of each value through a table of fast encoders.  Values of a built-in
primitive or container type are **hook-exempt** — the swizzle hook cannot
replace a plain int or list (the object-space hook declines them by
definition), so consulting it per value is pure overhead on the hot path.
Hooks still see every value of any other type, including elements nested
inside containers, so reference swizzling is unaffected.  Encodings are
byte-for-byte identical to the naive encoder (the fuzz test in
``tests/wire/test_marshal_fastpath.py`` keeps the naive encoder around as
the reference implementation and asserts exactly that).  Small immutable
payloads — interned strings such as verbs, context ids and hot keys, and
small ints — additionally hit a bounded encode/decode memo, which is safe
precisely because the encoding of a primitive is a pure function of its
value.  The memos evict FIFO at capacity and export hit/size counters
(:func:`memo_stats`, surfaced via :mod:`repro.metrics`).

Two message-level fast paths sit on top (both byte-transparent on the
wire — see ``wire/segments.py`` and DESIGN.md's zero-copy subsection):

* **raw segments** — a ``bytes``/``bytearray``/``memoryview`` payload of
  at least :data:`RAW_THRESHOLD` bytes encodes as a 5-byte marker (same
  overhead as the inline bytes tag, so wire sizes and therefore virtual
  timings are unchanged) while the payload object rides a segment list,
  uncopied.  Exact built-in types only: subclasses keep the legacy
  hook-first copying path, so swizzle semantics are untouched.
* **frame templates + carried decode** — a *pure* frame (empty headers,
  deeply-immutable body) has a hook-independent encoding, so the encoded
  suffix is memoised per ``(kind, src, dst, target, verb, body)`` and
  the decoded fields ride along with the message; the receiver rebuilds
  the frame without running the decoder at all.
"""

from __future__ import annotations

import struct
from typing import Any, Callable

from ..kernel.errors import MarshalError
from .refs import ObjectRef
from .segments import WireMessage

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_BIGINT = b"I"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_TUPLE = b"t"
_TAG_DICT = b"d"
_TAG_SET = b"S"
_TAG_FROZENSET = b"Z"
_TAG_REF = b"R"
_TAG_RAW = b"r"

# Integer tag values for the decoder (indexing bytes yields ints; comparing
# ints beats slicing one-byte substrings on the hot path).
_ORD_NONE = _TAG_NONE[0]
_ORD_TRUE = _TAG_TRUE[0]
_ORD_FALSE = _TAG_FALSE[0]
_ORD_INT = _TAG_INT[0]
_ORD_BIGINT = _TAG_BIGINT[0]
_ORD_FLOAT = _TAG_FLOAT[0]
_ORD_STR = _TAG_STR[0]
_ORD_BYTES = _TAG_BYTES[0]
_ORD_LIST = _TAG_LIST[0]
_ORD_TUPLE = _TAG_TUPLE[0]
_ORD_DICT = _TAG_DICT[0]
_ORD_SET = _TAG_SET[0]
_ORD_FROZENSET = _TAG_FROZENSET[0]
_ORD_REF = _TAG_REF[0]
_ORD_RAW = _TAG_RAW[0]

#: Bulk payloads at least this long take the zero-copy raw-segment path
#: when encoding through :meth:`Marshaller.encode_frame_message`.  Below
#: it the inline bytes encoding is byte-identical to the legacy path.
#: The marker costs exactly as many wire bytes as the inline tag (1 tag
#: + 4 length), so the threshold is invisible to the cost model.
RAW_THRESHOLD = 4096

# Precomputed fragments for the frame fast path: every frame is an 8-element
# list, and its headers dict is empty on all but protocol-extension frames.
_LIST8_HEAD = _TAG_LIST + _U32.pack(8)
_EMPTY_DICT = _TAG_DICT + _U32.pack(0)

#: Encoder hook: given a value the base encoder cannot handle (or any
#: hook-eligible value — see the module docstring for exemptions), return a
#: replacement value or ``None`` to decline.
EncoderHook = Callable[[Any], Any]

#: Decoder hook: given a decoded :class:`ObjectRef`, return what application
#: code should see (a proxy).  Returning the ref unchanged is allowed.
DecoderHook = Callable[[ObjectRef], Any]

# -- encode/decode memos for identical small payloads --------------------------
#
# Verbs, context ids, frame kinds and hot application keys repeat endlessly;
# their encodings are pure functions of the value, so a bounded memo turns
# "utf-8 encode + length pack + two appends" into one dict hit.  Bounded so a
# pathological workload of unique strings cannot grow them without limit:
# at capacity the oldest entry is evicted FIFO (dicts iterate in insertion
# order), so a churning workload recycles slots instead of freezing the
# memo with its first 4096 values.

_MEMO_MAX_ENTRIES = 4096
_MEMO_MAX_STR = 64

_STR_ENC: dict[str, bytes] = {}
_STR_DEC: dict[bytes, str] = {}
_INT_ENC: dict[int, bytes] = {}

#: Encoded-suffix memo for pure frames, keyed
#: ``(kind, src, dst, target, verb, payload, is_pair)`` — see
#: :meth:`Marshaller.encode_frame_message`.  Safe globally (across all
#: marshaller instances) because a pure frame's encoding is
#: hook-independent by construction.
_TMPL_ENC: dict[tuple, tuple] = {}


class MemoStats:
    """Hit/miss/eviction counters for the marshalling memos.

    Monotonic since process start (or the last :func:`reset_memo_stats`);
    surfaced through :func:`memo_stats` and re-exported by
    :mod:`repro.metrics`.  Counters live off the trace/cost model — they
    observe the simulator, they never feed it.
    """

    __slots__ = ("str_enc_hits", "str_enc_misses", "str_dec_hits",
                 "str_dec_misses", "int_enc_hits", "int_enc_misses",
                 "tmpl_hits", "tmpl_misses", "evictions")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.str_enc_hits = 0
        self.str_enc_misses = 0
        self.str_dec_hits = 0
        self.str_dec_misses = 0
        self.int_enc_hits = 0
        self.int_enc_misses = 0
        self.tmpl_hits = 0
        self.tmpl_misses = 0
        self.evictions = 0


_MEMO_STATS = MemoStats()


def _memo_put(memo: dict, key, value) -> None:
    """Insert with FIFO eviction at capacity (all memos share the bound)."""
    if len(memo) >= _MEMO_MAX_ENTRIES:
        del memo[next(iter(memo))]
        _MEMO_STATS.evictions += 1
    memo[key] = value


def memo_stats() -> dict:
    """Counter snapshot plus live sizes of every marshalling memo."""
    stats = _MEMO_STATS
    return {
        "str_enc_hits": stats.str_enc_hits,
        "str_enc_misses": stats.str_enc_misses,
        "str_dec_hits": stats.str_dec_hits,
        "str_dec_misses": stats.str_dec_misses,
        "int_enc_hits": stats.int_enc_hits,
        "int_enc_misses": stats.int_enc_misses,
        "tmpl_hits": stats.tmpl_hits,
        "tmpl_misses": stats.tmpl_misses,
        "evictions": stats.evictions,
        "str_enc_size": len(_STR_ENC),
        "str_dec_size": len(_STR_DEC),
        "int_enc_size": len(_INT_ENC),
        "tmpl_size": len(_TMPL_ENC),
        "max_entries": _MEMO_MAX_ENTRIES,
    }


def reset_memo_stats() -> None:
    """Zero the counters (test isolation; the memos themselves persist)."""
    _MEMO_STATS.reset()


def clear_memos() -> None:
    """Empty every memo (tests that probe cold-cache behaviour)."""
    _STR_ENC.clear()
    _STR_DEC.clear()
    _INT_ENC.clear()
    _TMPL_ENC.clear()


#: Leaf types whose values the swizzle hooks can never replace and whose
#: identity may be shared safely across context boundaries.
_IMMUTABLE_LEAVES = frozenset(
    {type(None), bool, int, float, str, bytes})


def deeply_immutable(value) -> bool:
    """Exact-type deep immutability: scalars/bytes/str and tuples thereof.

    Deliberately strict — subclasses fail the test so hook-eligible
    values never ride the carried-decode path, and mutable containers
    fail it so no mutable object is ever shared between contexts.
    """
    cls = value.__class__
    if cls in _IMMUTABLE_LEAVES:
        return True
    if cls is tuple:
        for item in value:
            icls = item.__class__
            if icls in _IMMUTABLE_LEAVES:
                continue
            if icls is not tuple or not deeply_immutable(item):
                return False
        return True
    return False


def _typed_key(value):
    """Hashable exact-type memo key for a deeply-immutable value, or
    ``None`` when the value is not deeply immutable.

    Plain values are unusable as template keys directly: Python dicts
    treat ``True``, ``1`` and ``1.0`` as the same key (and ``0.0`` as
    ``-0.0``), so a template recorded for one would silently serve the
    others — wrong tag on the wire, wrong carried value at the receiver.
    Every leaf is therefore paired with its exact class, and floats are
    keyed by their bit pattern.
    """
    cls = value.__class__
    if cls is tuple:
        # Iterative walk of the overwhelmingly common shape — a flat
        # tuple of leaves — recursing only for nested tuples.
        leaves = _IMMUTABLE_LEAVES
        parts = []
        for item in value:
            icls = item.__class__
            if icls in leaves:
                if icls is float:
                    parts.append((icls, _F64.pack(item)))
                else:
                    parts.append((icls, item))
            elif icls is tuple:
                k = _typed_key(item)
                if k is None:
                    return None
                parts.append(k)
            else:
                return None
        return (tuple, tuple(parts))
    if cls in _IMMUTABLE_LEAVES:
        if cls is float:
            return (cls, _F64.pack(value))
        return (cls, value)
    return None


class Marshaller:
    """Encodes and decodes wire values, applying optional swizzle hooks."""

    def __init__(self, encoder_hook: EncoderHook | None = None,
                 decoder_hook: DecoderHook | None = None,
                 raw_threshold: int | None = None):
        self.encoder_hook = encoder_hook
        self.decoder_hook = decoder_hook
        #: Minimum payload size for the zero-copy raw-segment path; only
        #: consulted while :meth:`encode_frame_message` is active.
        self._raw_min = RAW_THRESHOLD if raw_threshold is None \
            else raw_threshold
        # Per-message codec state.  ``_segs`` collects (offset, payload)
        # pairs while a message encode is in flight (None otherwise —
        # plain ``encode`` never emits raw markers, keeping its output
        # byte-identical to the legacy format).  ``_split`` holds the
        # inbound segment tuple while a message decode is in flight.
        self._segs: list | None = None
        self._split: tuple | None = None
        self._split_idx = 0

    # -- encoding ------------------------------------------------------------

    def encode(self, value: Any) -> bytes:
        """Encode ``value`` to wire bytes."""
        out = bytearray()
        self._encode_into(value, out)
        return bytes(out)

    def _encode_into(self, value: Any, out: bytearray) -> None:
        fast = _FAST_ENCODERS.get(value.__class__)
        if fast is not None:
            fast(self, value, out)
        else:
            self._encode_general(value, out)

    def _encode_general(self, value: Any, out: bytearray) -> None:
        """Hook consultation plus the full isinstance chain.

        This is the reference semantics the fast path must agree with; it
        also handles subclasses of the built-in types, which the exact-type
        dispatch table deliberately does not claim.
        """
        if self.encoder_hook is not None:
            replacement = self.encoder_hook(value)
            if replacement is not None and replacement is not value:
                value = replacement
        if value is None:
            out += _TAG_NONE
        elif value is True:
            out += _TAG_TRUE
        elif value is False:
            out += _TAG_FALSE
        elif isinstance(value, int):
            _enc_int(self, value, out)
        elif isinstance(value, float):
            out += _TAG_FLOAT
            out += _F64.pack(value)
        elif isinstance(value, str):
            _enc_str(self, value, out)
        elif isinstance(value, (bytes, bytearray, memoryview)):
            raw = bytes(value)
            out += _TAG_BYTES
            out += _U32.pack(len(raw))
            out += raw
        elif isinstance(value, ObjectRef):
            self._encode_ref(value, out)
        elif isinstance(value, list):
            _enc_list(self, value, out)
        elif isinstance(value, tuple):
            _enc_tuple(self, value, out)
        elif isinstance(value, dict):
            _enc_dict(self, value, out)
        elif isinstance(value, frozenset):
            _enc_frozenset(self, value, out)
        elif isinstance(value, set):
            _enc_set(self, value, out)
        else:
            raise MarshalError(
                f"cannot marshal {type(value).__name__!r} value {value!r}; "
                "pass plain data, or export the object so it travels by reference")

    # -- the frame fast path --------------------------------------------------

    def encode_frame_fields(self, kind: str, msg_id: int, src: str, dst: str,
                            target: str, verb: str, body: Any,
                            headers: dict) -> bytes:
        """Encode the 8-field frame list without materialising the list.

        Byte-identical to ``encode([kind, msg_id, src, dst, target, verb,
        body, headers])``.  The framing layer's one hot structure gets its
        own path: five memo-hit strings, one small int, the body, and an
        almost-always-empty headers dict.
        """
        stats = _MEMO_STATS
        out = bytearray(_LIST8_HEAD)
        cached = _STR_ENC.get(kind)
        if cached is not None:
            stats.str_enc_hits += 1
            out += cached
        else:
            _enc_str(self, kind, out)
        cached = _INT_ENC.get(msg_id)
        if cached is not None:
            stats.int_enc_hits += 1
            out += cached
        elif 0 <= msg_id < 2**63:
            # Minted message ids are sequential and never repeat, so
            # memoising them would be pure churn: pack without inserting.
            out += _TAG_INT
            out += _I64.pack(msg_id)
        else:
            _enc_int(self, msg_id, out)
        for text in (src, dst, target, verb):
            cached = _STR_ENC.get(text)
            if cached is not None:
                stats.str_enc_hits += 1
                out += cached
            else:
                _enc_str(self, text, out)
        self._encode_into(body, out)
        if headers.__class__ is dict and not headers:
            out += _EMPTY_DICT
        else:
            self._encode_into(headers, out)
        return bytes(out)

    def decode_frame_fields(self, data: bytes) -> list | None:
        """Decode an 8-field frame list encoded by :meth:`encode_frame_fields`.

        Returns the eight fields, or ``None`` when ``data`` is not an
        8-element list at all (the framing layer falls back to the generic
        decoder, whose error behaviour it preserves).  Raises
        :class:`MarshalError` on truncated or trailing bytes, exactly like
        :meth:`decode`.
        """
        if data[:5] != _LIST8_HEAD:
            return None
        offset = 5
        fields = []
        append = fields.append
        decode_from = self._decode_from
        try:
            for _ in range(8):
                sub = data[offset]
                if sub == _ORD_STR:
                    (slen,) = _U32.unpack_from(data, offset + 1)
                    start = offset + 5
                    raw = data[start:start + slen]
                    if len(raw) != slen:
                        raise MarshalError("truncated string")
                    item = _STR_DEC.get(raw)
                    if item is None:
                        _MEMO_STATS.str_dec_misses += 1
                        item = raw.decode("utf-8")
                        if slen <= _MEMO_MAX_STR:
                            _memo_put(_STR_DEC, raw, item)
                    else:
                        _MEMO_STATS.str_dec_hits += 1
                    offset = start + slen
                elif sub == _ORD_INT:
                    (item,) = _I64.unpack_from(data, offset + 1)
                    offset += 9
                elif sub == _ORD_NONE:
                    item = None
                    offset += 1
                elif sub == _ORD_DICT and \
                        data[offset:offset + 5] == _EMPTY_DICT:
                    item = {}
                    offset += 5
                else:
                    item, offset = decode_from(data, offset)
                append(item)
        except (struct.error, IndexError) as exc:
            raise MarshalError(
                f"truncated wire data at offset {offset}") from exc
        if offset != len(data):
            raise MarshalError(f"trailing garbage: {len(data) - offset} bytes")
        return fields

    # -- the message fast path (zero-copy + carried decode) --------------------

    def encode_frame_message(self, kind: str, msg_id: int, src: str,
                             dst: str, target: str, verb: str, body: Any,
                             headers: dict):
        """Encode one frame, returning ``bytes`` or a :class:`WireMessage`.

        Three outcomes, all carrying byte-identical wire images:

        * no bulk payloads, impure frame → plain ``bytes``, exactly what
          :meth:`encode_frame_fields` produces;
        * bulk payloads → a :class:`WireMessage` whose segments hold the
          payload objects uncopied;
        * *pure* frame (empty headers, deeply-immutable body) → a
          :class:`WireMessage` whose ``carried`` tuple lets the receiver
          skip the decoder; the encoded suffix is memoised so repeat
          sends of the same logical frame cost one concatenation.
        """
        pure = None
        pkey = None
        if headers.__class__ is dict and not headers:
            if body.__class__ is tuple and len(body) == 2 \
                    and body[0].__class__ is tuple \
                    and body[1].__class__ is dict and not body[1]:
                # A request/oneway body ``(args, {})``: carry the args
                # tuple alone and let the receiver pair it with a fresh
                # kwargs dict, so no mutable object is ever shared.
                pkey = _typed_key(body[0])
                if pkey is not None:
                    pure = (body[0], True)
            else:
                pkey = _typed_key(body)
                if pkey is not None:
                    pure = (body, False)
        key = None
        if pure is not None and 0 <= msg_id < 2**63:
            payload, is_pair = pure
            key = (kind, src, dst, target, verb, pkey, is_pair)
            tmpl = _TMPL_ENC.get(key)
            if tmpl is not None:
                _MEMO_STATS.tmpl_hits += 1
                prefix, suffix, segments, nbytes = tmpl
                # Minted ids are sequential and mostly cold in _INT_ENC;
                # packing outright beats probing the memo first.
                mid = _TAG_INT + _I64.pack(msg_id)
                return WireMessage(
                    prefix + mid + suffix, segments, nbytes,
                    (kind, msg_id, src, dst, target, verb, payload,
                     is_pair))
            _MEMO_STATS.tmpl_misses += 1
        self._segs = segs = []
        try:
            head = self.encode_frame_fields(kind, msg_id, src, dst,
                                            target, verb, body, headers)
        finally:
            self._segs = None
        if pure is None:
            if not segs:
                return head
            segments = tuple(segs)
            nbytes = len(head) + sum(
                p.nbytes if p.__class__ is memoryview else len(p)
                for _, p in segments)
            return WireMessage(head, segments, nbytes, None)
        payload, is_pair = pure
        segments = tuple(segs)
        nbytes = len(head) + sum(len(p) for _, p in segments)
        carried = (kind, msg_id, src, dst, target, verb, payload, is_pair)
        if key is not None and 0 <= msg_id < 2**63:
            # Split the head around the (fixed-width) msg_id so a
            # template hit only re-encodes that one field.  Segment
            # offsets stay valid across hits: the prefix and the 9-byte
            # int field never change length.
            cached = _STR_ENC.get(kind)
            if cached is None:
                raw = kind.encode("utf-8")
                cached = _TAG_STR + _U32.pack(len(raw)) + raw
            plen = len(_LIST8_HEAD) + len(cached)
            _memo_put(_TMPL_ENC, key,
                      (head[:plen], head[plen + 9:], segments, nbytes))
        return WireMessage(head, segments, nbytes, carried)

    def decode_frame_message(self, msg: WireMessage):
        """Decode a :class:`WireMessage` produced by
        :meth:`encode_frame_message`; returns the frame field list (or
        whatever the generic decoder yields for a non-frame head, so the
        framing layer's error behaviour is preserved).
        """
        self._split = msg.segments
        self._split_idx = 0
        try:
            fields = self.decode_frame_fields(msg.head)
            if fields is None:
                fields = self.decode(msg.head)
            if self._split_idx != len(msg.segments):
                raise MarshalError(
                    f"{len(msg.segments) - self._split_idx} raw "
                    f"segments unconsumed after decode")
        finally:
            self._split = None
            self._split_idx = 0
        return fields

    def _encode_ref(self, ref: ObjectRef, out: bytearray) -> None:
        out += _TAG_REF
        for field in (ref.context_id, ref.oid, ref.interface, ref.policy):
            raw = field.encode("utf-8")
            out += _U32.pack(len(raw))
            out += raw
        out += _I64.pack(ref.epoch)

    # -- decoding ------------------------------------------------------------

    def decode(self, data: bytes) -> Any:
        """Decode wire bytes produced by :meth:`encode`."""
        value, offset = self._decode_from(data, 0)
        if offset != len(data):
            raise MarshalError(f"trailing garbage: {len(data) - offset} bytes")
        return value

    def _decode_from(self, data: bytes, offset: int) -> tuple[Any, int]:
        try:
            tag = data[offset]
            offset += 1
            # Branches ordered by hot-path frequency: frames are mostly
            # strings and small ints inside lists/tuples/dicts.
            if tag == _ORD_STR:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                raw = data[offset:offset + length]
                if len(raw) != length:
                    raise MarshalError("truncated string")
                value = _STR_DEC.get(raw)
                if value is None:
                    _MEMO_STATS.str_dec_misses += 1
                    value = raw.decode("utf-8")
                    if length <= _MEMO_MAX_STR:
                        _memo_put(_STR_DEC, raw, value)
                else:
                    _MEMO_STATS.str_dec_hits += 1
                return value, offset + length
            if tag == _ORD_INT:
                (value,) = _I64.unpack_from(data, offset)
                return value, offset + 8
            if tag == _ORD_LIST or tag == _ORD_TUPLE or tag == _ORD_SET \
                    or tag == _ORD_FROZENSET:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                items = []
                append = items.append
                decode_from = self._decode_from
                # The str/int cases are inlined in the element loop: frames
                # are mostly short strings and small ints inside containers,
                # and the recursive call per element costs more than the
                # decode itself.
                for _ in range(length):
                    sub = data[offset]
                    if sub == _ORD_STR:
                        (slen,) = _U32.unpack_from(data, offset + 1)
                        start = offset + 5
                        raw = data[start:start + slen]
                        if len(raw) != slen:
                            raise MarshalError("truncated string")
                        item = _STR_DEC.get(raw)
                        if item is None:
                            _MEMO_STATS.str_dec_misses += 1
                            item = raw.decode("utf-8")
                            if slen <= _MEMO_MAX_STR:
                                _memo_put(_STR_DEC, raw, item)
                        else:
                            _MEMO_STATS.str_dec_hits += 1
                        offset = start + slen
                    elif sub == _ORD_INT:
                        (item,) = _I64.unpack_from(data, offset + 1)
                        offset += 9
                    elif sub == _ORD_NONE:
                        item = None
                        offset += 1
                    elif sub == _ORD_TRUE:
                        item = True
                        offset += 1
                    elif sub == _ORD_FALSE:
                        item = False
                        offset += 1
                    elif sub == _ORD_DICT and \
                            data[offset:offset + 5] == _EMPTY_DICT:
                        item = {}
                        offset += 5
                    else:
                        item, offset = decode_from(data, offset)
                    append(item)
                if tag == _ORD_LIST:
                    return items, offset
                if tag == _ORD_TUPLE:
                    return tuple(items), offset
                if tag == _ORD_SET:
                    return set(items), offset
                return frozenset(items), offset
            if tag == _ORD_DICT:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                result = {}
                decode_from = self._decode_from
                for _ in range(length):
                    sub = data[offset]
                    if sub == _ORD_STR:
                        (slen,) = _U32.unpack_from(data, offset + 1)
                        start = offset + 5
                        raw = data[start:start + slen]
                        if len(raw) != slen:
                            raise MarshalError("truncated string")
                        key = _STR_DEC.get(raw)
                        if key is None:
                            _MEMO_STATS.str_dec_misses += 1
                            key = raw.decode("utf-8")
                            if slen <= _MEMO_MAX_STR:
                                _memo_put(_STR_DEC, raw, key)
                        else:
                            _MEMO_STATS.str_dec_hits += 1
                        offset = start + slen
                    else:
                        key, offset = decode_from(data, offset)
                    val, offset = decode_from(data, offset)
                    result[key] = val
                return result, offset
            if tag == _ORD_NONE:
                return None, offset
            if tag == _ORD_TRUE:
                return True, offset
            if tag == _ORD_FALSE:
                return False, offset
            if tag == _ORD_FLOAT:
                (value,) = _F64.unpack_from(data, offset)
                return value, offset + 8
            if tag == _ORD_BYTES:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                raw = data[offset:offset + length]
                if len(raw) != length:
                    raise MarshalError("truncated bytes")
                return raw, offset + length
            if tag == _ORD_RAW:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                split = self._split
                if split is None:
                    # Contiguous wire image (``WireMessage.to_bytes``):
                    # the payload sits inline after its marker, exactly
                    # like the bytes tag.
                    raw = data[offset:offset + length]
                    if len(raw) != length:
                        raise MarshalError("truncated raw segment")
                    return raw, offset + length
                idx = self._split_idx
                if idx >= len(split):
                    raise MarshalError(
                        "raw marker without a matching segment")
                self._split_idx = idx + 1
                seg = split[idx][1]
                if seg.__class__ is not bytes:
                    # Mutable payloads (bytearray/memoryview) materialise
                    # exactly once, here, so the receiver never aliases a
                    # buffer the sender could still write.
                    seg = bytes(seg)
                if len(seg) != length:
                    raise MarshalError(
                        f"raw segment length mismatch: marker says "
                        f"{length}, segment has {len(seg)}")
                return seg, offset
            if tag == _ORD_REF:
                return self._decode_ref(data, offset)
            if tag == _ORD_BIGINT:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                raw = data[offset:offset + length]
                return int.from_bytes(raw, "big", signed=True), offset + length
        except (struct.error, IndexError) as exc:
            raise MarshalError(f"truncated wire data at offset {offset}") from exc
        raise MarshalError(
            f"unknown wire tag {bytes((tag,))!r} at offset {offset - 1}")

    def _decode_ref(self, data: bytes, offset: int) -> tuple[Any, int]:
        fields = []
        for _ in range(4):
            (length,) = _U32.unpack_from(data, offset)
            offset += 4
            raw = data[offset:offset + length]
            if len(raw) != length:
                raise MarshalError("truncated ref")
            value = _STR_DEC.get(raw)
            if value is None:
                _MEMO_STATS.str_dec_misses += 1
                value = raw.decode("utf-8")
                if length <= _MEMO_MAX_STR:
                    _memo_put(_STR_DEC, raw, value)
            else:
                _MEMO_STATS.str_dec_hits += 1
            fields.append(value)
            offset += length
        (epoch,) = _I64.unpack_from(data, offset)
        offset += 8
        ref = ObjectRef(fields[0], fields[1], fields[2], epoch, fields[3])
        if self.decoder_hook is not None:
            return self.decoder_hook(ref), offset
        return ref, offset


# -- the fast encoders ---------------------------------------------------------
#
# One function per exact built-in type, dispatched from a table.  These are
# module-level (not methods) so the dispatch dict holds plain functions and
# the call site pays no bound-method construction.

def _enc_none(m: Marshaller, value, out: bytearray) -> None:
    out += _TAG_NONE


def _enc_bool(m: Marshaller, value, out: bytearray) -> None:
    out += _TAG_TRUE if value else _TAG_FALSE


def _enc_int(m: Marshaller, value: int, out: bytearray) -> None:
    cached = _INT_ENC.get(value)
    if cached is not None:
        _MEMO_STATS.int_enc_hits += 1
        out += cached
        return
    _MEMO_STATS.int_enc_misses += 1
    if -(2**63) <= value < 2**63:
        enc = _TAG_INT + _I64.pack(value)
    else:
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1,
                             "big", signed=True)
        enc = _TAG_BIGINT + _U32.pack(len(raw)) + raw
    _memo_put(_INT_ENC, value, enc)
    out += enc


def _enc_float(m: Marshaller, value: float, out: bytearray) -> None:
    out += _TAG_FLOAT
    out += _F64.pack(value)


def _enc_str(m: Marshaller, value: str, out: bytearray) -> None:
    cached = _STR_ENC.get(value)
    if cached is None:
        _MEMO_STATS.str_enc_misses += 1
        raw = value.encode("utf-8")
        cached = _TAG_STR + _U32.pack(len(raw)) + raw
        if len(value) <= _MEMO_MAX_STR:
            _memo_put(_STR_ENC, value, cached)
    else:
        _MEMO_STATS.str_enc_hits += 1
    out += cached


def _enc_bytes(m: Marshaller, value: bytes, out: bytearray) -> None:
    size = len(value)
    segs = m._segs
    if segs is not None and size >= m._raw_min:
        # Zero-copy bulk path: 5-byte marker in the head (identical wire
        # cost to the inline tag), payload object parked uncopied.
        out += _TAG_RAW
        out += _U32.pack(size)
        segs.append((len(out), value))
        return
    out += _TAG_BYTES
    out += _U32.pack(size)
    out += value


def _enc_bytelike(m: Marshaller, value, out: bytearray) -> None:
    size = value.nbytes if value.__class__ is memoryview else len(value)
    segs = m._segs
    if segs is not None and size >= m._raw_min:
        out += _TAG_RAW
        out += _U32.pack(size)
        segs.append((len(out), value))
        return
    raw = bytes(value)
    out += _TAG_BYTES
    out += _U32.pack(len(raw))
    out += raw


def _enc_list(m: Marshaller, value: list, out: bytearray) -> None:
    out += _TAG_LIST
    out += _U32.pack(len(value))
    # Memo-hit strings and ints are appended inline: container elements are
    # overwhelmingly repeated short strings (verbs, context ids, keys) and
    # small ints, and the dispatch call per element dwarfs the append.
    stats = _MEMO_STATS
    for item in value:
        cls = item.__class__
        if cls is str:
            cached = _STR_ENC.get(item)
            if cached is not None:
                stats.str_enc_hits += 1
                out += cached
            else:
                _enc_str(m, item, out)
        elif cls is int:
            cached = _INT_ENC.get(item)
            if cached is not None:
                stats.int_enc_hits += 1
                out += cached
            else:
                _enc_int(m, item, out)
        elif item is None:
            out += _TAG_NONE
        elif cls is dict and not item:
            out += _EMPTY_DICT
        else:
            fast = _FAST_ENCODERS.get(cls)
            if fast is not None:
                fast(m, item, out)
            else:
                m._encode_general(item, out)


def _enc_tuple(m: Marshaller, value: tuple, out: bytearray) -> None:
    out += _TAG_TUPLE
    out += _U32.pack(len(value))
    stats = _MEMO_STATS
    for item in value:
        cls = item.__class__
        if cls is str:
            cached = _STR_ENC.get(item)
            if cached is not None:
                stats.str_enc_hits += 1
                out += cached
            else:
                _enc_str(m, item, out)
        elif cls is int:
            cached = _INT_ENC.get(item)
            if cached is not None:
                stats.int_enc_hits += 1
                out += cached
            else:
                _enc_int(m, item, out)
        elif item is None:
            out += _TAG_NONE
        elif cls is dict and not item:
            out += _EMPTY_DICT
        else:
            fast = _FAST_ENCODERS.get(cls)
            if fast is not None:
                fast(m, item, out)
            else:
                m._encode_general(item, out)


def _enc_dict(m: Marshaller, value: dict, out: bytearray) -> None:
    out += _TAG_DICT
    out += _U32.pack(len(value))
    encode_into = m._encode_into
    stats = _MEMO_STATS
    for key, val in value.items():
        if key.__class__ is str:
            cached = _STR_ENC.get(key)
            if cached is not None:
                stats.str_enc_hits += 1
                out += cached
            else:
                _enc_str(m, key, out)
        else:
            encode_into(key, out)
        cls = val.__class__
        if cls is str:
            cached = _STR_ENC.get(val)
            if cached is not None:
                stats.str_enc_hits += 1
                out += cached
            else:
                _enc_str(m, val, out)
        elif cls is int:
            cached = _INT_ENC.get(val)
            if cached is not None:
                stats.int_enc_hits += 1
                out += cached
            else:
                _enc_int(m, val, out)
        else:
            encode_into(val, out)


def _enc_set(m: Marshaller, value: set, out: bytearray) -> None:
    out += _TAG_SET
    out += _U32.pack(len(value))
    encode_into = m._encode_into
    for item in sorted(value, key=repr):
        encode_into(item, out)


def _enc_frozenset(m: Marshaller, value: frozenset, out: bytearray) -> None:
    out += _TAG_FROZENSET
    out += _U32.pack(len(value))
    encode_into = m._encode_into
    for item in sorted(value, key=repr):
        encode_into(item, out)


def _enc_ref(m: Marshaller, value: ObjectRef, out: bytearray) -> None:
    m._encode_ref(value, out)


#: Exact-type dispatch table.  A type listed here is hook-exempt: the swizzle
#: hook can never replace a value of a plain built-in type (the object-space
#: hook declines them by definition), and :class:`ObjectRef` is already the
#: hook's *output*.  Subclasses fall through to :meth:`_encode_general`,
#: which preserves the original hook-first semantics for them.
_FAST_ENCODERS: dict[type, Callable] = {
    type(None): _enc_none,
    bool: _enc_bool,
    int: _enc_int,
    float: _enc_float,
    str: _enc_str,
    bytes: _enc_bytes,
    bytearray: _enc_bytelike,
    memoryview: _enc_bytelike,
    list: _enc_list,
    tuple: _enc_tuple,
    dict: _enc_dict,
    set: _enc_set,
    frozenset: _enc_frozenset,
    ObjectRef: _enc_ref,
}


#: A hook-free marshaller, for layers that must see raw refs (naming, GC).
PLAIN = Marshaller()


def wire_size(value: Any) -> int:
    """Byte size of ``value`` on the wire (hook-free encoding)."""
    return len(PLAIN.encode(value))
