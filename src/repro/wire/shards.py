"""Shard ring envelopes: consistent-hash routing metadata on the wire.

The ``sharded`` policy partitions a service's key space over N shard
objects with a **consistent-hash ring**: a sorted list of ``[point,
owner]`` pairs over the 64-bit hash circle, where ring entry ``i`` owns
the arc ``(point[i-1], point[i]]`` (wrapping at the top).  Routing a call
is a hash of its shard key plus a bisect — no directory lookup, no
coordination.

This module owns the wire representation and the server-side protocol
steps, shared by two call paths exactly like :mod:`repro.wire.versions`:

* the dispatcher (:mod:`repro.rpc.dispatcher`) for remote shards — the
  caller's **ring epoch** rides the frame headers, and the reply is a
  marshalled wrapper (a dict with reserved ``s.*`` keys);
* the sharded proxy itself for a shard co-located with the caller, where
  the frame layer is bypassed.

**Epoch fencing** mirrors PR 6's term fencing: every shard export entry
carries a :class:`ShardState` (its shard index, the ring, and the ring's
epoch).  A request stamped with an *older* epoch whose key has **moved
away** is refused with a :data:`K_FENCED` redirect carrying the whole
current map — the caller adopts it and re-routes, exactly like following
a migration forward.  A stale-epoch request whose key this shard *still
owns* (judged by the advisory :data:`H_KEY` routing hash) routed
correctly despite its old ring, so it is served, with the current map
piggybacked on the reply as a one-round-trip heal — redirect storms
after a rebalance hit only the keys that actually moved.  Requests that
carry no shard envelope are untouched, so a single-shard epoch-1
deployment is byte-identical to a plain ``stub`` export; once a
rebalance bumps the epoch, plain (un-enveloped) calls are fenced at the
dispatcher with a ``StaleShardRing`` exception whose detail carries the
same map.

**Rebalancing** reuses the arc-transfer idea of :mod:`repro.migration`
(state out of one live object, into another) at sub-object granularity.
The ``handoff`` control runs **at the source shard**, inside its
dispatch, so the extract-install-commit sequence is atomic with respect
to that shard's other operations:

1. fence if the caller's believed epoch is stale (ring changed under it);
2. compute the keys in the departing arc (``obj.shard_keys()`` filtered
   by hash), extract them (``obj.shard_fragment``);
3. **install at the target first** (a nested control call) — the data
   exists at the new owner before any map names it;
4. commit locally: bump the epoch, reassign the ring point, discard the
   moved keys — the fencing authority (the old owner) advances first, so
   a client routed by the old map is fenced into adopting the new one;
5. best-effort commit at the target (a lost commit leaves the target
   serving correctly at the old epoch; map-sync anti-entropy heals it).

A failed install aborts before step 4, leaving at worst a harmless stale
copy at the target (``install`` is discard-first, hence idempotent).

Request header keys:

========= =================== ==========================================
key       value               meaning
========= =================== ==========================================
``s.e``   ``[epoch]``         the caller's ring epoch; older than the
                              shard's ⇒ :data:`K_FENCED` redirect when
                              the key moved, in-band heal otherwise
``s.k``   ``hash``            the call's routing hash (advisory; lets a
                              stale caller at the right shard be served)
``s.c``   ``["map"]`` /       ring controls (verb-less frames): read the
          ``["commit"]`` /    map, adopt a newer one, absorb an arc
          ``["install", ks]`` fragment (rides the body), or run the
          / ``["handoff",    source side of an arc transfer
          i, dst, epoch]``
========= =================== ==========================================

Reply wrappers: ``{"s.val": result}`` on success (plus ``"s.map"`` when
healing a stale caller), ``{"s.f": map}`` when fenced, ``{"s.map":
map}`` from controls — where ``map`` is the marshallable ``[epoch,
ring, shards]`` triple of :meth:`ShardState.map`.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import Any, Callable

from ..kernel.errors import ConfigurationError, ProtocolError

#: Request header: the caller's ring epoch ``[epoch]``.
H_EPOCH = "s.e"
#: Request header: ring control ``["map"]`` / ``["commit"]`` /
#: ``["install", keys]`` / ``["handoff", point, target, epoch]``.
H_CONTROL = "s.c"
#: Request header: the routing hash of the call's shard key.  Advisory:
#: it refines the *stale* path only — a stale-epoch call whose key the
#: serving shard still owns is served (with the new map piggybacked on
#: the reply) instead of redirected, since its routing was right anyway.
H_KEY = "s.k"

#: Reply key: the operation's result (present on success).
K_VALUE = "s.val"
#: Reply key: fenced — the caller's epoch is stale; value is the map.
K_FENCED = "s.f"
#: Reply key: the shard's current ``[epoch, ring, shards]`` map.  On a
#: verb reply (next to :data:`K_VALUE`) it is the in-band heal of a
#: stale-but-correctly-routed caller.
K_MAP = "s.map"

_SHARD_HEADERS = (H_EPOCH, H_CONTROL)

#: Ring points per shard in a generated ring (vnodes smooth the arcs).
DEFAULT_VNODES = 8

#: The shard key used when an operation carries no key argument: the whole
#: object routes as one unit.
WHOLE_OBJECT = "*"


def has_envelope(headers: dict | None) -> bool:
    """True when a request carries any shard envelope."""
    if not headers:
        return False
    return any(key in headers for key in _SHARD_HEADERS)


def stable_hash(key: Any) -> int:
    """A seed-independent 64-bit hash of a shard key.

    ``hash()`` is salted per process (PYTHONHASHSEED), which would make
    ring placement nondeterministic across runs — the determinism lint's
    whole reason to exist.  blake2b of the key's ``repr`` is stable,
    uniform, and cheap.
    """
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


def default_ring(count: int, vnodes: int = DEFAULT_VNODES) -> list:
    """A generated ring: ``vnodes`` points per shard, sorted by point.

    Point placement hashes a stable label, so the same ``(count, vnodes)``
    always yields the same ring — deployments and rebinding clients agree
    without exchanging it.
    """
    if count < 1:
        raise ConfigurationError(f"shard count {count} must be >= 1")
    if vnodes < 1:
        raise ConfigurationError(f"vnodes {vnodes} must be >= 1")
    ring = [[stable_hash(f"vnode:{shard}:{v}"), shard]
            for shard in range(count) for v in range(vnodes)]
    ring.sort()
    return ring


def validate_ring(ring: list, count: int) -> list:
    """Check a ring's invariants; returns it normalised to sorted lists.

    Raises :class:`ConfigurationError` on an empty ring, a duplicate
    point (two entries would contest one arc), or an owner outside
    ``0..count-1``.
    """
    if not ring:
        raise ConfigurationError("shard ring is empty")
    normalised = sorted([int(point), int(owner)] for point, owner in ring)
    for i, (point, owner) in enumerate(normalised):
        if i and point == normalised[i - 1][0]:
            raise ConfigurationError(
                f"duplicate ring point {point} (entries {i - 1} and {i})")
        if not 0 <= owner < count:
            raise ConfigurationError(
                f"ring point {point} owned by shard {owner}, outside "
                f"0..{count - 1}")
    return normalised


def in_arc(h: int, lo: int, hi: int) -> bool:
    """True when hash ``h`` lies in the ring arc ``(lo, hi]``.

    ``lo == hi`` is the single-point ring: one arc covering the whole
    circle.  ``lo > hi`` is the wrapping arc through the top.
    """
    if lo == hi:
        return True
    if lo < hi:
        return lo < h <= hi
    return h > lo or h <= hi


class ShardState:
    """One participant's view of the ring: epoch, arcs, and shard homes.

    Installed on every shard's export entry (``index`` = its position)
    and on the group entry (``index`` = -1); the sharded proxy holds one
    too (also -1) as its routing cache.  ``shards`` is a list of plain
    field lists ``[context_id, oid, interface, epoch, policy]`` — the
    same swizzle-free form :meth:`~repro.migration.mover.MoverService.
    migrate_to` uses — so the whole map marshals as-is.
    """

    __slots__ = ("index", "epoch", "ring", "shards", "_points", "_owners")

    def __init__(self, index: int, epoch: int, ring: list, shards: list):
        self.index = index
        self.epoch = int(epoch)
        self.ring = [list(entry) for entry in ring]
        self.shards = [list(spec) for spec in shards]
        self._reindex()

    def _reindex(self) -> None:
        self._points = [entry[0] for entry in self.ring]
        self._owners = [entry[1] for entry in self.ring]

    def owner_of(self, h: int) -> int:
        """The shard index owning hash ``h`` (first point clockwise)."""
        idx = bisect_left(self._points, h)
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def arc_of(self, point_index: int) -> tuple[int, int]:
        """The ``(lo, hi]`` arc of ring entry ``point_index``."""
        hi = self._points[point_index]
        lo = self._points[point_index - 1] if point_index else \
            self._points[-1]
        return lo, hi

    def map(self) -> list:
        """The marshallable ``[epoch, ring, shards]`` triple."""
        return [self.epoch, [list(entry) for entry in self.ring],
                [list(spec) for spec in self.shards]]

    def adopt(self, epoch: int, ring: list, shards: list) -> bool:
        """Replace the view iff ``epoch`` is strictly newer."""
        if int(epoch) <= self.epoch:
            return False
        self.epoch = int(epoch)
        self.ring = [list(entry) for entry in ring]
        self.shards = [list(spec) for spec in shards]
        self._reindex()
        return True


def shard_state(entry) -> ShardState | None:
    """The shard state of one export-table entry, if any."""
    return getattr(entry, "sharding", None)


def _stale(state: ShardState | None, headers: dict | None) -> dict | None:
    """The :data:`K_FENCED` refusal for a stale-epoch request, or None.

    The epoch is the fencing authority; the advisory :data:`H_KEY` hash
    softens it.  A stale caller whose key this shard *still owns* routed
    correctly despite its old ring, so refusing it buys nothing — it is
    served, and the current map rides back on the reply
    (:data:`K_MAP` next to the value) to heal the caller in one round
    trip.  Only a stale caller at the *wrong* shard — or one carrying no
    key hash to judge by — is redirected.  (A caller lying about its
    epoch skips both checks; that is exactly the bug class the simtest
    ``staleshard`` canary exists to convict.)
    """
    if state is None:
        return None
    spec = headers.get(H_EPOCH) if headers else None
    if spec is None or int(spec[0]) >= state.epoch:
        return None
    h = headers.get(H_KEY)
    if h is not None and state.index >= 0 \
            and state.owner_of(int(h)) == state.index:
        return None
    return {K_FENCED: state.map()}


def _heal(state: ShardState | None, headers: dict | None,
          reply: dict) -> dict:
    """Piggyback the current map onto a stale-epoch caller's reply."""
    if state is not None and headers:
        spec = headers.get(H_EPOCH)
        if spec is not None and int(spec[0]) < state.epoch:
            reply[K_MAP] = state.map()
    return reply


# -- server-side protocol steps -----------------------------------------------
#
# Each helper takes the export entry and an ``invoke`` thunk (the actual
# method call, with whatever interface checking and compute accounting the
# caller's layer does) and returns the marshallable reply wrapper.
# Application exceptions propagate — the dispatcher ships them as ordinary
# exception frames and the client re-raises, exactly as for plain calls.


def serve_verb(entry, verb: str, args, kwargs, headers: dict,
               invoke: Callable[[], Any] | None = None,
               readonly: bool = False) -> dict:
    """One enveloped operation at a shard: fence, or serve (and heal)."""
    state = shard_state(entry)
    refused = _stale(state, headers)
    if refused is not None:
        return refused
    if invoke is None:
        invoke = lambda: getattr(entry.obj, verb)(*args, **kwargs)  # noqa: E731
    result = invoke()
    if not readonly:
        entry.run_mutation_hooks(verb, tuple(args), dict(kwargs))
    return _heal(state, headers, {K_VALUE: result})


def serve_control(entry, control, body_args,
                  call_shard: Callable[[list, list, tuple], dict]
                  | None = None) -> dict:
    """A ring control call (verb-less frames).

    ``["map"]`` returns the current map; ``["commit"]`` adopts the map
    riding ``body_args[0]`` iff newer; ``["install", keys]`` absorbs the
    arc fragment riding ``body_args[0]`` (discard-first, so a replayed
    install is idempotent); ``["handoff", point, target, epoch]`` runs
    the source side of an arc transfer (module docstring) — it needs
    ``call_shard(shard_spec, control, body_args)``, the nested-call thunk
    the dispatcher (or the co-located proxy path) injects.
    """
    kind = control[0]
    state = shard_state(entry)
    if kind == "map":
        if state is None:
            raise ProtocolError("map control on an unsharded entry")
        return {K_MAP: state.map()}
    if kind == "commit":
        spec = body_args[0] if body_args else None
        if spec is None:
            raise ProtocolError("commit control carries no map")
        epoch, ring, shards = spec
        if state is None:
            # A freshly migrated shard entry: infer our index from the
            # map (our own oid must appear in it) and install the state.
            index = _own_index(entry, shards)
            state = entry.sharding = ShardState(index, epoch, ring, shards)
        else:
            state.adopt(epoch, ring, shards)
        if state.index < 0:
            # The group entry doubles as the bootstrap directory: keep its
            # shipped configuration current so late-binding clients start
            # from the newest map instead of redirecting their way to it.
            entry.policy_config["ring"] = [list(e) for e in state.ring]
            entry.policy_config["ring_epoch"] = state.epoch
            entry.policy_config["shards"] = [list(s) for s in state.shards]
        return {K_MAP: state.map()}
    if kind == "install":
        keys = list(control[1])
        fragment = body_args[0] if body_args else {}
        entry.obj.shard_discard(keys)
        entry.obj.shard_absorb(fragment)
        return {K_VALUE: True}
    if kind == "handoff":
        if state is None:
            raise ProtocolError("handoff control on an unsharded entry")
        if call_shard is None:
            raise ProtocolError("handoff needs a nested-call thunk")
        return _serve_handoff(entry, state, control, call_shard)
    raise ProtocolError(f"unknown shard control {kind!r}")


def _own_index(entry, shards: list) -> int:
    """This entry's shard index in a map (group delegates get -1)."""
    for index, spec in enumerate(shards):
        if spec[1] == entry.ref.oid:
            return index
    return -1


def _serve_handoff(entry, state: ShardState, control,
                   call_shard: Callable) -> dict:
    """The source side of one arc transfer (runs at the departing owner)."""
    point_index, target, believed = (int(control[1]), int(control[2]),
                                     int(control[3]))
    if believed != state.epoch:
        return {K_FENCED: state.map()}
    if not 0 <= point_index < len(state.ring):
        raise ProtocolError(
            f"handoff of ring point {point_index}, ring has "
            f"{len(state.ring)} points")
    if not 0 <= target < len(state.shards):
        raise ProtocolError(
            f"handoff to shard {target}, map has {len(state.shards)}")
    source = state.ring[point_index][1]
    if source != state.index:
        return {K_FENCED: state.map()}
    if target == source:
        return {K_MAP: state.map()}    # idempotent no-op
    lo, hi = state.arc_of(point_index)
    keys = [key for key in entry.obj.shard_keys()
            if in_arc(stable_hash(key), lo, hi)]
    fragment = entry.obj.shard_fragment(keys)
    new_ring = [list(e) for e in state.ring]
    new_ring[point_index][1] = target
    new_map = [state.epoch + 1, new_ring, [list(s) for s in state.shards]]
    # Install at the target first: a DistributionError here propagates and
    # aborts the handoff before any commit — the map never names an owner
    # that lacks the data.
    call_shard(state.shards[target], ["install", keys], (fragment,))
    # Source-first commit: the fencing authority advances before anyone
    # else, so every stale-mapped call is refused into adopting the truth.
    state.adopt(*new_map)
    entry.obj.shard_discard(keys)
    try:
        call_shard(state.shards[target], ["commit"], (new_map,))
    except Exception:
        # Best-effort: a target left at the old epoch still serves
        # correctly (fencing only rejects *older* requests); the map-sync
        # sweep will deliver the commit eventually.
        pass
    return {K_MAP: state.map()}


def serve_envelope(entry, verb: str, args, kwargs, headers: dict,
                   invoke: Callable[[], Any] | None = None,
                   readonly: bool = False,
                   call_shard: Callable | None = None) -> dict:
    """Dispatch one enveloped call to the matching protocol step.

    The co-located fast path of the sharded proxy uses this directly on
    the local export entry; the dispatcher inlines the same steps with
    its own interface/compute accounting.
    """
    control = headers.get(H_CONTROL)
    if control is not None:
        return serve_control(entry, control, args, call_shard)
    if H_EPOCH in headers:
        return serve_verb(entry, verb, args, kwargs, headers,
                          invoke=invoke, readonly=readonly)
    raise ProtocolError("frame carries no shard envelope")
