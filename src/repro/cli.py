"""Command-line interface: run experiments and demos without writing code.

::

    python -m repro list                 # experiments available
    python -m repro run e2               # one experiment, table on stdout
    python -m repro run e3 --seed 9      # reseeded
    python -m repro all                  # the whole evaluation
    python -m repro demo                 # 30-second tour
"""

from __future__ import annotations

import argparse
import json
import sys

from .bench import experiments
from .bench.render import render_table


def _registry() -> dict:
    """Experiment id ("e1"…) → module."""
    table = {}
    for module in experiments.ALL:
        short = module.__name__.rsplit(".", 1)[-1].split("_", 1)[0]
        table[short] = module
    return table


def _order(short: str) -> tuple[int, str]:
    """Numeric-then-suffix sort key: e1 < e2 < … < e7 < e7b < e8."""
    digits = "".join(ch for ch in short[1:] if ch.isdigit())
    return (int(digits) if digits else 0, short)


def cmd_list(_args) -> int:
    """Print every experiment id and title."""
    for short, module in sorted(_registry().items(),
                                key=lambda item: _order(item[0])):
        print(f"{short:>4}  {module.TITLE}")
    return 0


def cmd_run(args) -> int:
    """Run one experiment and print its table."""
    registry = _registry()
    module = registry.get(args.experiment)
    if module is None:
        print(f"unknown experiment {args.experiment!r}; "
              f"known: {sorted(registry, key=_order)}", file=sys.stderr)
        return 2
    import inspect
    accepted = inspect.signature(module.run).parameters
    kwargs = {}
    if args.seed is not None and "seed" in accepted:
        kwargs["seed"] = args.seed
    if args.ops is not None:
        if "ops" not in accepted:
            print(f"note: {args.experiment} does not take --ops; ignored",
                  file=sys.stderr)
        else:
            kwargs["ops"] = args.ops
    rows = module.run(**kwargs)
    if args.json:
        # Stable, machine-diffable form: the determinism CI gate runs an
        # experiment twice with one seed and fails on any byte difference.
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(render_table(rows, module.TITLE))
    return 0


def cmd_all(args) -> int:
    """Run the full evaluation suite."""
    for short, module in sorted(_registry().items(),
                                key=lambda item: _order(item[0])):
        rows = module.run()
        print(render_table(rows, module.TITLE))
        print()
    return 0


def cmd_demo(_args) -> int:
    """A self-contained tour of the library."""
    import repro
    from repro.apps.kv import CachedKVStore

    print("building a 3-node system …")
    system = repro.make_system(seed=1)
    server = system.add_node("server").create_context("main")
    east = system.add_node("east").create_context("main")
    west = system.add_node("west").create_context("main")
    repro.install_name_service(server)
    repro.register(server, "kv", CachedKVStore())

    east_kv = repro.bind(east, "kv")
    west_kv = repro.bind(west, "kv")
    print(f"east bound a {type(east_kv).__name__} "
          "(the service chose the policy)")

    east_kv.put("motd", "proxies are the only access path")
    print(f"west reads: {west_kv.get('motd')!r}")
    t0 = west.now
    west_kv.get("motd")
    print(f"west re-reads from cache in {(west.now - t0) * 1e6:.1f} µs")

    east_kv.put("motd", "and the service can change its protocol")
    print(f"west after east's write: {west_kv.get('motd')!r} "
          "(cache invalidated by the server)")

    repro.assert_principle(system)
    print("principle audit: clean — try `python -m repro run e5` next")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Proxy-principle reproduction: experiments and demos.")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiments").set_defaults(
        func=cmd_list)
    run_parser = commands.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id, e.g. e2")
    run_parser.add_argument("--seed", type=int, default=None)
    run_parser.add_argument("--ops", type=int, default=None)
    run_parser.add_argument("--json", action="store_true",
                            help="emit rows as sorted JSON instead of a table")
    run_parser.set_defaults(func=cmd_run)
    commands.add_parser("all", help="run every experiment").set_defaults(
        func=cmd_all)
    commands.add_parser("demo", help="30-second tour").set_defaults(
        func=cmd_demo)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
