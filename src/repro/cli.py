"""Command-line interface: run experiments and demos without writing code.

::

    python -m repro list                 # experiments available
    python -m repro run e2               # one experiment, table on stdout
    python -m repro run e3 --seed 9      # reseeded
    python -m repro all                  # the whole evaluation
    python -m repro bench e18 --json     # host throughput (perf-gate record)
    python -m repro demo                 # 30-second tour
"""

from __future__ import annotations

import argparse
import json
import sys

from .bench import experiments
from .bench.render import render_table


def _registry() -> dict:
    """Experiment id ("e1"…) → module."""
    table = {}
    for module in experiments.ALL:
        short = module.__name__.rsplit(".", 1)[-1].split("_", 1)[0]
        table[short] = module
    return table


def _order(short: str) -> tuple[int, str]:
    """Numeric-then-suffix sort key: e1 < e2 < … < e7 < e7b < e8."""
    digits = "".join(ch for ch in short[1:] if ch.isdigit())
    return (int(digits) if digits else 0, short)


def cmd_list(_args) -> int:
    """Print every experiment id and title."""
    for short, module in sorted(_registry().items(),
                                key=lambda item: _order(item[0])):
        print(f"{short:>4}  {module.TITLE}")
    return 0


def cmd_run(args) -> int:
    """Run one experiment and print its table."""
    registry = _registry()
    module = registry.get(args.experiment)
    if module is None:
        print(f"unknown experiment {args.experiment!r}; "
              f"known: {sorted(registry, key=_order)}", file=sys.stderr)
        return 2
    import inspect
    accepted = inspect.signature(module.run).parameters
    kwargs = {}
    if args.seed is not None and "seed" in accepted:
        kwargs["seed"] = args.seed
    if args.ops is not None:
        if "ops" not in accepted:
            print(f"note: {args.experiment} does not take --ops; ignored",
                  file=sys.stderr)
        else:
            kwargs["ops"] = args.ops
    rows = module.run(**kwargs)
    if args.json:
        # Stable, machine-diffable form: the determinism CI gate runs an
        # experiment twice with one seed and fails on any byte difference.
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(render_table(rows, module.TITLE))
    return 0


def cmd_all(args) -> int:
    """Run the full evaluation suite."""
    for short, module in sorted(_registry().items(),
                                key=lambda item: _order(item[0])):
        rows = module.run()
        print(render_table(rows, module.TITLE))
        print()
    return 0


def _bench_registry() -> dict:
    """Benchmark id → experiment module shipping a ``bench_payload``.

    A bench module provides ``bench_payload(**kwargs) -> dict`` (the
    machine-readable BENCH record), ``bench_rows(payload) -> list`` (its
    table form), and optionally ``bench_footer(payload) -> str``.
    """
    from .bench import simwall
    from .bench.experiments import (
        e10_marshalling,
        e18_fastpath,
        e19_sharding,
        e20_admission,
        e21_regions,
    )
    return {"e10": e10_marshalling, "e18": e18_fastpath,
            "e19": e19_sharding, "e20": e20_admission,
            "e21": e21_regions, "simwall": simwall}


def cmd_bench(args) -> int:
    """Gated benchmarks (wall-clock hosts or virtual-time scaling).

    ``python -m repro bench e18 --json > BENCH_e18.json`` (likewise
    ``e19``) produces the machine-readable record the CI perf gate
    compares against the committed baseline.  Determinism discipline
    matches ``simtest --json``: every workload runs multiple times and
    the harness asserts the deterministic fields (virtual µs/op, message
    counts, trace fingerprints) agree before reporting; only wall
    readings — e18 carries some, e19 none — may differ between runs.
    """
    registry = _bench_registry()
    module = registry.get(args.benchmark)
    if module is None:
        print(f"unknown benchmark {args.benchmark!r}; known: "
              f"{sorted(registry)}", file=sys.stderr)
        return 2
    kwargs = {}
    if args.ops is not None:
        kwargs["ops"] = args.ops
    if args.seed is not None:
        kwargs["seed"] = args.seed
    payload = module.bench_payload(**kwargs)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_table(module.bench_rows(payload), module.TITLE))
        footer = getattr(module, "bench_footer", None)
        if footer is not None:
            print(footer(payload))
    return 0


def cmd_simtest(args) -> int:
    """Deterministic sim-chaos with a linearizability verdict.

    Three modes: ``--replay FILE`` re-runs a recorded case verbatim,
    ``--seeds N`` sweeps a seed battery across policies, and the default
    runs one ``--seed``.  Exit status 1 on any violation (or an unmet
    replay expectation), so CI can gate on it directly.
    """
    from .simtest import build_case, run_battery, run_case
    from .simtest.runner import replay, report_json
    from .simtest.workload import FAULT_MENUS, SHIPPED_POLICIES

    minimize = not args.no_minimize
    consistency = args.consistency or "linearizable"
    if args.replay is not None:
        with open(args.replay, encoding="utf-8") as handle:
            data = json.load(handle)
        # An explicit --consistency overrides the corpus record's pin.
        report = replay(data, minimize=minimize,
                        consistency=args.consistency)
        expect = data.get("expect")
        if args.json:
            print(report_json(report))
        else:
            print(f"replay {args.replay}: verdict={report.verdict}"
                  + (f" expect={expect}" if expect else ""))
        if expect is not None:
            return 0 if report.verdict == expect else 1
        return 0 if report.verdict == "ok" else 1

    policies = (list(SHIPPED_POLICIES) if args.policy == "all"
                else [args.policy])
    unknown = [p for p in policies if p not in FAULT_MENUS]
    if unknown:
        print(f"unknown policy {unknown[0]!r}; known: "
              f"{sorted(FAULT_MENUS)}", file=sys.stderr)
        return 2

    if args.seeds is not None:
        summary = run_battery(range(args.seeds), policies=policies,
                              service=args.service, ops=args.ops,
                              clients=args.clients, minimize=minimize,
                              consistency=consistency)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            for policy, counts in sorted(summary["per_policy"].items()):
                print(f"{policy:>12}: {counts['ok']}/{counts['cases']} ok")
            if summary["violations"]:
                print(f"{len(summary['violations'])} violation(s):")
                for entry in summary["violations"]:
                    print(f"  {json.dumps(entry['case'], sort_keys=True)}")
        return 1 if summary["violations"] or summary["unknown"] else 0

    failed = 0
    for policy in policies:
        case = build_case(args.seed, policy, service=args.service,
                          ops=args.ops, clients=args.clients)
        report = run_case(case, minimize=minimize, consistency=consistency)
        if args.json:
            print(report_json(report))
        else:
            line = (f"seed={case.seed} policy={case.policy} "
                    f"service={case.service} ops={case.ops} "
                    f"faults={len(case.faults)}")
            if consistency != "linearizable":
                line += f" consistency={consistency}"
            line += f": {report.verdict}"
            if report.minimized is not None:
                line += (f" (minimized to {report.minimized.ops} ops / "
                         f"{len(report.minimized.faults)} faults, "
                         f"confirmed={report.confirmed})")
            print(line)
        if report.verdict != "ok":
            failed += 1
    return 1 if failed else 0


def cmd_demo(_args) -> int:
    """A self-contained tour of the library."""
    import repro
    from repro.apps.kv import CachedKVStore

    print("building a 3-node system …")
    system = repro.make_system(seed=1)
    server = system.add_node("server").create_context("main")
    east = system.add_node("east").create_context("main")
    west = system.add_node("west").create_context("main")
    repro.install_name_service(server)
    repro.register(server, "kv", CachedKVStore())

    east_kv = repro.bind(east, "kv")
    west_kv = repro.bind(west, "kv")
    print(f"east bound a {type(east_kv).__name__} "
          "(the service chose the policy)")

    east_kv.put("motd", "proxies are the only access path")
    print(f"west reads: {west_kv.get('motd')!r}")
    t0 = west.now
    west_kv.get("motd")
    print(f"west re-reads from cache in {(west.now - t0) * 1e6:.1f} µs")

    east_kv.put("motd", "and the service can change its protocol")
    print(f"west after east's write: {west_kv.get('motd')!r} "
          "(cache invalidated by the server)")

    repro.assert_principle(system)
    print("principle audit: clean — try `python -m repro run e5` next")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Proxy-principle reproduction: experiments and demos.")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiments").set_defaults(
        func=cmd_list)
    run_parser = commands.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id, e.g. e2")
    run_parser.add_argument("--seed", type=int, default=None)
    run_parser.add_argument("--ops", type=int, default=None)
    run_parser.add_argument("--json", action="store_true",
                            help="emit rows as sorted JSON instead of a table")
    run_parser.set_defaults(func=cmd_run)
    commands.add_parser("all", help="run every experiment").set_defaults(
        func=cmd_all)
    bench_parser = commands.add_parser(
        "bench", help="host throughput benchmark (wall clock)")
    bench_parser.add_argument("benchmark",
                              help="benchmark id: e10, e18, e19, e20, "
                                   "e21 or simwall")
    bench_parser.add_argument("--ops", type=int, default=None)
    bench_parser.add_argument("--seed", type=int, default=None)
    bench_parser.add_argument("--json", action="store_true",
                              help="emit the BENCH record as sorted JSON")
    bench_parser.set_defaults(func=cmd_bench)
    sim_parser = commands.add_parser(
        "simtest", help="deterministic sim-chaos + linearizability check")
    sim_parser.add_argument("--seed", type=int, default=0,
                            help="single-case seed (default 0)")
    sim_parser.add_argument("--seeds", type=int, default=None,
                            help="battery mode: sweep seeds 0..N-1")
    sim_parser.add_argument("--ops", type=int, default=30)
    sim_parser.add_argument("--clients", type=int, default=3)
    sim_parser.add_argument("--policy", default="all",
                            help='policy name or "all" (every shipped '
                                 'policy)')
    sim_parser.add_argument("--service", default=None,
                            help="kv|counter|lock|queue|bank (default: by "
                                 "seed; bank is pinned for the bank "
                                 "policies)")
    sim_parser.add_argument("--json", action="store_true",
                            help="emit the full report as sorted JSON")
    sim_parser.add_argument(
        "--consistency", default=None,
        choices=("linearizable", "sequential", "causal",
                 "read-your-writes"),
        help="checker mode to grade against (default: linearizable, or "
             "the mode a replayed corpus record pins)")
    sim_parser.add_argument("--replay", default=None, metavar="FILE",
                            help="re-run a recorded case JSON verbatim")
    sim_parser.add_argument("--no-minimize", action="store_true",
                            help="skip shrinking violating cases")
    sim_parser.set_defaults(func=cmd_simtest)
    commands.add_parser("demo", help="30-second tour").set_defaults(
        func=cmd_demo)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
