"""Metrics: latency recording, counters, windowed message accounting."""

from .counters import CounterSet, MessageWindow, WindowReport
from .latency import LatencyRecorder, LatencySummary, percentile
from .report import SystemSnapshot, render, report, snapshot

__all__ = [
    "CounterSet", "LatencyRecorder", "LatencySummary", "MessageWindow",
    "SystemSnapshot", "WindowReport", "percentile", "render", "report",
    "snapshot",
]
