"""Metrics: latency recording, counters, windowed message accounting."""

from .counters import (
    CounterSet,
    MessageWindow,
    WindowReport,
    marshal_memo_stats,
    reset_marshal_memo_stats,
)
from .latency import LatencyRecorder, LatencySummary, percentile
from .report import SystemSnapshot, render, report, snapshot

__all__ = [
    "CounterSet", "LatencyRecorder", "LatencySummary", "MessageWindow",
    "SystemSnapshot", "WindowReport", "marshal_memo_stats", "percentile",
    "render", "report", "reset_marshal_memo_stats", "snapshot",
]
