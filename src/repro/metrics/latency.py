"""Latency recording and summarising.

Samples are virtual-time durations collected by the workload drivers; the
summaries (mean, percentiles) are what the bench harness prints and what
EXPERIMENTS.md reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


class LatencyRecorder:
    """Collects duration samples for one labelled series."""

    def __init__(self, label: str = ""):
        self.label = label
        self.samples: list[float] = []

    def record(self, seconds: float) -> None:
        """Add one sample (virtual seconds)."""
        self.samples.append(seconds)

    def extend(self, seconds: list[float]) -> None:
        """Add many samples."""
        self.samples.extend(seconds)

    def summary(self) -> "LatencySummary":
        """Summarise what has been recorded so far."""
        return LatencySummary.of(self.label, self.samples)

    def __len__(self) -> int:
        return len(self.samples)


@dataclass(frozen=True)
class LatencySummary:
    """Aggregates of one latency series (all times in seconds).

    Attributes:
        label: series name.
        count: number of samples.
        mean: arithmetic mean.
        p50, p95, p99: percentiles (nearest-rank).
        minimum, maximum: extremes.
        total: sum of all samples.
    """

    label: str
    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float
    total: float

    @classmethod
    def of(cls, label: str, samples: list[float]) -> "LatencySummary":
        """Build a summary from raw samples (zeros when empty)."""
        if not samples:
            return cls(label, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(samples)
        total = sum(ordered)
        return cls(
            label=label,
            count=len(ordered),
            mean=total / len(ordered),
            p50=percentile(ordered, 50),
            p95=percentile(ordered, 95),
            p99=percentile(ordered, 99),
            minimum=ordered[0],
            maximum=ordered[-1],
            total=total,
        )

    def as_row(self) -> dict:
        """The summary as a flat dict (milliseconds), for table rendering."""
        return {
            "series": self.label,
            "n": self.count,
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.p50 * 1e3,
            "p95_ms": self.p95 * 1e3,
            "p99_ms": self.p99 * 1e3,
            "max_ms": self.maximum * 1e3,
        }


def percentile(ordered: list[float], pct: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]
