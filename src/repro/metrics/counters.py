"""Named counters and windowed message accounting.

:class:`MessageWindow` is the experiment-facing tool: it marks the system
trace, runs a workload, and reports messages/bytes/invocations observed in
that window only.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernel.system import System
from ..kernel.trace import TraceSummary


class CounterSet:
    """A bag of named monotonic counters."""

    def __init__(self):
        self._counts: dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> int:
        """Increase ``name`` by ``amount`` and return the new value."""
        value = self._counts.get(name, 0) + amount
        self._counts[name] = value
        return value

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def __repr__(self) -> str:
        return f"CounterSet({self._counts})"


@dataclass
class WindowReport:
    """What happened during one :class:`MessageWindow`.

    Attributes:
        messages: frames sent (including retransmissions).
        bytes: total payload bytes of those frames.
        drops: frames lost by the network.
        invokes: server-side operation executions.
        elapsed: virtual seconds from window open to close (max over clocks).
        by_label: message counts per trace label.
    """

    messages: int
    bytes: int
    drops: int
    invokes: int
    elapsed: float
    by_label: dict[str, int]


class MessageWindow:
    """Scoped trace accounting::

        with MessageWindow(system) as window:
            run_workload()
        print(window.report.messages)
    """

    def __init__(self, system: System):
        self.system = system
        self.report: WindowReport | None = None
        self._mark = 0
        self._t0 = 0.0

    def __enter__(self) -> "MessageWindow":
        self._mark = self.system.trace.mark()
        self._t0 = self.system.max_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        events = self.system.trace.since(self._mark)
        summary = TraceSummary.of(events)
        self.report = WindowReport(
            messages=summary.messages,
            bytes=summary.bytes,
            drops=summary.drops,
            invokes=summary.invokes,
            elapsed=self.system.max_time() - self._t0,
            by_label=summary.by_label,
        )


# -- marshaller memo instrumentation ----------------------------------------

def marshal_memo_stats() -> dict:
    """Hit/miss/eviction counters and current sizes of the wire-layer
    encode/decode memos (:mod:`repro.wire.marshal`).

    Surfaced here so operational dashboards read cache behaviour through
    the metrics package like every other counter, without importing wire
    internals.  Pure counters — reading them never touches the caches.
    """
    from ..wire.marshal import memo_stats
    return memo_stats()


def reset_marshal_memo_stats() -> None:
    """Zero the marshaller memo counters (the caches themselves survive)."""
    from ..wire.marshal import reset_memo_stats
    reset_memo_stats()
