"""System reports: one-call observability over a whole simulated system.

``snapshot(system)`` gathers, per context: clock, exports, proxies, and
dispatcher statistics — plus protocol and network aggregates.  ``render``
prints the tables the way operators read them.  Used by the examples and
handy when debugging an experiment that produces a surprising shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bench.render import render_table
from ..kernel.system import System
from ..kernel.trace import TraceSummary


@dataclass
class SystemSnapshot:
    """Point-in-time view of a system.

    Attributes:
        time: latest virtual time across the system.
        contexts: one row per context (see :func:`snapshot`).
        protocol: RPC protocol counters.
        traffic: whole-trace message summary.
        policies: live proxy count per policy class name.
    """

    time: float
    contexts: list[dict] = field(default_factory=list)
    protocol: dict = field(default_factory=dict)
    traffic: dict = field(default_factory=dict)
    policies: dict = field(default_factory=dict)


def snapshot(system: System) -> SystemSnapshot:
    """Collect a :class:`SystemSnapshot` for ``system``."""
    view = SystemSnapshot(time=system.max_time())
    for ctx in system.contexts():
        live_exports = sum(1 for entry in ctx.exports.values()
                           if not entry.revoked)
        migrated = sum(1 for entry in ctx.exports.values()
                       if entry.moved_to is not None)
        dispatcher_stats: dict = {}
        handler = ctx.handler
        if handler is not None and hasattr(handler, "__self__"):
            dispatcher_stats = dict(handler.__self__.stats)
        view.contexts.append({
            "context": ctx.context_id,
            "alive": ctx.alive,
            "clock_ms": ctx.clock.now * 1e3,
            "exports": live_exports,
            "migrated_away": migrated,
            "proxies": len(ctx.proxies),
            "requests": dispatcher_stats.get("requests", 0),
            "duplicates": dispatcher_stats.get("duplicates", 0),
        })
        for proxy in ctx.proxies.values():
            name = type(proxy).__name__
            view.policies[name] = view.policies.get(name, 0) + 1
    if system.rpc is not None:
        view.protocol = dict(system.rpc.stats)
    summary = TraceSummary.of(system.trace.events)
    view.traffic = {
        "messages": summary.messages,
        "bytes": summary.bytes,
        "drops": summary.drops,
        "invokes": summary.invokes,
    }
    return view


def render(view: SystemSnapshot) -> str:
    """Human-readable rendering of a snapshot."""
    parts = [f"system @ {view.time * 1e3:.3f} ms virtual"]
    parts.append(render_table(view.contexts, "contexts"))
    if view.policies:
        policy_rows = [{"policy": name, "live_proxies": count}
                       for name, count in sorted(view.policies.items())]
        parts.append(render_table(policy_rows, "proxies by policy"))
    if view.protocol:
        parts.append(render_table([view.protocol], "rpc protocol"))
    parts.append(render_table([view.traffic], "traffic"))
    return "\n\n".join(parts)


def report(system: System) -> str:
    """``render(snapshot(system))`` in one call."""
    return render(snapshot(system))
