"""Message and event tracing.

Every message the simulated system carries is recorded as a
:class:`TraceEvent`.  Integration tests assert on trace *shapes* (who talked
to whom, in what order, with how many messages) — this is how the paper's
architecture figures are reproduced executably — and the metrics layer
aggregates the same events into counts and byte totals.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterator, NamedTuple


class TraceEvent(NamedTuple):
    """One traced occurrence.

    A named tuple rather than a (frozen) dataclass: one is built per traced
    message, and tuple construction skips the per-field ``__setattr__`` walk
    frozen dataclasses pay.

    Attributes:
        time: virtual time of the event.
        kind: event class, e.g. ``"send"``, ``"recv"``, ``"drop"``,
            ``"invoke"``, ``"migrate"``, ``"fault"``.
        src: source context id (or ``""`` for node-level events).
        dst: destination context id.
        label: free-form discriminator (operation name, protocol verb…).
        size: payload size in bytes, when meaningful.
    """

    time: float
    kind: str
    src: str
    dst: str
    label: str = ""
    size: int = 0


class Trace:
    """An append-only event log with simple query helpers."""

    def __init__(self, capacity: int | None = None):
        self.events: list[TraceEvent] = []
        self.capacity = capacity
        self._marks: list[int] = []
        #: Live listeners called with each recorded event (metrics taps,
        #: debug consoles).  The emit hot path pays one truth test while the
        #: list is empty — see :meth:`subscribe`.
        self.subscribers: list[Callable[[TraceEvent], None]] = []

    def subscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Register a live listener; it sees every event recorded from now on."""
        self.subscribers.append(listener)

    def unsubscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Remove a previously registered listener (no-op if absent)."""
        try:
            self.subscribers.remove(listener)
        except ValueError:
            pass

    def record(self, event: TraceEvent) -> None:
        """Append one event (drops silently once ``capacity`` is reached)."""
        if self.capacity is not None and len(self.events) >= self.capacity:
            return
        self.events.append(event)
        if self.subscribers:
            for listener in self.subscribers:
                listener(event)

    def emit(self, time: float, kind: str, src: str, dst: str,
             label: str = "", size: int = 0) -> None:
        """Convenience wrapper building and recording a :class:`TraceEvent`.

        Checks capacity *before* constructing the event, so a saturated
        bounded trace costs one comparison per message rather than one
        allocation.
        """
        if self.capacity is not None and len(self.events) >= self.capacity:
            return
        event = TraceEvent(time, kind, src, dst, label, size)
        self.events.append(event)
        if self.subscribers:
            for listener in self.subscribers:
                listener(event)

    # -- querying ----------------------------------------------------------

    def select(self, kind: str | None = None, src: str | None = None,
               dst: str | None = None,
               predicate: Callable[[TraceEvent], bool] | None = None,
               ) -> list[TraceEvent]:
        """Return events matching all the given filters."""
        out = []
        for ev in self.events:
            if kind is not None and ev.kind != kind:
                continue
            if src is not None and ev.src != src:
                continue
            if dst is not None and ev.dst != dst:
                continue
            if predicate is not None and not predicate(ev):
                continue
            out.append(ev)
        return out

    def count(self, kind: str | None = None, **kwargs) -> int:
        """Number of events matching the filters of :meth:`select`."""
        return len(self.select(kind=kind, **kwargs))

    def bytes_sent(self) -> int:
        """Total payload bytes across all ``send`` events."""
        return sum(ev.size for ev in self.events if ev.kind == "send")

    def messages_between(self, a: str, b: str) -> int:
        """Count of messages exchanged in either direction between contexts."""
        return sum(1 for ev in self.events
                   if ev.kind == "send" and {ev.src, ev.dst} == {a, b})

    # -- marks (scoped counting for experiments) ---------------------------

    def mark(self) -> int:
        """Remember the current position; pair with :meth:`since`."""
        pos = len(self.events)
        self._marks.append(pos)
        return pos

    def since(self, mark: int | None = None) -> list[TraceEvent]:
        """Events recorded after ``mark`` (or after the latest :meth:`mark`)."""
        if mark is None:
            mark = self._marks.pop() if self._marks else 0
        return self.events[mark:]

    def clear(self) -> None:
        """Drop all recorded events and marks."""
        self.events.clear()
        self._marks.clear()

    # -- determinism audit --------------------------------------------------

    def fingerprint(self) -> str:
        """A stable digest of the entire event log.

        Two runs of the same seeded scenario must produce byte-identical
        traces; comparing fingerprints is how the simulation-test harness
        audits determinism far more deeply than comparing final results —
        every message, drop, crash, and invocation (with its exact virtual
        time) feeds the digest.
        """
        digest = hashlib.sha256()
        for ev in self.events:
            digest.update(
                f"{ev.time!r}|{ev.kind}|{ev.src}|{ev.dst}|{ev.label}|{ev.size}\n"
                .encode())
        return digest.hexdigest()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)


@dataclass
class TraceSummary:
    """Aggregate view of a trace window, used by the bench harness."""

    messages: int = 0
    bytes: int = 0
    drops: int = 0
    invokes: int = 0
    by_label: dict[str, int] = field(default_factory=dict)

    @classmethod
    def of(cls, events: list[TraceEvent]) -> "TraceSummary":
        """Summarise a list of events (e.g. ``trace.since(mark)``)."""
        summary = cls()
        for ev in events:
            if ev.kind == "send":
                summary.messages += 1
                summary.bytes += ev.size
            elif ev.kind == "drop":
                summary.drops += 1
            elif ev.kind == "invoke":
                summary.invokes += 1
            if ev.label:
                summary.by_label[ev.label] = summary.by_label.get(ev.label, 0) + 1
        return summary
