"""Nodes: the machines of the simulated distributed system.

A node hosts any number of *contexts* (protection/address spaces — the
paper's unit of encapsulation).  Nodes can crash and restart; while crashed,
the network drops everything addressed to them and their contexts refuse to
execute.
"""

from __future__ import annotations

from .context import Context
from .errors import ConfigurationError


class Node:
    """One machine.

    Created through :meth:`repro.kernel.system.System.add_node`; not meant to
    be instantiated directly.
    """

    def __init__(self, system, name: str):
        self.system = system
        self.name = name
        self.alive = True
        self.contexts: dict[str, Context] = {}
        self._crash_count = 0
        # Region label for geo-aware policies (see repro.kernel.topology
        # build_regions and the "regional" proxy policy).  The empty
        # default means "no region": region-oblivious deployments are
        # byte-identical to a build without the attribute.
        self.region = ""
        # Server-side overload stack (repro.kernel.admission), consulted
        # by the RPC dispatcher before executing a request.  ``None`` —
        # the default — admits everything: behaviour and wire bytes are
        # identical to a build without admission control.
        self.admission = None

    def create_context(self, name: str) -> Context:
        """Create a new context (address space) on this node."""
        if name in self.contexts:
            raise ConfigurationError(f"context {name!r} already exists on node {self.name!r}")
        ctx = Context(self, name)
        self.contexts[name] = ctx
        self.system.register_context(ctx)
        return ctx

    def context(self, name: str) -> Context:
        """Look up a context on this node by name."""
        try:
            return self.contexts[name]
        except KeyError:
            raise ConfigurationError(f"no context {name!r} on node {self.name!r}") from None

    # -- failure model -------------------------------------------------------

    def crash(self) -> None:
        """Crash the node: all its contexts stop answering until restart."""
        self.alive = False
        self._crash_count += 1
        self.system.trace.emit(self.system.max_time(), "crash", self.name, "", "node-crash")

    def restart(self) -> None:
        """Restart a crashed node.

        Volatile context state survives in this model — the simulation stands
        in for stable storage plus recovery, which the paper treats as a
        service-internal matter hidden behind the proxy.
        """
        self.alive = True
        self.system.trace.emit(self.system.max_time(), "restart", self.name, "", "node-restart")

    @property
    def crash_count(self) -> int:
        """Number of times this node has crashed."""
        return self._crash_count

    def __repr__(self) -> str:
        state = "up" if self.alive else "DOWN"
        return f"Node({self.name!r}, {state}, contexts={sorted(self.contexts)})"
