"""Cost-model parameters.

The virtual-time costs below are calibrated to the mid-1980s hardware the
paper's contemporaries report (Birrell & Nelson 1984 measure ~1.1 ms for a
null RPC on Dorados over 3 Mbit Ethernet; 10 Mbit Ethernet was current at
ICDCS '86).  Absolute values matter less than their *ratios* — local call ≪
same-node IPC ≪ remote message — because the reproduction targets the shape
of the comparisons, not testbed-specific numbers.

All times are seconds of virtual time; all sizes are bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Virtual-time costs charged by the kernel and the layers above it.

    Attributes:
        local_call: one intra-context procedure call (proxy dispatch floor).
        ipc_latency: one-way message between contexts on the same node.
        remote_latency: one-way propagation between distinct nodes.
        byte_cost: per-byte transmission cost on the inter-node network
            (8e-7 s/B ≈ 10 Mbit/s Ethernet).
        ipc_byte_cost: per-byte cost for same-node IPC (memory copy).
        marshal_byte_cost: CPU cost of (un)marshalling one byte.
        marshal_fixed: fixed CPU cost of building one message.
        dispatch_cost: server-side demultiplex + upcall cost per request.
        page_size: DSM page size in bytes.
        page_fault_overhead: trap + handler cost for one DSM fault.
        migration_fixed: fixed cost of packing/unpacking a migrating object.
        rpc_timeout: client retransmission timeout.
        rpc_max_retries: retransmissions before the call fails.
        disk_latency: seek + rotational latency of one stable-store access
            (~20 ms: a mid-1980s winchester disk).
        disk_byte_cost: per-byte transfer cost of the stable store
            (1e-6 s/B ≈ 1 MB/s).
    """

    local_call: float = 2e-6
    ipc_latency: float = 1e-4
    remote_latency: float = 1e-3
    byte_cost: float = 8e-7
    ipc_byte_cost: float = 5e-8
    marshal_byte_cost: float = 2e-8
    marshal_fixed: float = 2e-5
    dispatch_cost: float = 3e-5
    page_size: int = 4096
    page_fault_overhead: float = 2e-4
    migration_fixed: float = 2e-3
    rpc_timeout: float = 2e-2
    rpc_max_retries: int = 8
    disk_latency: float = 2e-2
    disk_byte_cost: float = 1e-6

    def with_overrides(self, **kwargs) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Default cost model used when a :class:`~repro.kernel.system.System` is
#: created without an explicit one.
DEFAULT_COSTS = CostModel()
