"""The simulated inter-node network.

Models a mid-1980s LAN: point-to-point message delivery with propagation
latency, per-byte transmission cost, optional per-link overrides, seeded
random loss, node crashes, and partitions.

The network is deliberately *unreliable and silent*: a dropped message is not
reported to the sender (that is the RPC layer's problem to detect by
timeout), exactly as on real hardware.

Hot path: :meth:`Network.transmit` runs once per message and used to build a
fresh default :class:`LinkSpec` per call plus a frozen-dataclass
:class:`Delivery` per outcome.  Both are now plain named tuples (cheap to
construct, immutable, attribute access preserved), the default spec is
interned and rebuilt only when :meth:`set_default_loss` changes it, and the
partition check is skipped entirely while no partition is active.
"""

from __future__ import annotations

from typing import NamedTuple

from .errors import ConfigurationError
from .params import CostModel
from .randomness import SeedSequence
from .trace import Trace


class LinkSpec(NamedTuple):
    """Per-link override of the default cost model.

    Attributes:
        latency: one-way propagation delay in seconds.
        byte_cost: per-byte transmission cost in seconds.
        loss: probability in [0, 1] that a message on this link is dropped.
    """

    latency: float
    byte_cost: float
    loss: float = 0.0


class Delivery(NamedTuple):
    """Outcome of one transmission attempt.

    Attributes:
        delivered: whether the message arrived.
        arrive_time: virtual arrival time (meaningful only when delivered).
        reason: drop reason when not delivered (``"loss"``, ``"crash"``,
            ``"partition"``).
    """

    delivered: bool
    arrive_time: float
    reason: str = ""


class Network:
    """Node-to-node link model with loss, crashes and partitions."""

    def __init__(self, costs: CostModel, seeds: SeedSequence, trace: Trace):
        self.costs = costs
        self.trace = trace
        self._rng = seeds.stream("network.loss")
        self._nodes: dict[str, "object"] = {}
        self._links: dict[tuple[str, str], LinkSpec] = {}
        self._default_loss = 0.0
        self._default_spec = LinkSpec(latency=costs.remote_latency,
                                      byte_cost=costs.byte_cost, loss=0.0)
        self._groups: dict[str, int] = {}
        #: Whether any partition is currently in force (cheap early-out for
        #: the per-message group comparison on the hot path).
        self._partition_active = False
        #: Multiplier on inter-node propagation latency (latency-spike
        #: injection; see repro.failures.injectors.latency_spike).
        self.latency_factor = 1.0

    # -- topology -----------------------------------------------------------

    def register_node(self, node) -> None:
        """Attach a node to the network (done by :class:`System.add_node`)."""
        if node.name in self._nodes:
            raise ConfigurationError(f"node {node.name!r} already registered")
        self._nodes[node.name] = node
        self._groups[node.name] = 0

    def node(self, name: str):
        """Look up a registered node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise ConfigurationError(f"unknown node {name!r}") from None

    def set_link(self, src: str, dst: str, spec: LinkSpec,
                 symmetric: bool = True) -> None:
        """Override the cost model for one directed (or symmetric) link."""
        self._links[(src, dst)] = spec
        if symmetric:
            self._links[(dst, src)] = spec

    def set_default_loss(self, probability: float) -> None:
        """Set the loss probability applied to links without an override."""
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(f"loss probability {probability!r} not in [0,1]")
        self._default_loss = probability
        self._default_spec = LinkSpec(latency=self.costs.remote_latency,
                                      byte_cost=self.costs.byte_cost,
                                      loss=probability)

    def set_latency_factor(self, factor: float) -> float:
        """Scale inter-node propagation latency; returns the previous factor."""
        if factor <= 0.0:
            raise ConfigurationError(f"latency factor {factor!r} must be > 0")
        previous = self.latency_factor
        self.latency_factor = factor
        return previous

    # -- partitions ----------------------------------------------------------

    def partition(self, islands: list[set[str]]) -> None:
        """Split the network into isolated islands of node names.

        Nodes not mentioned in any island keep their current group only if it
        is group 0; every mentioned node is reassigned.  Messages between
        different islands are silently dropped until :meth:`heal`.
        """
        for group, island in enumerate(islands, start=1):
            for name in island:
                if name not in self._nodes:
                    raise ConfigurationError(f"unknown node {name!r} in partition")
                self._groups[name] = group
        self._partition_active = any(self._groups.values())

    def heal(self) -> None:
        """Remove all partitions."""
        for name in self._groups:
            self._groups[name] = 0
        self._partition_active = False

    def partitioned(self, a: str, b: str) -> bool:
        """Whether nodes ``a`` and ``b`` are currently separated."""
        if not self._partition_active:
            return False
        return self._groups.get(a, 0) != self._groups.get(b, 0)

    # -- transmission --------------------------------------------------------

    def link_spec(self, src: str, dst: str) -> LinkSpec:
        """The effective spec for one directed link (override or defaults)."""
        spec = self._links.get((src, dst))
        if spec is not None:
            return spec
        return self._default_spec

    def transit_time(self, src: str, dst: str, nbytes: int) -> float:
        """One-way transfer time for ``nbytes`` from ``src`` to ``dst``.

        Same-node transfers use the IPC costs from the cost model.
        """
        costs = self.costs
        if src == dst:
            return costs.ipc_latency + nbytes * costs.ipc_byte_cost
        spec = self._links.get((src, dst))
        if spec is None:
            spec = self._default_spec
        return spec.latency * self.latency_factor + nbytes * spec.byte_cost

    def reliable(self, src: str, dst: str) -> bool:
        """Whether a message from ``src`` to ``dst`` would deliver for
        certain *right now* — both nodes alive, no partition between
        them, and a loss-free link.

        Used by the reply-batching layer to decide whether several
        same-tick frames may be coalesced: a clean link draws no random
        number in :meth:`transmit`, so replacing N sends with one leaves
        the RNG stream untouched.  A lossy link must keep its per-frame
        draws, so batching declines it.
        """
        nodes = self._nodes
        src_node = nodes.get(src)
        dst_node = nodes.get(dst)
        if src_node is None or dst_node is None:
            return False
        if not (src_node.alive and dst_node.alive):
            return False
        if src == dst:
            return True
        if self._partition_active and self.partitioned(src, dst):
            return False
        spec = self._links.get((src, dst))
        if spec is None:
            spec = self._default_spec
        return spec.loss == 0.0

    def transmit(self, src: str, dst: str, nbytes: int, at: float) -> Delivery:
        """Attempt delivery of one message; never raises for network faults.

        Loss, crash, and partition all surface as ``delivered=False`` — the
        sender cannot tell them apart, just like on a real wire.  Every drop
        emits a ``drop`` trace event, whichever end caused it.
        """
        nodes = self._nodes
        src_node = nodes.get(src)
        if src_node is None:
            raise ConfigurationError(f"unknown node {src!r}")
        dst_node = nodes.get(dst)
        if dst_node is None:
            raise ConfigurationError(f"unknown node {dst!r}")
        costs = self.costs
        # Parenthesised exactly like transit_time() so the float sum is
        # bit-identical to the pre-inlining arithmetic (fingerprint audit).
        if src == dst:
            arrive = at + (costs.ipc_latency + nbytes * costs.ipc_byte_cost)
            spec = None
        else:
            spec = self._links.get((src, dst))
            if spec is None:
                spec = self._default_spec
            arrive = at + (spec.latency * self.latency_factor
                           + nbytes * spec.byte_cost)
        if not src_node.alive:
            self.trace.emit(at, "drop", src, dst, "crash", nbytes)
            return Delivery(False, arrive, "crash")
        if not dst_node.alive:
            self.trace.emit(at, "drop", src, dst, "crash", nbytes)
            return Delivery(False, arrive, "crash")
        if spec is not None:
            if self._partition_active and self.partitioned(src, dst):
                self.trace.emit(at, "drop", src, dst, "partition", nbytes)
                return Delivery(False, arrive, "partition")
            loss = spec.loss
            if loss > 0.0 and self._rng.random() < loss:
                self.trace.emit(at, "drop", src, dst, "loss", nbytes)
                return Delivery(False, arrive, "loss")
        return Delivery(True, arrive)
