"""The :class:`System` facade: one simulated distributed system.

A ``System`` owns the cost model, the seeded randomness, the global message
trace, the network, and the set of nodes.  Higher layers attach themselves to
well-known slots:

* ``transport`` — context-to-context messaging (:mod:`repro.rpc.transport`),
* ``codebase`` — the proxy-factory registry (:mod:`repro.core.factory`),
* ``name_service`` — the bootstrap name service proxy (:mod:`repro.naming`).

Most users never build a ``System`` by hand; :func:`repro.make_system` wires
a complete stack.
"""

from __future__ import annotations

from .context import Context
from .errors import ConfigurationError
from .network import Network
from .node import Node
from .params import DEFAULT_COSTS, CostModel
from .randomness import SeedSequence
from .trace import Trace


class System:
    """One simulated distributed system (kernel layer)."""

    def __init__(self, seed: int = 0, costs: CostModel | None = None):
        self.costs = costs or DEFAULT_COSTS
        self.seeds = SeedSequence(seed)
        self.trace = Trace()
        self.network = Network(self.costs, self.seeds, self.trace)
        self.nodes: dict[str, Node] = {}
        self._contexts: dict[str, Context] = {}
        # Slots populated by higher layers (see module docstring).
        self.transport = None
        self.rpc = None
        self.codebase = None
        self.name_service = None
        #: Circuit-breaker registry (repro.resilience.breaker); None until
        #: a resilience-aware component installs one — the RPC protocol
        #: feeds call outcomes into it only once it exists.
        self.breakers = None
        #: Per-link RTT tracker (repro.resilience.latency); None until a
        #: resilience-aware component installs one — the RPC protocol feeds
        #: round-trip samples into it only once it exists, and adaptive
        #: retry policies consult it for per-link patience.
        self.latency = None

    # -- topology ------------------------------------------------------------

    def add_node(self, name: str) -> Node:
        """Create a node and attach it to the network."""
        if name in self.nodes:
            raise ConfigurationError(f"node {name!r} already exists")
        node = Node(self, name)
        self.nodes[name] = node
        self.network.register_node(node)
        return node

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise ConfigurationError(f"unknown node {name!r}") from None

    def register_context(self, ctx: Context) -> None:
        """Index a newly created context (called by :class:`Node`)."""
        self._contexts[ctx.context_id] = ctx

    def context(self, context_id: str) -> Context:
        """Look up any context in the system by its ``"node/context"`` id."""
        try:
            return self._contexts[context_id]
        except KeyError:
            raise ConfigurationError(f"unknown context {context_id!r}") from None

    def contexts(self) -> list[Context]:
        """All contexts in the system, in creation order."""
        return list(self._contexts.values())

    # -- time ----------------------------------------------------------------

    def max_time(self) -> float:
        """Latest virtual time across all context clocks.

        Used to stamp system-wide events (crashes, partitions) that are not
        tied to one activity.
        """
        if not self._contexts:
            return 0.0
        return max(ctx.clock.now for ctx in self._contexts.values())

    def synchronize_clocks(self) -> float:
        """Advance every context clock to the global maximum and return it.

        Workload drivers call this between phases so that activities that
        idled do not appear to live in the past.
        """
        now = self.max_time()
        for ctx in self._contexts.values():
            ctx.clock.advance_to(now)
        return now

    def __repr__(self) -> str:
        return (f"System(nodes={sorted(self.nodes)}, "
                f"contexts={len(self._contexts)}, t={self.max_time():.6f})")
