"""Deterministic randomness.

Every stochastic decision in the library (message loss, workload key choice,
crash schedules) draws from a named sub-stream of one master seed, so that

* two runs with the same seed are bit-identical, and
* adding a new consumer of randomness does not perturb existing streams.
"""

from __future__ import annotations

import hashlib
import random


class SeedSequence:
    """Derives independent, reproducible :class:`random.Random` streams.

    Streams are keyed by name; the same ``(master_seed, name)`` pair always
    yields an identically-seeded generator, regardless of creation order.
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (cached) generator for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(self.derive_seed(name))
            self._streams[name] = rng
        return rng

    def derive_seed(self, name: str) -> int:
        """Derive the integer seed for the named stream (stable across runs)."""
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, name: str) -> "SeedSequence":
        """Derive a child sequence, for subsystems that mint their own streams."""
        return SeedSequence(self.derive_seed(name))

    def streams_used(self) -> tuple[str, ...]:
        """Names of every stream drawn so far, sorted (determinism audit).

        Two runs of the same seeded scenario must consume the same set of
        named streams; a new name appearing in only one run is a smoking gun
        for order-dependent randomness.
        """
        return tuple(sorted(self._streams))

    def __repr__(self) -> str:
        return f"SeedSequence(master_seed={self.master_seed})"
