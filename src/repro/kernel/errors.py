"""Exception hierarchy for the proxy-principle reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching programming errors.

The distribution-related subtree mirrors the failure modes a 1986-era
distributed OS exposes to its clients: unreachable nodes, lost messages,
dangling references, and protocol violations.  The *proxy principle* is
precisely about confining where these surface: only proxies and the layers
below them may raise the distribution subtree; client code that follows the
principle never sees a raw transport error unless the proxy chooses to
propagate it.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A system, node, or context was configured inconsistently."""


class SimulationError(ReproError):
    """The virtual-time kernel was driven incorrectly (e.g. time moved backwards)."""


# --------------------------------------------------------------------------
# Distribution failures (the transport / protocol subtree)
# --------------------------------------------------------------------------


class DistributionError(ReproError):
    """Base class for failures caused by distribution itself."""


class NodeDown(DistributionError):
    """The destination node is crashed or unreachable."""


class PartitionedError(DistributionError):
    """Source and destination are on opposite sides of a network partition."""


class MessageLost(DistributionError):
    """A message was dropped by the (simulated) network."""


class RpcTimeout(DistributionError):
    """No reply arrived within the protocol's retry budget."""


class DeadlineExceeded(DistributionError):
    """The call's deadline budget was spent before a reply arrived.

    Deadlines propagate in frame headers, so a nested proxy→server→proxy
    chain stops retrying — and servers skip dispatch — once the *root*
    caller's budget is gone (see :mod:`repro.resilience.deadline`).
    """


class CircuitOpen(DistributionError):
    """A circuit breaker to the destination is open; the call failed fast.

    Raised by resilience-aware proxies instead of burning a full retry
    budget against a destination that recent calls have shown to be down
    (see :mod:`repro.resilience.breaker`).
    """


class BindError(DistributionError):
    """Binding to a service failed (unknown name, no exporter, bad handshake)."""


class DanglingReference(DistributionError):
    """An object reference points at an object that no longer exists there."""


class ObjectMoved(DistributionError):
    """The object migrated; carries a forwarding hint when one is known.

    Attributes:
        forward: the :class:`~repro.wire.refs.ObjectRef` of the new location,
            or ``None`` when the old host kept no forwarding pointer.
    """

    def __init__(self, message: str, forward=None):
        super().__init__(message)
        self.forward = forward


class StaleShardRing(DistributionError):
    """The call was routed by a stale shard ring; carries the current map.

    The sharded counterpart of :class:`ObjectMoved`: raised at the
    dispatcher when a plain (un-enveloped) call reaches a shard whose
    ring epoch has advanced past the bootstrap, so a client that never
    learned about sharding — or fell behind a rebalance — is redirected
    instead of silently served from the wrong partition.

    Attributes:
        ring_map: the shard's current ``[epoch, ring, shards]`` map (see
            :class:`~repro.wire.shards.ShardState`), or ``None`` when the
            exception crossed a transport that kept no detail.
    """

    def __init__(self, message: str, ring_map=None):
        super().__init__(message)
        self.ring_map = ring_map


class Overloaded(DistributionError):
    """The server shed the call at admission, before executing it.

    Raised client-side when a request was refused by the target node's
    admission control (queue full or token bucket empty — see
    :mod:`repro.kernel.admission`) and the retry budget or deadline left
    no room to honor the server's retry-after hint.  Shed calls are
    *definitely not executed*: the refusal happens before dispatch and
    is never cached by the at-most-once layer, so retrying is always
    safe.

    Attributes:
        retry_after: the server's hint — the absolute virtual time at
            which it expects capacity — or ``None`` when the exception
            crossed a transport that kept no header.
    """

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class TransactionBlocked(DistributionError):
    """The key is wedged under a prepared (in-doubt) two-phase transaction.

    Raised by a versioned store when a read or write lands on a key that a
    2PC ``prepare`` locked and whose coordinator has not yet delivered the
    commit/abort decision.  This is the blocking 2PC is famous for: the
    store cannot safely answer until the in-doubt transaction resolves, so
    it refuses rather than guess.  It lives in the distribution subtree —
    the caller experiences it exactly like an unreachable dependency, and
    retrying after recovery is always safe.
    """


# --------------------------------------------------------------------------
# Protocol / typing violations
# --------------------------------------------------------------------------


class ProtocolError(ReproError):
    """A peer sent a malformed or out-of-sequence protocol message."""


class MarshalError(ReproError):
    """A value could not be marshalled or unmarshalled."""


class InterfaceError(ReproError):
    """An operation was invoked that the target interface does not declare."""


class ConformanceError(InterfaceError):
    """An implementation does not structurally conform to its declared interface."""


class EncapsulationViolation(ReproError):
    """The proxy principle was violated.

    Raised when code attempts to smuggle a raw (non-proxy) reference to a
    remote object across a context boundary, or to invoke a remote object
    without going through its proxy.
    """
