"""Contexts: address spaces, the unit of encapsulation.

A context is the paper's protection boundary.  Objects live inside exactly
one context; nothing outside a context may touch its objects except through
messages — and, one layer up, through proxies.

At kernel level a context is mostly bookkeeping: an identity, a virtual-time
clock for the single activity executing inside it, and the mailbox hookup
(``handler``) that the RPC layer installs.  The export and proxy tables are
populated by :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Any, Callable

from .clock import BusyLine, Clock


class Context:
    """One address space on one node.

    Attributes:
        node: the hosting :class:`~repro.kernel.node.Node`.
        name: context name, unique within the node.
        clock: virtual-time cursor of the activity running in this context.
        handler: message handler installed by the RPC layer; called as
            ``handler(frame_bytes, arrive_time) -> (reply_bytes, done_time)``
            or ``None`` for one-way messages.
        exports: export table — oid → exported entry (managed by repro.core).
        proxies: proxy table — remote ref key → live proxy (repro.core).
        line: busy line serialising request processing in this context.
        encoder_hook: marshalling swizzle hook for values leaving this
            context (installed by repro.core; exported objects become refs).
        decoder_hook: swizzle hook for refs arriving in this context
            (installed by repro.core; refs become proxies).
    """

    __slots__ = ("node", "name", "clock", "line", "handler", "exports",
                 "proxies", "encoder_hook", "decoder_hook", "space",
                 "current_deadline", "_context_id")

    def __init__(self, node, name: str):
        self.node = node
        self.name = name
        self._context_id = f"{node.name}/{name}"
        self.clock = Clock()
        self.line = BusyLine()
        self.handler: Callable[[bytes, float], tuple[bytes, float] | None] | None = None
        self.exports: dict[str, Any] = {}
        self.proxies: dict[str, Any] = {}
        self.encoder_hook: Callable[[Any], Any] | None = None
        self.decoder_hook: Callable[[Any], Any] | None = None
        self.space: Any = None  # ObjectSpace, attached by repro.core.export
        #: Deadline of the request this context is currently serving, set by
        #: the dispatcher so nested outbound calls inherit the root caller's
        #: budget (repro.resilience.deadline).
        self.current_deadline: Any = None

    @property
    def context_id(self) -> str:
        """Globally unique id: ``"<node>/<context>"`` (computed once — node
        and context names are fixed at creation, and the id is read on every
        hop of the invoke path)."""
        return self._context_id

    @property
    def system(self):
        """The owning :class:`~repro.kernel.system.System`."""
        return self.node.system

    @property
    def alive(self) -> bool:
        """Whether the hosting node is up."""
        return self.node.alive

    @property
    def now(self) -> float:
        """Current virtual time of this context's activity."""
        return self.clock.now

    def charge(self, seconds: float) -> float:
        """Charge local CPU time to this context's activity."""
        return self.clock.advance(seconds)

    def __repr__(self) -> str:
        return f"Context({self.context_id!r}, now={self.clock.now:.6f})"
