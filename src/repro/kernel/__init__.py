"""Simulation kernel: virtual time, nodes, contexts, and the network.

This package is the substrate everything else runs on.  It knows nothing
about proxies, RPC, or marshalling — only machines, address spaces, virtual
time, and unreliable message transmission.
"""

from .clock import BusyLine, Clock
from .context import Context
from .errors import (
    BindError,
    ConfigurationError,
    ConformanceError,
    DanglingReference,
    DistributionError,
    EncapsulationViolation,
    InterfaceError,
    MarshalError,
    MessageLost,
    NodeDown,
    ObjectMoved,
    PartitionedError,
    ProtocolError,
    ReproError,
    RpcTimeout,
    SimulationError,
)
from .network import Delivery, LinkSpec, Network
from .node import Node
from .params import DEFAULT_COSTS, CostModel
from .randomness import SeedSequence
from .system import System
from .topology import Site, build_ring, build_sites, build_star
from .trace import Trace, TraceEvent, TraceSummary

__all__ = [
    "BindError", "BusyLine", "Clock", "ConfigurationError", "ConformanceError",
    "Context", "CostModel", "DEFAULT_COSTS", "DanglingReference", "Delivery",
    "DistributionError", "EncapsulationViolation", "InterfaceError", "LinkSpec",
    "MarshalError", "MessageLost", "Network", "Node", "NodeDown", "ObjectMoved",
    "PartitionedError", "ProtocolError", "ReproError", "RpcTimeout",
    "SeedSequence", "SimulationError", "Site", "System", "Trace",
    "TraceEvent", "TraceSummary", "build_ring", "build_sites", "build_star",
]
