"""Admission control: bounded run queues, token buckets, and bulkheads.

Nothing in the base model ever says *no* to work: every request that
reaches a dispatcher executes, so offered load beyond a node's service
rate turns into an ever-growing busy-line backlog — congestion collapse,
where the server stays 100% busy serving requests whose callers gave up
long ago.  This module is the server-side overload stack.  Per the
paper's thesis it lives entirely behind the proxy boundary: clients see
only the interface, plus latency, rejection, or a retry-after hint.

An :class:`AdmissionControl` is installed per **node** (``node.admission``;
``None`` — the default — means "admit everything", byte-identical to a
build without this module) and consulted by the RPC dispatcher *before*
dispatch:

* :class:`RunQueue` bounds the number of admitted-but-undrained requests.
  Admitted calls still serialise through the context busy line — that
  *is* the queue draining in virtual time — so the run queue is the cap
  on how deep that backlog may grow.  Overflow is refused with a
  **retry-after hint**: the virtual time at which the earliest admitted
  request finishes and a slot frees.
* :class:`TokenBucket` throttles per service class with a burst
  allowance, shedding *earlier* than the queue (a refused call costs
  nothing and holds no slot), which is what keeps a retry storm from
  occupying every queue slot.  Its hint is the time the next token
  accrues.
* The **bulkhead** partitions the node's queue capacity into per-class
  compartments (shares must sum to the node capacity, ``"*"`` being the
  default compartment), so one hot service's backlog cannot occupy the
  slots its neighbours need.

Order matters for conservation: the bucket is *peeked* first, the queue
checked second, and the token taken only once both admit — a queue
refusal never consumes a token, and a throttle refusal never holds a
queue slot.  Everything here is deterministic virtual-time arithmetic:
no wall clock, no randomness, no background activity.
"""

from __future__ import annotations

from bisect import bisect_right, insort

from ..metrics.counters import CounterSet
from .errors import ConfigurationError

#: The catch-all service class: targets never :meth:`~AdmissionControl.
#: assign`-ed to a class land here, as does the shared queue/bucket when
#: no bulkhead or per-class rates are configured.
DEFAULT_CLASS = "*"

#: Retry-after fallback when a full queue holds only still-running work
#: with no recorded finish time yet: hint one (modelled) service time out.
_FALLBACK_HINT = 1e-3


class TokenBucket:
    """A deterministic token bucket: ``rate`` tokens/s up to ``burst``.

    The bucket starts full and refills continuously (fractional tokens),
    so availability is pure arithmetic on the virtual clock — no timers.
    :meth:`refusal` peeks without consuming; :meth:`take` consumes.  The
    split lets callers compose the bucket with other admission checks
    while conserving tokens: a call refused elsewhere never pays here.
    """

    __slots__ = ("rate", "burst", "level", "_refilled")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"token rate must be > 0, got {rate}")
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1 token, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.level = float(burst)
        self._refilled = 0.0

    def _refill(self, now: float) -> None:
        if now > self._refilled:
            self.level = min(self.burst,
                             self.level + (now - self._refilled) * self.rate)
            self._refilled = now

    def available(self, now: float) -> float:
        """Tokens on hand at virtual time ``now`` (after refill)."""
        self._refill(now)
        return self.level

    def refusal(self, now: float, tokens: float = 1.0) -> float | None:
        """``None`` if ``tokens`` are available now, else the retry-after.

        The hint is the absolute virtual time at which the shortfall will
        have accrued — exact, because refill is linear and nothing else
        drains the bucket between now and then.
        """
        self._refill(now)
        if self.level >= tokens:
            return None
        return now + (tokens - self.level) / self.rate

    def take(self, now: float, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` if available; returns whether it did."""
        self._refill(now)
        if self.level < tokens:
            return False
        self.level -= tokens
        return True


class RunQueue:
    """A bounded count of admitted-but-undrained requests, in virtual time.

    The queue tracks two populations: requests currently *running* (admitted,
    finish time not yet known) and recorded *finish times* still in the
    future.  Depth is their sum after expiring past finishes — requests
    whose virtual end has passed no longer hold a slot.  ``capacity=None``
    means unbounded (the ``shedless`` configuration: every request admits,
    nothing sheds, the backlog is whatever the callers build).
    """

    __slots__ = ("capacity", "_running", "_ends")

    def __init__(self, capacity: int | None) -> None:
        if capacity is not None and capacity < 1:
            raise ConfigurationError(
                f"queue capacity must be >= 1 (or None), got {capacity}")
        self.capacity = capacity
        self._running = 0
        self._ends: list[float] = []

    def _expire(self, now: float) -> None:
        done = bisect_right(self._ends, now)
        if done:
            del self._ends[:done]

    def depth(self, now: float) -> int:
        """Admitted requests still holding a slot at virtual time ``now``."""
        self._expire(now)
        return self._running + len(self._ends)

    def offer(self, now: float) -> bool:
        """Admit one request (and hold a slot) if a slot is free."""
        if self.capacity is not None and self.depth(now) >= self.capacity:
            return False
        self._running += 1
        return True

    def free_at(self, now: float) -> float | None:
        """Earliest known virtual time a slot frees (the retry-after hint).

        ``None`` when every held slot belongs to still-running work whose
        finish time is not yet recorded — the caller supplies a fallback.
        """
        self._expire(now)
        return self._ends[0] if self._ends else None

    def finish(self, end: float) -> None:
        """Record an admitted request's drain time (its busy-line end)."""
        if self._running <= 0:
            raise ConfigurationError(
                "RunQueue.finish without a matching offer")
        self._running -= 1
        insort(self._ends, end)


class AdmissionControl:
    """Per-node admission: run queue + token buckets + bulkhead.

    Configuration (all keyword-only):

    ``capacity``
        Total run-queue slots for the node (``None`` = unbounded).
    ``service_time``
        Deterministic modelled work per admitted call, charged to the
        serving context's busy line by the dispatcher.  This is what
        makes calls *queue and drain in virtual time* rather than
        executing instantaneously.
    ``rate`` / ``burst``
        The default token bucket applied to every class without its own
        (``rate=None`` = no throttle; ``burst`` defaults to ``rate``).
    ``bulkhead``
        Class name → slot share.  Shares must sum to ``capacity`` and
        include the ``"*"`` default compartment; each class then queues
        in its own compartment and cannot starve the others.
    ``rates``
        Class name → ``(rate, burst)`` per-class token buckets.

    Targets are mapped to classes with :meth:`assign` (by exported object
    id); unassigned targets use :data:`DEFAULT_CLASS`.  :meth:`admit`
    returns ``None`` to admit or the absolute virtual-time retry-after
    hint to shed; every admitted call must be matched by :meth:`finish`
    with its busy-line end so the slot drains.

    Counters (a :class:`~repro.metrics.counters.CounterSet` under
    ``.counters``): ``admitted``, ``shed_queue``, ``shed_throttle``, and
    per-class ``admitted:<class>`` / ``shed_queue:<class>`` /
    ``shed_throttle:<class>`` splits.
    """

    def __init__(self, *, capacity: int | None = None,
                 service_time: float = 0.0,
                 rate: float | None = None, burst: float | None = None,
                 bulkhead: dict[str, int] | None = None,
                 rates: dict[str, tuple[float, float]] | None = None) -> None:
        if service_time < 0:
            raise ConfigurationError(
                f"service_time must be >= 0, got {service_time}")
        self.service_time = float(service_time)
        self.counters = CounterSet()
        self._classes: dict[str, str] = {}
        if bulkhead:
            if capacity is None:
                raise ConfigurationError(
                    "a bulkhead needs a finite node capacity to partition")
            if DEFAULT_CLASS not in bulkhead:
                raise ConfigurationError(
                    f"bulkhead must include the {DEFAULT_CLASS!r} default "
                    f"compartment, got {sorted(bulkhead)}")
            total = sum(bulkhead.values())
            if total != capacity:
                raise ConfigurationError(
                    f"bulkhead shares must sum to the node capacity "
                    f"{capacity}, got {total} from {sorted(bulkhead)}")
            self._queues = {name: RunQueue(share)
                            for name, share in bulkhead.items()}
        else:
            self._queues = {DEFAULT_CLASS: RunQueue(capacity)}
        self._buckets: dict[str, TokenBucket] = {}
        if rate is not None:
            self._buckets[DEFAULT_CLASS] = TokenBucket(
                rate, rate if burst is None else burst)
        for name, (class_rate, class_burst) in (rates or {}).items():
            self._buckets[name] = TokenBucket(class_rate, class_burst)

    def assign(self, target: str, service_class: str) -> None:
        """Map an exported object id to a service class (bulkhead lane)."""
        if service_class not in self._queues \
                and DEFAULT_CLASS not in self._queues:
            raise ConfigurationError(
                f"service class {service_class!r} has no bulkhead "
                f"compartment (known: {sorted(self._queues)})")
        self._classes[target] = service_class

    def service_class(self, target: str) -> str:
        """The class a target admits under (``"*"`` when unassigned)."""
        return self._classes.get(target, DEFAULT_CLASS)

    def _queue(self, service_class: str) -> RunQueue:
        queue = self._queues.get(service_class)
        return self._queues[DEFAULT_CLASS] if queue is None else queue

    def _bucket(self, service_class: str) -> TokenBucket | None:
        bucket = self._buckets.get(service_class)
        return self._buckets.get(DEFAULT_CLASS) if bucket is None else bucket

    def depth(self, target: str, now: float) -> int:
        """Queue depth in the target's compartment at virtual ``now``."""
        return self._queue(self.service_class(target)).depth(now)

    def admit(self, target: str, now: float) -> float | None:
        """``None`` to admit ``target``'s call, else the retry-after hint.

        Peek the bucket, check the queue, and only then take the token:
        a queue refusal must not consume a token (conservation), and a
        throttle refusal must not hold a queue slot.
        """
        service_class = self.service_class(target)
        bucket = self._bucket(service_class)
        queue = self._queue(service_class)
        if bucket is not None:
            hint = bucket.refusal(now)
            if hint is not None:
                self.counters.incr("shed_throttle")
                self.counters.incr(f"shed_throttle:{service_class}")
                return hint
        if not queue.offer(now):
            self.counters.incr("shed_queue")
            self.counters.incr(f"shed_queue:{service_class}")
            free = queue.free_at(now)
            if free is None or free <= now:
                free = now + (self.service_time or _FALLBACK_HINT)
            return free
        if bucket is not None:
            bucket.take(now)
        self.counters.incr("admitted")
        self.counters.incr(f"admitted:{service_class}")
        return None

    def finish(self, target: str, end: float) -> None:
        """Release the slot held since :meth:`admit`; ``end`` is when the
        call drains off the busy line (the slot frees then, not now)."""
        self._queue(self.service_class(target)).finish(end)

    def snapshot(self) -> dict[str, int]:
        """The counters as a plain dict (for experiments and reports)."""
        return self.counters.as_dict()


def install_admission(node, **config) -> AdmissionControl:
    """Build an :class:`AdmissionControl` and install it on ``node``.

    Returns the control so callers can :meth:`~AdmissionControl.assign`
    service classes and read counters.  Installing replaces any previous
    control; ``node.admission = None`` uninstalls.
    """
    control = AdmissionControl(**config)
    node.admission = control
    return control
