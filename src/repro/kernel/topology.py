"""Topology builders: common network shapes in one call.

The experiments mostly hand-build their topologies; these helpers are for
library users modelling something bigger — multi-site WANs, rings, uniform
clusters — without writing link-spec loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .context import Context
from .network import LinkSpec
from .system import System


@dataclass
class Site:
    """One cluster of nodes created by :func:`build_sites`.

    Attributes:
        name: site label.
        contexts: one context per node, in creation order.
    """

    name: str
    contexts: list[Context] = field(default_factory=list)


def build_star(system: System, hub_name: str, leaf_names: list[str],
               context_name: str = "main") -> tuple[Context, list[Context]]:
    """A hub node plus leaves; returns ``(hub_context, leaf_contexts)``."""
    hub = system.add_node(hub_name).create_context(context_name)
    leaves = [system.add_node(name).create_context(context_name)
              for name in leaf_names]
    return hub, leaves


def build_ring(system: System, count: int, context_name: str = "main",
               neighbour_latency: float | None = None) -> list[Context]:
    """``count`` nodes in a ring: adjacent pairs get a fast link.

    Non-adjacent pairs keep the default (slower) cost model, approximating
    multi-hop forwarding without modelling routing.
    """
    contexts = [system.add_node(f"ring{i}").create_context(context_name)
                for i in range(count)]
    costs = system.costs
    fast = LinkSpec(
        latency=(neighbour_latency if neighbour_latency is not None
                 else costs.remote_latency / 4),
        byte_cost=costs.byte_cost)
    for index, ctx in enumerate(contexts):
        neighbour = contexts[(index + 1) % count]
        system.network.set_link(ctx.node.name, neighbour.node.name, fast)
    return contexts


@dataclass
class Region:
    """One geographic region created by :func:`build_regions`.

    Attributes:
        name: region label (also stamped on every member node's
            ``node.region``).
        contexts: one context per node, in creation order.
    """

    name: str
    contexts: list[Context] = field(default_factory=list)


def build_regions(system: System, region_names: list[str],
                  nodes_per_region: int, wan_factor: float = 20.0,
                  context_name: str = "main") -> list[Region]:
    """Multi-region WAN: LAN inside a region, WAN between regions.

    Like :func:`build_sites`, but every node is *tagged* with its region
    (``node.region``), which geo-aware proxy policies read to prefer
    same-region replicas (see the ``regional`` policy).  Intra-region
    links keep the default (LAN) cost model; every inter-region link gets
    ``wan_factor`` × the default latency.
    """
    regions = []
    for region_name in region_names:
        region = Region(region_name)
        for index in range(nodes_per_region):
            node = system.add_node(f"{region_name}-{index}")
            node.region = region_name
            region.contexts.append(node.create_context(context_name))
        regions.append(region)
    costs = system.costs
    wan = LinkSpec(latency=costs.remote_latency * wan_factor,
                   byte_cost=costs.byte_cost)
    for i, region_a in enumerate(regions):
        for region_b in regions[i + 1:]:
            for ctx_a in region_a.contexts:
                for ctx_b in region_b.contexts:
                    system.network.set_link(ctx_a.node.name,
                                            ctx_b.node.name, wan)
    return regions


def build_sites(system: System, site_names: list[str], nodes_per_site: int,
                wan_factor: float = 20.0,
                context_name: str = "main") -> list[Site]:
    """Multi-site WAN: fast LAN inside a site, slow WAN between sites.

    Intra-site links keep the default (LAN) cost model; every inter-site
    link gets ``wan_factor`` × the default latency (bandwidth unchanged —
    mid-80s WANs were latency-bound).
    """
    sites = []
    for site_name in site_names:
        site = Site(site_name)
        for index in range(nodes_per_site):
            node = system.add_node(f"{site_name}-{index}")
            site.contexts.append(node.create_context(context_name))
        sites.append(site)
    costs = system.costs
    wan = LinkSpec(latency=costs.remote_latency * wan_factor,
                   byte_cost=costs.byte_cost)
    for i, site_a in enumerate(sites):
        for site_b in sites[i + 1:]:
            for ctx_a in site_a.contexts:
                for ctx_b in site_b.contexts:
                    system.network.set_link(ctx_a.node.name,
                                            ctx_b.node.name, wan)
    return sites
