"""Virtual time.

The whole system runs in *virtual time*: a float number of seconds that is
advanced explicitly by the layers that model work (network transmission,
marshalling, dispatching, service compute).  Nothing in the library reads the
wall clock, which makes every experiment deterministic and replayable.

Each single-threaded *activity* (in practice: each context) owns a
:class:`Clock` cursor.  Interactions between activities — a request arriving
at a busy server, for instance — are mediated by :class:`BusyLine`, which
models a serially-reusable resource in the style of an M/D/1 queue: work
arriving at time ``t`` begins at ``max(t, busy_until)``.
"""

from __future__ import annotations

from .errors import SimulationError


class Clock:
    """A monotonic virtual-time cursor for one activity.

    The cursor can only move forward; attempting to move it backwards raises
    :class:`~repro.kernel.errors.SimulationError`, which catches the most
    common way a cost model goes wrong.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the cursor forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise SimulationError(f"cannot advance clock by negative delta {delta!r}")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Move the cursor forward to ``when`` (no-op if already past it)."""
        if when > self._now:
            self._now = when
        return self._now

    def reset(self, when: float = 0.0) -> None:
        """Set the cursor unconditionally (may rewind).

        For test/bench setup and for the one sanctioned runtime use: the
        promise layer rewinding a client to its request's send time to model
        asynchronous overlap (:mod:`repro.rpc.promises`).
        """
        self._now = float(when)

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.9f})"


class BusyLine:
    """A serially-reusable resource with FIFO occupancy in virtual time.

    Models a single-threaded server object (a *monitor* in 1986 terms): each
    piece of work occupies the line for its duration, and work arriving while
    the line is busy queues.  ``occupy`` returns the interval actually used.
    """

    __slots__ = ("_busy_until", "total_busy", "jobs")

    def __init__(self):
        self._busy_until = 0.0
        self.total_busy = 0.0
        self.jobs = 0

    @property
    def busy_until(self) -> float:
        """Virtual time at which the line becomes free."""
        return self._busy_until

    def occupy(self, arrive: float, duration: float) -> tuple[float, float]:
        """Occupy the line for ``duration`` starting no earlier than ``arrive``.

        Returns ``(start, end)`` in virtual time, where ``start`` includes any
        queueing delay behind previously-accepted work.
        """
        if duration < 0:
            raise SimulationError(f"negative service duration {duration!r}")
        start = max(arrive, self._busy_until)
        end = start + duration
        self._busy_until = end
        self.total_busy += duration
        self.jobs += 1
        return start, end

    def reset(self) -> None:
        """Clear occupancy (test/bench setup only)."""
        self._busy_until = 0.0
        self.total_busy = 0.0
        self.jobs = 0

    def __repr__(self) -> str:
        return f"BusyLine(busy_until={self._busy_until:.9f}, jobs={self.jobs})"
