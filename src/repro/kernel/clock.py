"""Virtual time.

The whole system runs in *virtual time*: a float number of seconds that is
advanced explicitly by the layers that model work (network transmission,
marshalling, dispatching, service compute).  Nothing in the library reads the
wall clock, which makes every experiment deterministic and replayable.

Each single-threaded *activity* (in practice: each context) owns a
:class:`Clock` cursor.  Interactions between activities — a request arriving
at a busy server, for instance — are mediated by :class:`BusyLine`, which
models a serially-reusable resource in the style of an M/D/1 queue: work
arriving at time ``t`` begins at ``max(t, busy_until)``.
"""

from __future__ import annotations

from .errors import SimulationError


class Clock:
    """A monotonic virtual-time cursor for one activity.

    The cursor can only move forward; attempting to move it backwards raises
    :class:`~repro.kernel.errors.SimulationError`, which catches the most
    common way a cost model goes wrong.
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0):
        #: Current virtual time in seconds.  A plain attribute (not a
        #: property): it is read on every hop of the invoke path, and all
        #: writes go through the methods below, which enforce monotonicity.
        self.now = float(start)

    def advance(self, delta: float) -> float:
        """Move the cursor forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise SimulationError(f"cannot advance clock by negative delta {delta!r}")
        self.now += delta
        return self.now

    def advance_to(self, when: float) -> float:
        """Move the cursor forward to ``when`` (no-op if already past it)."""
        if when > self.now:
            self.now = when
        return self.now

    def reset(self, when: float = 0.0) -> None:
        """Set the cursor unconditionally (may rewind).

        For test/bench setup and for the one sanctioned runtime use: the
        promise layer rewinding a client to its request's send time to model
        asynchronous overlap (:mod:`repro.rpc.promises`).
        """
        self.now = float(when)

    def __repr__(self) -> str:
        return f"Clock(now={self.now:.9f})"


class BusyLine:
    """A serially-reusable resource with FIFO occupancy in virtual time.

    Models a single-threaded server object (a *monitor* in 1986 terms): each
    piece of work occupies the line for its duration, and work arriving while
    the line is busy queues.  ``occupy`` returns the interval actually used.
    """

    __slots__ = ("busy_until", "total_busy", "jobs")

    def __init__(self):
        #: Virtual time at which the line becomes free (plain attribute for
        #: the same hot-path reason as :attr:`Clock.now`; writes go through
        #: :meth:`occupy` and :meth:`reset`).
        self.busy_until = 0.0
        self.total_busy = 0.0
        self.jobs = 0

    def occupy(self, arrive: float, duration: float) -> tuple[float, float]:
        """Occupy the line for ``duration`` starting no earlier than ``arrive``.

        Returns ``(start, end)`` in virtual time, where ``start`` includes any
        queueing delay behind previously-accepted work.
        """
        if duration < 0:
            raise SimulationError(f"negative service duration {duration!r}")
        start = max(arrive, self.busy_until)
        end = start + duration
        self.busy_until = end
        self.total_busy += duration
        self.jobs += 1
        return start, end

    def reset(self) -> None:
        """Clear occupancy (test/bench setup only)."""
        self.busy_until = 0.0
        self.total_busy = 0.0
        self.jobs = 0

    def __repr__(self) -> str:
        return f"BusyLine(busy_until={self.busy_until:.9f}, jobs={self.jobs})"
