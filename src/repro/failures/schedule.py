"""Seeded chaos schedules: composed, replayable fault timelines.

A :class:`ChaosSchedule` is a list of :class:`Fault` intervals on an
*operation-tick* timeline (the workload driver calls :meth:`ChaosSchedule.
tick` once per operation, exactly like :class:`~repro.failures.injectors.
CrashPlan`).  Each fault kind maps onto one of the begin/restore injector
primitives of :mod:`repro.failures.injectors`:

=================== ==========================================================
``crash``             one node down for the fault's duration (crash + restart)
``partition``         the victim node isolated from everyone else
``loss``              uniform message loss on every link (a loss burst)
``latency``           all inter-node propagation latency scaled by a factor
``primary_crash``     ``crash`` aimed at the first victim (a replica group's
                      bootstrap primary) instead of a sampled one
``primary_partition`` ``partition`` aimed the same way
``overload``          a burst of ``factor`` background jobs slammed into the
                      victim node's admission control at one virtual instant
=================== ==========================================================

The ``primary_*`` kinds exist because a random victim pick usually spares
the one node whose loss actually matters to a leader-based policy; menus
that include them (``replicated`` under election) are guaranteed schedules
that hit the primary.

Schedules are **data**: :meth:`to_json`/:meth:`from_json` round-trip them
losslessly, which is what makes a failing simulation seed minimizable (drop
faults, re-run) and checkable into a regression corpus to be replayed
verbatim forever.

Generation is seeded (:meth:`ChaosSchedule.generate`): the same ``rng``
state yields the same schedule, and same-kind faults are pruned to be
non-overlapping so begin/restore pairs never fight over saved state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..kernel.system import System
from .injectors import (
    begin_crash,
    begin_latency_spike,
    begin_message_loss,
    begin_overload,
    begin_partition,
)

#: Every basic fault kind a schedule may carry, in canonical order.
#: ``overload`` is deliberately *not* here: it only makes sense against a
#: deployment with (or deliberately without) admission control, so the
#: menus that want it opt in explicitly (see ``repro.simtest.workload``).
FAULT_KINDS = ("crash", "partition", "loss", "latency")

#: Primary-targeted variants: same injectors, victim pinned to the first
#: victim name (the replica group's bootstrap primary, node ``s0``).
PRIMARY_FAULT_KINDS = ("primary_crash", "primary_partition")


@dataclass(frozen=True)
class Fault:
    """One fault interval on the operation-tick timeline.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        start: tick index at which the fault begins.
        duration: tick count after which it is undone (>= 1).
        node: victim node name (``crash``, ``partition`` and ``overload``
            kinds).
        probability: loss probability (``loss`` kind).
        factor: latency multiplier (``latency`` kind) or burst job count
            (``overload`` kind).
    """

    kind: str
    start: int
    duration: int
    node: str = ""
    probability: float = 0.0
    factor: float = 1.0

    @property
    def end(self) -> int:
        """First tick at which the fault is no longer active."""
        return self.start + max(1, self.duration)

    def to_json(self) -> dict:
        """Marshal to a plain dict (stable keys, JSON-safe values)."""
        out = {"kind": self.kind, "start": self.start,
               "duration": self.duration}
        if self.node:
            out["node"] = self.node
        if self.kind == "loss":
            out["probability"] = self.probability
        if self.kind in ("latency", "overload"):
            out["factor"] = self.factor
        return out

    @classmethod
    def from_json(cls, data: dict) -> "Fault":
        """Rebuild a fault from :meth:`to_json` output."""
        return cls(kind=data["kind"], start=int(data["start"]),
                   duration=int(data["duration"]),
                   node=data.get("node", ""),
                   probability=float(data.get("probability", 0.0)),
                   factor=float(data.get("factor", 1.0)))


@dataclass
class ChaosSchedule:
    """A replayable timeline of faults, driven by an operation counter."""

    faults: tuple[Fault, ...] = ()
    node_names: tuple[str, ...] = ()
    _ticks: int = 0
    _active: dict[int, Callable[[], None]] = field(default_factory=dict)

    def reset(self) -> None:
        """Forget runtime state so the schedule can drive a fresh run."""
        self._ticks = 0
        self._active = {}

    def tick(self, system: System) -> None:
        """Advance one operation: end due faults, then begin new ones."""
        index = self._ticks
        self._ticks += 1
        for fid, fault in enumerate(self.faults):
            if fault.end == index and fid in self._active:
                self._active.pop(fid)()
        for fid, fault in enumerate(self.faults):
            if fault.start == index and fid not in self._active:
                self._active[fid] = self._begin(system, fault)

    def finish(self) -> None:
        """Undo every still-active fault (end of the driven workload)."""
        for fid in sorted(self._active):
            self._active.pop(fid)()

    def _begin(self, system: System, fault: Fault) -> Callable[[], None]:
        if fault.kind in ("crash", "primary_crash"):
            return begin_crash(system, fault.node)
        if fault.kind in ("partition", "primary_partition"):
            rest = {name for name in self.node_names if name != fault.node}
            return begin_partition(system, [{fault.node}, rest])
        if fault.kind == "loss":
            return begin_message_loss(system, fault.probability)
        if fault.kind == "latency":
            return begin_latency_spike(system, fault.factor)
        if fault.kind == "overload":
            return begin_overload(system, fault.node, int(fault.factor))
        raise ValueError(f"unknown fault kind {fault.kind!r}")

    # -- construction --------------------------------------------------------

    @classmethod
    def generate(cls, rng: random.Random, total_ops: int,
                 victims: list[str], all_nodes: list[str],
                 kinds: tuple[str, ...] = FAULT_KINDS,
                 max_faults: int = 3) -> "ChaosSchedule":
        """Sample a schedule: up to ``max_faults`` non-overlapping faults.

        ``victims`` are the nodes that may be crashed or partitioned away
        (the workload's server side); ``all_nodes`` is the full topology
        (needed to build partition islands).  ``kinds`` is the fault menu —
        callers restrict it to the kinds a policy's consistency contract
        tolerates (see :mod:`repro.simtest.workload`).
        """
        faults: list[Fault] = []
        if not kinds or total_ops < 4:
            return cls(faults=(), node_names=tuple(all_nodes))
        for _ in range(rng.randrange(max_faults + 1)):
            kind = kinds[rng.randrange(len(kinds))]
            start = rng.randrange(1, max(2, total_ops - 2))
            duration = rng.randrange(2, max(3, total_ops // 3))
            fault = None
            if kind in ("crash", "partition"):
                if victims:
                    node = victims[rng.randrange(len(victims))]
                    fault = Fault(kind, start, duration, node=node)
            elif kind in PRIMARY_FAULT_KINDS:
                if victims:
                    # Deterministically aim at the bootstrap primary.
                    fault = Fault(kind, start, duration, node=victims[0])
            elif kind == "overload":
                if victims:
                    node = victims[rng.randrange(len(victims))]
                    # 80–200 burst jobs: far beyond any sane run queue, so
                    # an unprotected node drowns and a protected one sheds.
                    factor = float(80 + 40 * rng.randrange(4))
                    fault = Fault(kind, start, duration, node=node,
                                  factor=factor)
            elif kind == "loss":
                probability = round(0.05 + 0.25 * rng.random(), 3)
                fault = Fault(kind, start, duration, probability=probability)
            elif kind == "latency":
                factor = round(2.0 + 8.0 * rng.random(), 2)
                fault = Fault(kind, start, duration, factor=factor)
            if fault is not None:
                faults.append(fault)
        return cls(faults=_prune_overlaps(faults),
                   node_names=tuple(all_nodes))

    def replace_faults(self, faults: list[Fault]) -> "ChaosSchedule":
        """A fresh schedule with the same topology but different faults
        (the minimizer's workhorse)."""
        return ChaosSchedule(faults=tuple(faults), node_names=self.node_names)

    # -- marshalling ---------------------------------------------------------

    def to_json(self) -> list[dict]:
        """The fault list as plain dicts (topology travels separately)."""
        return [fault.to_json() for fault in self.faults]

    @classmethod
    def from_json(cls, data: list[dict],
                  node_names: tuple[str, ...] = ()) -> "ChaosSchedule":
        """Rebuild a schedule from :meth:`to_json` output."""
        return cls(faults=tuple(Fault.from_json(item) for item in data),
                   node_names=tuple(node_names))


def _prune_overlaps(faults: list[Fault]) -> tuple[Fault, ...]:
    """Drop faults that overlap an earlier same-kind (and same-node) one.

    Keeps begin/restore pairs trivially correct: at most one loss burst, one
    latency spike, one partition, and one outage per node are active at any
    tick.  Partitions additionally never overlap each other regardless of
    victim (two concurrent two-island splits would not compose).  The
    ``primary_*`` kinds share their base kind's class — a ``primary_crash``
    and a ``crash`` of the same node never overlap, nor do any two
    partition-class faults.
    """
    kept: list[Fault] = []
    busy_until: dict[tuple[str, str], int] = {}
    for fault in sorted(faults, key=lambda f: (f.start, f.kind, f.node)):
        kind_class = "crash" if fault.kind in ("crash", "primary_crash") \
            else "partition" if fault.kind in ("partition",
                                               "primary_partition") \
            else fault.kind
        key = (kind_class, fault.node if kind_class == "crash" else "")
        if busy_until.get(key, -1) > fault.start:
            continue
        kept.append(fault)
        busy_until[key] = fault.end
    return tuple(kept)
