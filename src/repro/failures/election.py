"""Lease-based leader election: term numbers over the failure detector.

The versioned quorum mode of :mod:`repro.core.policies.replicating`
sequences every write through one primary.  This module removes that
single point of failure: each replica carries an :class:`ElectionState` —
a **term** number, the leader it believes in, and a **lease** promise —
and the replicated proxy (policy code shipped by the service, so the
whole affair stays encapsulated from clients) runs a deterministic,
bully-style election when the leader stops answering:

1. **status** round — probe every replica for ``(term, leader, lease
   expiry, log digest)``; adopt any newer term seen.
2. **candidacy** — the candidate is the most up-to-date reachable
   replica (largest total log), ties broken by *lowest* replica index
   (the bully rule).
3. **vote** round at ``term + 1`` — a replica grants at most one vote
   per term, and only once its lease on the old leader has expired (or
   its :class:`~repro.failures.detector.FailureDetector` already
   suspects that leader — suspicion shortcuts the wait, it never
   replaces the single-vote rule).
4. **sync** — the proxy transfers, per key, the best ``(term, version)``
   suffix among the voters onto the candidate, so a new leader always
   holds every entry a write quorum could have committed (any vote
   majority intersects every write quorum when ``majority >= N - W + 1``).
5. **announce** — every replica adopts ``(term, leader)`` and re-arms
   its lease; the candidate's own announce must succeed or the election
   aborts.

Safety does not rest on the leases (terms and quorum fencing do that
work — a stale-term write is refused with a redirect); leases bound how
*often* elections may happen and therefore how long two leaders of
*different* terms can coexist.  Two leaders of the *same* term are
impossible while every replica grants one vote per term — the
``splitbrain`` canary in :mod:`repro.simtest.workload` breaks exactly
that rule and the checker must convict it.

Wire vocabulary (header/reply keys, control verbs) lives in
:mod:`repro.wire.versions`; this module owns only the per-replica state
machine and is reached from :func:`~repro.wire.versions.serve_control`
through the export entry's ``election`` attribute.
"""

from __future__ import annotations

from ..metrics.counters import CounterSet
from ..wire import versions
from .detector import SUSPECTED

#: Default leader-lease length in virtual seconds.  Long against one
#: election round (a handful of ~1 ms RPCs) and the RPC retry budget
#: (~60 ms), short against an experiment's runtime — the write
#: unavailability after a primary crash is bounded by this plus the
#: election time (measured in experiment E9's failover panel).
DEFAULT_LEASE_TTL = 0.5


class ElectionState:
    """One replica's view of the group's leadership.

    Attributes:
        index: this replica's position in the group (group order).
        context_ids: every replica's context id, group order.
        ttl: lease length in virtual seconds.
        term: highest term this replica has adopted.
        leader: replica index of the leader of ``term``.
        lease_expiry: virtual time until which this replica has promised
            not to vote a new leader in (re-armed by announce/renew).
        vote_term: highest term this replica has voted in.
        voted_for: candidate index that vote went to.
        detector: optional :class:`~repro.failures.detector.
            FailureDetector` on this replica's context; a *suspected*
            leader lets a vote through before the lease expires.
        counters: server-side election/repair traffic counters
            (:class:`~repro.metrics.counters.CounterSet`).
    """

    def __init__(self, index: int, context_ids, ttl: float = DEFAULT_LEASE_TTL,
                 detector=None):
        self.index = int(index)
        self.context_ids = tuple(context_ids)
        self.ttl = float(ttl)
        self.term = 1
        self.leader = 0
        #: The bootstrap lease: the deployment anoints replica 0 for term 1,
        #: so the group is writable from virtual time zero.
        self.lease_expiry = float(ttl)
        self.vote_term = 1
        self.voted_for = 0
        self.detector = detector
        self.counters = CounterSet()

    # -- helpers -------------------------------------------------------------

    def is_leader(self) -> bool:
        """Whether this replica believes itself the current leader."""
        return self.leader == self.index

    def lease_valid(self, now: float) -> bool:
        """Whether the current lease promise still binds at ``now``."""
        return now < self.lease_expiry

    def leader_suspected(self) -> bool:
        """Whether the failure detector already suspects the leader.

        Suspicion only ever *shortens* the lease wait for a vote; with an
        overlapped quorum (majority >= N - W + 1) a premature election
        stays safe — the old leader's writes are fenced out of any quorum
        the moment the new term lands on a majority.
        """
        if self.detector is None or self.is_leader():
            return False
        leader_ctx = self.context_ids[self.leader]
        try:
            return self.detector.status(leader_ctx) == SUSPECTED
        except KeyError:
            return False

    def adopt(self, term: int, leader: int, now: float) -> bool:
        """Adopt a newer term observed on the wire (no lease re-arm).

        Lost announce frames heal here: the first enveloped request of a
        newer term teaches the replica who leads it.
        """
        term = int(term)
        if term <= self.term:
            return False
        self.term = term
        self.leader = int(leader)
        self.counters.incr("terms_adopted")
        return True

    def fence(self, term: int) -> dict | None:
        """The redirect reply for a stale-term write, or ``None`` if current.

        Mirrors the migration chain's reject-with-forwarding: the caller
        learns the current ``(term, leader)`` and retries there.
        """
        if int(term) >= self.term:
            return None
        self.counters.incr("fencing_rejects")
        return {versions.K_FENCED: [self.term, self.leader]}

    # -- control verbs (reached through versions.serve_control) ---------------

    def control(self, kind: str, control: list, now: float, log) -> dict:
        """Serve one election control call; returns the reply wrapper."""
        if kind == "status":
            return {versions.K_TERM: [self.term, self.leader],
                    versions.K_EXPIRY: self.lease_expiry,
                    versions.K_DIGEST: log.digest()}
        if kind == "vote":
            return self._vote(int(control[1]), int(control[2]), now, log)
        if kind == "announce":
            return self._announce(int(control[1]), int(control[2]), now)
        if kind == "renew":
            return self._renew(int(control[1]), int(control[2]), now)
        raise versions.ProtocolError(f"unknown election control {kind!r}")

    def _vote(self, term: int, candidate: int, now: float, log) -> dict:
        refusal = {versions.K_GRANT: False,
                   versions.K_TERM: [self.term, self.leader],
                   versions.K_EXPIRY: self.lease_expiry}
        if term <= self.term:
            self.counters.incr("votes_refused")
            return refusal
        if self.vote_term == term and self.voted_for != candidate:
            # One vote per term — the rule that makes same-term split
            # brain impossible.
            self.counters.incr("votes_refused")
            return refusal
        if self.lease_valid(now) and not self.leader_suspected():
            self.counters.incr("votes_refused")
            return refusal
        self.vote_term = term
        self.voted_for = candidate
        self.counters.incr("votes_granted")
        # The digest rides the grant: the winner syncs from its voters, so
        # a committed entry (held by some write quorum) can never be lost —
        # every vote majority intersects every write quorum.
        return {versions.K_GRANT: True,
                versions.K_TERM: [self.term, self.leader],
                versions.K_DIGEST: log.digest()}

    def _announce(self, term: int, leader: int, now: float) -> dict:
        if term > self.term or (term == self.term and leader == self.leader):
            self.term = term
            self.leader = leader
            self.lease_expiry = now + self.ttl
            self.counters.incr("announces_accepted")
            return {versions.K_GRANT: True, versions.K_TERM: [term, leader]}
        self.counters.incr("announces_refused")
        return {versions.K_GRANT: False,
                versions.K_TERM: [self.term, self.leader]}

    def _renew(self, term: int, leader: int, now: float) -> dict:
        if term == self.term and leader == self.leader:
            self.lease_expiry = max(self.lease_expiry, now + self.ttl)
            self.counters.incr("renewals")
            return {versions.K_GRANT: True, versions.K_TERM: [term, leader]}
        if self.adopt(term, leader, now):
            self.lease_expiry = now + self.ttl
            self.counters.incr("renewals")
            return {versions.K_GRANT: True, versions.K_TERM: [term, leader]}
        self.counters.incr("renewals_refused")
        return {versions.K_GRANT: False,
                versions.K_TERM: [self.term, self.leader]}
