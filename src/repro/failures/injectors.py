"""Failure injection: deterministic faults for experiments and sim-chaos.

Everything here is seeded through the system's
:class:`~repro.kernel.randomness.SeedSequence`, so a failure experiment is
exactly reproducible: same seed, same drops, same crashes.

Two shapes of the same primitives are exported:

* **scoped** context managers (:func:`message_loss`, :func:`degraded_link`,
  :func:`partitioned`, :func:`latency_spike`) for experiments that wrap one
  workload phase in one fault, and
* **paired begin/restore** functions (:func:`begin_message_loss`,
  :func:`begin_latency_spike`, :func:`begin_partition`,
  :func:`begin_crash`, :func:`begin_overload`), each returning a
  zero-argument undo closure, for schedulers that must start and stop
  overlapping faults out of LIFO order — the
  :class:`~repro.failures.schedule.ChaosSchedule` of the simulation
  harness is composed from exactly these.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

from ..kernel.network import LinkSpec
from ..kernel.system import System

#: Modelled work per burst job when the victim node carries no admission
#: control (and hence no configured service time): the whole burst lands
#: on the busy line as backlog.
BURST_SERVICE_TIME = 0.02


# -- begin/restore primitives ------------------------------------------------


def begin_message_loss(system: System, probability: float) -> Callable[[], None]:
    """Start uniform message loss on every link; returns the undo closure."""
    network = system.network
    previous = network._default_loss
    network.set_default_loss(probability)

    def restore() -> None:
        network.set_default_loss(previous)

    return restore


def begin_latency_spike(system: System, factor: float) -> Callable[[], None]:
    """Scale all inter-node latency by ``factor``; returns the undo closure."""
    network = system.network
    previous = network.set_latency_factor(factor)

    def restore() -> None:
        network.latency_factor = previous

    return restore


def begin_partition(system: System,
                    islands: list[set[str]]) -> Callable[[], None]:
    """Split the network into islands; returns the undo (heal) closure."""
    system.network.partition(islands)
    return system.network.heal


def begin_overload(system: System, node_name: str,
                   jobs: int) -> Callable[[], None]:
    """Slam a burst of ``jobs`` background requests into one node, *now*.

    The burst models open-loop traffic from outside the measured workload
    (a retry storm, a crawler, a neighbouring tenant) arriving at a single
    virtual instant.  Each job is pushed through the node's admission
    control exactly as the RPC dispatcher would push a real request: shed
    jobs vanish for free, admitted jobs occupy the node's first context's
    busy line for the configured service time and then release their run
    queue slot.  A node with **no** admission control (``node.admission``
    is ``None``) admits everything at :data:`BURST_SERVICE_TIME` per job —
    the whole burst becomes busy-line backlog that every later request
    must wait out, which is precisely the congestion collapse the
    ``shedless`` simtest canary exists to exhibit.

    The burst is instantaneous, so the returned undo closure is a no-op
    (kept for uniformity with the other begin/restore primitives).
    """
    node = system.node(node_name)
    if node.alive and node.contexts:
        ctx = next(iter(node.contexts.values()))
        admission = node.admission
        arrive = max(ctx.clock.now, ctx.line.busy_until)
        service = BURST_SERVICE_TIME if admission is None \
            else (admission.service_time or BURST_SERVICE_TIME)
        system.trace.emit(arrive, "overload", node_name, "",
                          f"burst:{jobs}")
        for _ in range(max(0, jobs)):
            if admission is not None \
                    and admission.admit("", arrive) is not None:
                continue    # shed at the front door: costs nothing
            start = max(arrive, ctx.line.busy_until)
            ctx.line.occupy(start, service)
            if admission is not None:
                admission.finish("", start + service)

    def restore() -> None:
        pass    # a burst has no ongoing state to undo

    return restore


def begin_crash(system: System, node_name: str) -> Callable[[], None]:
    """Crash a node (no-op if already down); returns the restart closure."""
    node = system.node(node_name)
    if node.alive:
        node.crash()

    def restore() -> None:
        if not node.alive:
            node.restart()

    return restore


# -- scoped fault injection --------------------------------------------------


@contextmanager
def message_loss(system: System, probability: float):
    """Scoped uniform message loss on every inter-node link."""
    restore = begin_message_loss(system, probability)
    try:
        yield system
    finally:
        restore()


@contextmanager
def latency_spike(system: System, factor: float):
    """Scoped multiplier on every inter-node link's propagation latency."""
    restore = begin_latency_spike(system, factor)
    try:
        yield system
    finally:
        restore()


@contextmanager
def degraded_link(system: System, src: str, dst: str,
                  latency: float | None = None, loss: float = 0.0):
    """Scoped override of one link (slow and/or lossy), symmetric."""
    network = system.network
    costs = system.costs
    saved = (network._links.get((src, dst)), network._links.get((dst, src)))
    network.set_link(src, dst, LinkSpec(
        latency=latency if latency is not None else costs.remote_latency,
        byte_cost=costs.byte_cost, loss=loss))
    try:
        yield system
    finally:
        for key, spec in (((src, dst), saved[0]), ((dst, src), saved[1])):
            if spec is None:
                network._links.pop(key, None)
            else:
                network._links[key] = spec


@contextmanager
def partitioned(system: System, islands: list[set[str]]):
    """Scoped network partition into the given islands."""
    restore = begin_partition(system, islands)
    try:
        yield system
    finally:
        restore()


@dataclass
class CrashPlan:
    """A deterministic crash/restart schedule driven by an operation counter.

    Built once per experiment; the workload driver calls :meth:`tick` before
    every operation.  ``outages`` maps an operation index to a
    ``(node_name, duration_in_ops)`` pair: at that index the node crashes,
    and it restarts ``duration_in_ops`` operations later.

    Attributes:
        outages: op index → (node name, outage length in ops).
    """

    outages: dict[int, tuple[str, int]]
    _pending_restarts: dict[int, str] = field(default_factory=dict)
    _ticks: int = 0

    def tick(self, system: System) -> None:
        """Advance the schedule by one operation."""
        index = self._ticks
        self._ticks += 1
        node_name = self._pending_restarts.pop(index, None)
        if node_name is not None:
            node = system.node(node_name)
            if not node.alive:
                node.restart()
        outage = self.outages.get(index)
        if outage is not None:
            name, duration = outage
            node = system.node(name)
            if node.alive:
                node.crash()
            self._pending_restarts[index + max(1, duration)] = name

    @property
    def ticks(self) -> int:
        """Operations seen so far."""
        return self._ticks

    @classmethod
    def periodic(cls, node_names: list[str], every: int, duration: int,
                 total_ops: int, start: int | None = None) -> "CrashPlan":
        """Crash the given nodes round-robin every ``every`` operations."""
        outages: dict[int, tuple[str, int]] = {}
        index = start if start is not None else every
        victim = 0
        while index < total_ops:
            outages[index] = (node_names[victim % len(node_names)], duration)
            victim += 1
            index += every
        return cls(outages=outages)
