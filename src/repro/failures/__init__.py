"""Failure injection: loss, degraded links, partitions, crash/chaos plans."""

from .detector import (
    ALIVE,
    DEFAULT_SUSPICION_THRESHOLD,
    FailureDetector,
    PeerState,
    SUSPECTED,
)
from .injectors import (
    CrashPlan,
    begin_crash,
    begin_latency_spike,
    begin_message_loss,
    begin_overload,
    begin_partition,
    degraded_link,
    latency_spike,
    message_loss,
    partitioned,
)
from .schedule import FAULT_KINDS, ChaosSchedule, Fault

__all__ = [
    "ALIVE", "ChaosSchedule", "CrashPlan", "DEFAULT_SUSPICION_THRESHOLD",
    "FAULT_KINDS", "FailureDetector", "Fault", "PeerState", "SUSPECTED",
    "begin_crash", "begin_latency_spike", "begin_message_loss",
    "begin_overload", "begin_partition", "degraded_link", "latency_spike",
    "message_loss", "partitioned",
]
