"""Failure injection: message loss, degraded links, partitions, crash plans."""

from .detector import (
    ALIVE,
    DEFAULT_SUSPICION_THRESHOLD,
    FailureDetector,
    PeerState,
    SUSPECTED,
)
from .injectors import CrashPlan, degraded_link, message_loss, partitioned

__all__ = [
    "ALIVE", "CrashPlan", "DEFAULT_SUSPICION_THRESHOLD", "FailureDetector",
    "PeerState", "SUSPECTED", "degraded_link", "message_loss", "partitioned",
]
