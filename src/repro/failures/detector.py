"""Heartbeat failure detection: suspicion, not certainty.

A classic unreliable failure detector: the watcher pings the context
manager of each watched context (through ordinary proxies, of course) and
counts consecutive misses.  Past a threshold the peer is *suspected* —
never "known dead": a partition and a crash look identical from here, which
is exactly the lesson the transparency literature teaches.

Probing is explicit (``probe()``), so tests and experiments control time;
a live system would call it from a timer loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.export import get_space
from ..kernel.context import Context
from ..kernel.errors import DistributionError

#: Consecutive missed probes after which a peer is suspected.
DEFAULT_SUSPICION_THRESHOLD = 2

ALIVE = "alive"
SUSPECTED = "suspected"


@dataclass
class PeerState:
    """Bookkeeping for one watched peer.

    Attributes:
        context_id: the watched context.
        misses: consecutive failed probes.
        probes: total probes sent.
        last_seen: virtual time of the last successful probe (-1 = never).
        suspected_at: virtual time suspicion started (None while alive).
    """

    context_id: str
    misses: int = 0
    probes: int = 0
    last_seen: float = -1.0
    suspected_at: float | None = None


class FailureDetector:
    """Ping-based suspicion tracking over a set of peers.

    When a :class:`~repro.resilience.breaker.BreakerRegistry` is attached
    (``breakers``), suspicion flows both ways: starting to suspect a peer
    force-opens every breaker toward it (other callers fail fast without
    paying their own detection latency), a successful probe of a suspected
    peer force-closes them, and :meth:`consult_breakers` folds already-open
    breakers back into suspicion without spending a probe.
    """

    def __init__(self, context: Context,
                 suspicion_threshold: int = DEFAULT_SUSPICION_THRESHOLD,
                 breakers=None):
        self.context = context
        self.suspicion_threshold = max(1, suspicion_threshold)
        self.breakers = breakers
        self._peers: dict[str, PeerState] = {}
        self.stats = {"probes": 0, "hits": 0, "misses": 0,
                      "suspicions": 0, "recoveries": 0}

    def watch(self, context_id: str) -> PeerState:
        """Start watching a context (idempotent)."""
        state = self._peers.get(context_id)
        if state is None:
            state = PeerState(context_id)
            self._peers[context_id] = state
        return state

    def unwatch(self, context_id: str) -> bool:
        """Stop watching; returns whether the peer was watched."""
        return self._peers.pop(context_id, None) is not None

    def probe(self) -> dict[str, str]:
        """Ping every watched peer once; returns ``context_id -> status``.

        A probe is one ``ping()`` on the peer's context manager; its cost
        (including the full retry budget when the peer is down — that *is*
        the detection latency) lands on this detector's context clock.
        """
        space = get_space(self.context)
        statuses: dict[str, str] = {}
        for state in self._peers.values():
            self.stats["probes"] += 1
            state.probes += 1
            try:
                space.ctxmgr_proxy(state.context_id).ping()
            except DistributionError:
                self.stats["misses"] += 1
                state.misses += 1
                if state.misses == self.suspicion_threshold:
                    state.suspected_at = self.context.clock.now
                    self.stats["suspicions"] += 1
                    if self.breakers is not None:
                        self.breakers.trip_target(state.context_id,
                                                  self.context.clock.now)
            else:
                self.stats["hits"] += 1
                if state.suspected_at is not None:
                    self.stats["recoveries"] += 1
                    if self.breakers is not None:
                        self.breakers.reset_target(state.context_id,
                                                   self.context.clock.now)
                state.misses = 0
                state.suspected_at = None
                state.last_seen = self.context.clock.now
            statuses[state.context_id] = self.status(state.context_id)
        return statuses

    def consult_breakers(self) -> list[str]:
        """Fold open circuits into suspicion without spending probes.

        Any watched peer some caller's breaker is currently OPEN toward is
        suspected immediately — the breaker has already paid the detection
        latency this detector would otherwise have to pay in missed pings.
        Returns the peers newly suspected.  No-op without a registry.
        """
        if self.breakers is None:
            return []
        now = self.context.clock.now
        newly = []
        for state in self._peers.values():
            if state.misses >= self.suspicion_threshold:
                continue
            if self.breakers.open_toward(state.context_id, now):
                state.misses = self.suspicion_threshold
                state.suspected_at = now
                self.stats["suspicions"] += 1
                newly.append(state.context_id)
        return newly

    def status(self, context_id: str) -> str:
        """Current classification of one peer."""
        state = self._peers.get(context_id)
        if state is None:
            raise KeyError(f"not watching {context_id!r}")
        return SUSPECTED if state.misses >= self.suspicion_threshold else ALIVE

    def alive(self) -> list[str]:
        """Watched peers currently classified alive, sorted."""
        return sorted(cid for cid in self._peers
                      if self.status(cid) == ALIVE)

    def suspected(self) -> list[str]:
        """Watched peers currently suspected, sorted."""
        return sorted(cid for cid in self._peers
                      if self.status(cid) == SUSPECTED)

    def peer(self, context_id: str) -> PeerState:
        """Raw bookkeeping for one peer."""
        return self._peers[context_id]
