"""Transactions: optimistic concurrency control behind proxies (extension)."""

from .client import Transaction, run_transaction, store_key
from .coordinator import TransactionCoordinator
from .participant import VersionedKVStore
from .saga import SagaCoordinator

__all__ = [
    "SagaCoordinator", "Transaction", "TransactionCoordinator",
    "VersionedKVStore", "run_transaction", "store_key",
]
