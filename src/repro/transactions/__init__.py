"""Transactions: optimistic concurrency control behind proxies (extension)."""

from .client import Transaction, run_transaction
from .coordinator import TransactionCoordinator
from .participant import VersionedKVStore

__all__ = [
    "Transaction", "TransactionCoordinator", "VersionedKVStore",
    "run_transaction",
]
