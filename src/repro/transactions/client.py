"""The client side of optimistic transactions.

A :class:`Transaction` wraps any number of versioned stores (their
proxies).  Reads go to the stores immediately and record the versions seen;
writes buffer locally.  ``commit`` ships the read set and write set to the
coordinator in one request.  No locks, no blocking: conflicts surface as a
``False`` commit, and :func:`run_transaction` retries.
"""

from __future__ import annotations

from typing import Any, Callable

from ..kernel.errors import ProtocolError


def store_key(store) -> Any:
    """A stable identity for a store across proxy objects.

    Two wire references to the same remote store can swizzle into distinct
    proxy objects, so ``id(store)`` is not an identity — but the underlying
    :class:`~repro.wire.refs.ObjectRef` key is.  Local (non-proxy) stores
    fall back to object identity, which is exact for them.
    """
    ref = getattr(store, "proxy_ref", None)
    if ref is not None:
        return ref.key
    return id(store)


class Transaction:
    """One optimistic transaction over any number of versioned stores."""

    def __init__(self, coordinator):
        self.coordinator = coordinator
        self.txid = coordinator.begin()
        self._reads: list[tuple[Any, str, int]] = []
        self._writes: dict[tuple[Any, str], tuple[Any, Any]] = {}
        self._finished = False

    def read(self, store, key: str) -> Any:
        """Transactional read: buffered value if this transaction wrote the
        key, else the store's current value (version recorded)."""
        self._check_open()
        slot = (store_key(store), key)
        # Key-presence, not a None test: a buffered write of ``None`` is a
        # real write and must shadow the store (no spurious read-set entry).
        if slot in self._writes:
            return self._writes[slot][1]
        value, version = store.read(key)
        self._reads.append((store, key, version))
        return value

    def write(self, store, key: str, value: Any) -> None:
        """Transactional write: buffered until commit."""
        self._check_open()
        self._writes[(store_key(store), key)] = (store, value)

    def commit(self) -> bool:
        """Validate and apply through the coordinator; one round trip."""
        self._check_open()
        self._finished = True
        if not self._writes:
            # Read-only transactions still validate, for serialisability.
            if not self._reads:
                return True
        reads = [[store, key, version]
                 for store, key, version in self._reads]
        writes = [[store, key, value]
                  for (_, key), (store, value) in self._writes.items()]
        return self.coordinator.commit(self.txid, reads, writes)

    def abort(self) -> None:
        """Drop the transaction (nothing was ever applied)."""
        self._finished = True
        self._reads.clear()
        self._writes.clear()

    @property
    def read_set_size(self) -> int:
        """Number of recorded reads."""
        return len(self._reads)

    @property
    def write_set_size(self) -> int:
        """Number of buffered writes."""
        return len(self._writes)

    @property
    def finished(self) -> bool:
        """Whether the transaction has committed or aborted."""
        return self._finished

    def _check_open(self) -> None:
        if self._finished:
            raise ProtocolError("transaction already committed or aborted")


def run_transaction(coordinator, body: Callable[[Transaction], Any],
                    max_attempts: int = 16) -> tuple[Any, int]:
    """Run ``body`` under a transaction, retrying on conflict.

    Returns ``(body_result, attempts)``.  Raises ``ProtocolError`` when the
    retry budget is exhausted (persistent contention).  When ``body``
    raises, the open transaction is aborted before the exception
    propagates — nothing leaks a half-built read/write set.
    """
    for attempt in range(1, max_attempts + 1):
        txn = Transaction(coordinator)
        try:
            result = body(txn)
        except BaseException:
            if not txn.finished:
                txn.abort()
            raise
        if txn.finished:
            # The body committed or aborted explicitly; honor its outcome
            # rather than double-committing.
            return result, attempt
        if txn.commit():
            return result, attempt
    raise ProtocolError(
        f"transaction aborted {max_attempts} times; giving up")
