"""Sagas: long-lived workflows that complete or compensate, never block.

Where :meth:`~repro.transactions.coordinator.TransactionCoordinator.commit_2pc`
buys atomicity by *wedging* keys between prepare and decision (a partition
in that window blocks every reader), a saga gives up the lock and buys
liveness: a sequence of forward steps, each locally atomic and idempotent,
paired with compensating actions that semantically undo an applied prefix
when a later step refuses or cannot be resolved.

The invariant a saga promises is weaker than serialisability but auditable:
**every saga ends with either all forward effects applied or every applied
step compensated** — intermediate states are visible (that is the price),
but money is conserved once the dust settles.

Machinery that makes retries safe:

* every forward step carries an idempotency key ``s<id>/<step>``; the
  participant records the first outcome and replays it on retries
  (:meth:`~repro.transactions.participant.VersionedKVStore.adjust_once`);
* an in-doubt step (participant unreachable after the attempt) is resolved
  by ``cancel_once`` on the same key — a *tombstone* that either reports
  what actually happened or forecloses a late retry from applying;
* compensations use key ``s<id>/<step>/c`` and are unbounded adjustments,
  so they always apply once the participant is reachable;
* unreachable cancellations/compensations *park* on the saga's ledger and
  :meth:`SagaCoordinator.settle` re-drives them after the fault heals —
  the saga equivalent of 2PC's decision redelivery, except no one was
  blocked in the meantime.
"""

from __future__ import annotations

from ..core.service import Service
from ..iface.interface import operation
from ..kernel.errors import DistributionError


class SagaCoordinator(Service):
    """Forward steps + compensations with an auditable per-saga ledger."""

    default_policy = "stub"

    def __init__(self):
        self._next_id = 1
        #: saga id -> {"state": "committed" | "compensated" | "pending",
        #:             "parked": [pending action records]}
        self.ledger: dict[int, dict] = {}
        self.stats = {"begun": 0, "committed": 0, "compensated": 0,
                      "parked_actions": 0, "settled_actions": 0}

    @operation(compute=2e-5)
    def run(self, steps: list) -> list:
        """Drive one saga to a decision.

        ``steps``: list of ``[store, key, delta, floor, cap]`` — each a
        bounded idempotent adjustment at a participant (store fields arrive
        as proxies).  Steps apply in order; the first *business* refusal
        (bound violated) compensates the applied prefix in reverse and
        returns ``["refused", step_index]``; success returns
        ``["committed"]``.

        A participant unreachable on its forward step makes that step
        in-doubt: the saga decides **abort**, tombstones the step with
        ``cancel_once`` (compensating it if the tombstone reveals it had
        applied), compensates the prefix, and returns ``["aborted",
        step_index]``.  Actions that cannot be delivered park on the
        ledger for :meth:`settle` — the caller always gets a decision;
        nothing ever blocks.
        """
        saga_id = self._next_id
        self._next_id += 1
        self.stats["begun"] += 1
        entry = {"state": "pending", "parked": []}
        self.ledger[saga_id] = entry
        applied: list[int] = []
        verdict: list | None = None
        for index, (store, key, delta, floor, cap) in enumerate(steps):
            idem = f"s{saga_id}/{index}"
            try:
                outcome = store.adjust_once(idem, key, delta, floor, cap)
            except DistributionError:
                # In doubt: decide abort, tombstone this step.
                self._cancel(saga_id, entry, steps, index)
                verdict = ["aborted", index]
                break
            if outcome[0] == "applied":
                applied.append(index)
                continue
            # Business refusal (or a tombstone from an earlier incarnation):
            # nothing applied at this step, compensate the prefix.
            verdict = ["refused", index]
            break
        if verdict is None:
            entry["state"] = "committed"
            self.stats["committed"] += 1
            self.ledger.pop(saga_id, None)
            return ["committed"]
        for index in reversed(applied):
            self._compensate(saga_id, entry, steps, index)
        entry["state"] = "compensated"
        self.stats["compensated"] += 1
        if not entry["parked"]:
            self.ledger.pop(saga_id, None)
        return verdict

    @operation(compute=1e-5)
    def settle(self) -> int:
        """Re-drive parked cancellations/compensations; returns how many
        actions resolved this sweep.  Idempotent — participants replay
        recorded outcomes — so call it as often as you like."""
        resolved = 0
        for saga_id in list(self.ledger):
            entry = self.ledger[saga_id]
            parked, entry["parked"] = entry["parked"], []
            for action in parked:
                resolved += self._drive(saga_id, entry, action)
            if entry["state"] != "pending" and not entry["parked"]:
                del self.ledger[saga_id]
        self.stats["settled_actions"] += resolved
        return resolved

    @operation(readonly=True, compute=2e-6)
    def unresolved(self) -> int:
        """Sagas with parked actions still awaiting delivery."""
        return sum(1 for entry in self.ledger.values() if entry["parked"])

    def _cancel(self, saga_id: int, entry: dict, steps: list,
                index: int) -> None:
        """Tombstone an in-doubt forward step (compensate if it applied)."""
        self._drive(saga_id, entry,
                    ["cancel", index, steps[index][0], steps[index][1],
                     steps[index][2]])

    def _compensate(self, saga_id: int, entry: dict, steps: list,
                    index: int) -> None:
        store, key, delta = steps[index][0], steps[index][1], steps[index][2]
        self._drive(saga_id, entry, ["comp", index, store, key, delta])

    def _drive(self, saga_id: int, entry: dict, action: list) -> int:
        """Execute one parked-able action; park it again on failure."""
        kind, index, store, key, delta = action
        try:
            if kind == "cancel":
                outcome = store.cancel_once(f"s{saga_id}/{index}")
                if outcome[0] == "applied":
                    # The in-doubt step had actually applied: undo it.
                    return self._drive(
                        saga_id, entry, ["comp", index, store, key, delta])
                return 1
            store.adjust_once(
                f"s{saga_id}/{index}/c", key, -delta, None, None)
            return 1
        except DistributionError:
            entry["parked"].append(action)
            self.stats["parked_actions"] += 1
            return 0
