"""The transaction coordinator: optimistic validation and atomic apply.

One coordinator service per deployment.  Clients run transactions
optimistically (reads record versions, writes buffer locally — see
:mod:`repro.transactions.client`) and submit everything at commit:

1. **Validate**: for every read, the recorded version must still be current
   at its participant — a conflicting committed writer bumps versions and
   dooms the transaction (backward validation).
2. **Apply**: buffered writes go to their participants in batches.

Atomicity and isolation rest on the coordinator being a single activity:
commits serialise through its context, and a commit's validate+apply runs
to completion before the next begins — the simulation analogue of a
critical section, honest because its virtual-time cost (every nested RPC
to the participants) is charged within it.

The participant references inside a commit request swizzle into proxies on
arrival, so the coordinator talks to stores it has never heard of before —
the proxy principle doing the plumbing.  Batches are keyed by each proxy's
*stable remote reference* (``ObjectRef.key``), never by ``id()``: two wire
references to one store may swizzle into distinct proxy objects, and
splitting their batches would silently defeat the documented
last-write-wins dedup.

``commit_2pc`` is the strict two-phase variant for multi-store writes:
prepare locks every touched key at every participant, the coordinator logs
the decision, then pushes commit/abort.  Between prepare and decision
delivery the keys are *in doubt* — participants refuse reads and writes on
them (:class:`~repro.kernel.errors.TransactionBlocked`), which is exactly
the blocking window sagas exist to avoid (see
:mod:`repro.transactions.saga`).
"""

from __future__ import annotations

from ..core.service import Service
from ..iface.interface import operation
from ..kernel.errors import DistributionError
from .client import store_key


class TransactionCoordinator(Service):
    """Serialising validator/applier for optimistic transactions."""

    default_policy = "stub"

    def __init__(self):
        self._next_txid = 1
        self.stats = {"begun": 0, "committed": 0, "aborted": 0,
                      "validated_reads": 0, "applied_writes": 0,
                      "prepared": 0, "recovered": 0}
        #: txid -> ("commit" | "abort", [store proxies with undelivered
        #: decisions]).  A durable decision log in spirit: once the decision
        #: is recorded here the transaction's outcome is fixed, and
        #: :meth:`recover` re-pushes it to participants that were
        #: unreachable when it was first made.
        self._decisions: dict[int, tuple[str, list]] = {}

    @operation(compute=2e-6)
    def begin(self) -> int:
        """Open a transaction; returns its id (ids are diagnostic only —
        optimistic transactions carry their whole state at commit)."""
        txid = self._next_txid
        self._next_txid += 1
        self.stats["begun"] += 1
        return txid

    @operation(compute=1e-5)
    def commit(self, txid: int, reads: list, writes: list) -> bool:
        """Validate and apply one transaction.

        ``reads``:  list of ``[store, key, version]``.
        ``writes``: list of ``[store, key, value]``.
        Store fields arrive as proxies (they were references on the wire).
        Returns ``True`` on commit, ``False`` on validation failure.
        """
        # -- validate every read against current versions, batched per store
        by_store: dict = {}
        for store, key, version in reads:
            slot = by_store.setdefault(store_key(store), (store, []))
            slot[1].append((key, version))
        for store, pairs in by_store.values():
            keys = [key for key, _ in pairs]
            current = store.versions(keys)
            self.stats["validated_reads"] += len(keys)
            for (key, seen_version), now_version in zip(pairs, current):
                if seen_version != now_version:
                    self.stats["aborted"] += 1
                    return False
        # -- apply writes, batched per store, last-write-wins within the tx
        pending: dict = {}
        for store, key, value in writes:
            slot = pending.setdefault(store_key(store), (store, {}))
            slot[1][key] = value
        for store, kv in pending.values():
            store.apply([[key, value] for key, value in kv.items()])
            self.stats["applied_writes"] += len(kv)
        self.stats["committed"] += 1
        return True

    @operation(compute=2e-5)
    def commit_2pc(self, txid: int, reads: list, writes: list) -> bool:
        """Two-phase commit: prepare everywhere, decide, push the decision.

        Same request shape as :meth:`commit`.  Returns ``True`` on commit,
        ``False`` when any participant refused prepare (version conflict or
        a key already wedged by another in-doubt transaction).  Raises
        :class:`DistributionError` when a participant is unreachable during
        prepare — the touched keys stay locked until :meth:`recover`
        delivers the logged decision, which is the 2PC blocking window.
        """
        groups = self._group(reads, writes)
        prepared: list = []
        try:
            for store, pairs, kv in groups.values():
                ok = store.prepare(
                    txid, [[key, version] for key, version in pairs],
                    [[key, value] for key, value in kv.items()])
                if not ok:
                    self._decide(txid, "abort", prepared)
                    self.stats["aborted"] += 1
                    return False
                prepared.append(store)
                self.stats["prepared"] += 1
        except DistributionError:
            # Unreachable participant mid-prepare: the decision is abort,
            # but stores we cannot reach stay wedged until recovery.
            self._decide(txid, "abort", prepared)
            self.stats["aborted"] += 1
            raise
        self._decide(txid, "commit", prepared)
        self.stats["committed"] += 1
        for _, _, kv in groups.values():
            self.stats["applied_writes"] += len(kv)
        return True

    @operation(compute=1e-5)
    def recover(self) -> int:
        """Re-push logged decisions to participants that missed them.

        Returns how many participant deliveries succeeded this sweep.
        Call after a partition heals; idempotent (participants remember
        decided txids).
        """
        delivered = 0
        for txid in list(self._decisions):
            verdict, parked = self._decisions[txid]
            still: list = []
            for store in parked:
                try:
                    if verdict == "commit":
                        store.commit_prepared(txid)
                    else:
                        store.abort_prepared(txid)
                    delivered += 1
                except DistributionError:
                    still.append(store)
            if still:
                self._decisions[txid] = (verdict, still)
            else:
                del self._decisions[txid]
        self.stats["recovered"] += delivered
        return delivered

    @operation(readonly=True, compute=2e-6)
    def in_doubt(self) -> int:
        """Number of transactions with undelivered decisions."""
        return len(self._decisions)

    def _group(self, reads: list, writes: list) -> dict:
        """Per-store ``(store, read pairs, write kv)`` keyed by stable ref."""
        groups: dict = {}
        for store, key, version in reads:
            slot = groups.setdefault(store_key(store), (store, [], {}))
            slot[1].append((key, version))
        for store, key, value in writes:
            slot = groups.setdefault(store_key(store), (store, [], {}))
            slot[2][key] = value
        return groups

    def _decide(self, txid: int, verdict: str, prepared: list) -> None:
        """Log the decision, then best-effort push it to ``prepared``."""
        parked: list = []
        for store in prepared:
            try:
                if verdict == "commit":
                    store.commit_prepared(txid)
                else:
                    store.abort_prepared(txid)
            except DistributionError:
                parked.append(store)
        if parked:
            self._decisions[txid] = (verdict, parked)
