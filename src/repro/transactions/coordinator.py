"""The transaction coordinator: optimistic validation and atomic apply.

One coordinator service per deployment.  Clients run transactions
optimistically (reads record versions, writes buffer locally — see
:mod:`repro.transactions.client`) and submit everything at commit:

1. **Validate**: for every read, the recorded version must still be current
   at its participant — a conflicting committed writer bumps versions and
   dooms the transaction (backward validation).
2. **Apply**: buffered writes go to their participants in batches.

Atomicity and isolation rest on the coordinator being a single activity:
commits serialise through its context, and a commit's validate+apply runs
to completion before the next begins — the simulation analogue of a
critical section, honest because its virtual-time cost (every nested RPC
to the participants) is charged within it.

The participant references inside a commit request swizzle into proxies on
arrival, so the coordinator talks to stores it has never heard of before —
the proxy principle doing the plumbing.
"""

from __future__ import annotations

from ..core.service import Service
from ..iface.interface import operation


class TransactionCoordinator(Service):
    """Serialising validator/applier for optimistic transactions."""

    default_policy = "stub"

    def __init__(self):
        self._next_txid = 1
        self.stats = {"begun": 0, "committed": 0, "aborted": 0,
                      "validated_reads": 0, "applied_writes": 0}

    @operation(compute=2e-6)
    def begin(self) -> int:
        """Open a transaction; returns its id (ids are diagnostic only —
        optimistic transactions carry their whole state at commit)."""
        txid = self._next_txid
        self._next_txid += 1
        self.stats["begun"] += 1
        return txid

    @operation(compute=1e-5)
    def commit(self, txid: int, reads: list, writes: list) -> bool:
        """Validate and apply one transaction.

        ``reads``:  list of ``[store, key, version]``.
        ``writes``: list of ``[store, key, value]``.
        Store fields arrive as proxies (they were references on the wire).
        Returns ``True`` on commit, ``False`` on validation failure.
        """
        # -- validate every read against current versions, batched per store
        by_store: dict = {}
        for store, key, version in reads:
            by_store.setdefault(id(store), (store, []))[1].append((key, version))
        for store, pairs in by_store.values():
            keys = [key for key, _ in pairs]
            current = store.versions(keys)
            self.stats["validated_reads"] += len(keys)
            for (key, seen_version), now_version in zip(pairs, current):
                if seen_version != now_version:
                    self.stats["aborted"] += 1
                    return False
        # -- apply writes, batched per store, last-write-wins within the tx
        pending: dict = {}
        for store, key, value in writes:
            slot = pending.setdefault(id(store), (store, {}))
            slot[1][key] = value
        for store, kv in pending.values():
            store.apply([[key, value] for key, value in kv.items()])
            self.stats["applied_writes"] += len(kv)
        self.stats["committed"] += 1
        return True
