"""Transaction participants: versioned stores.

A participant is an ordinary service — reachable only through proxies, like
everything else — whose state carries per-key versions, giving the
coordinator something to validate against (backward-validation optimistic
concurrency control, the style Argus-era systems explored).
"""

from __future__ import annotations

from typing import Any

from ..core.service import Service
from ..iface.interface import operation


class VersionedKVStore(Service):
    """A key-value store whose every key carries a monotonic version."""

    default_policy = "stub"

    def __init__(self):
        #: key -> (value, version); absent key has implicit version 0.
        self.cells: dict[str, tuple[Any, int]] = {}

    @operation(readonly=True, compute=5e-6)
    def read(self, key: str) -> list:
        """``[value, version]`` for ``key`` (``[None, 0]`` when absent)."""
        value, version = self.cells.get(key, (None, 0))
        return [value, version]

    @operation(readonly=True, compute=5e-6)
    def versions(self, keys: list) -> list:
        """Current versions of several keys, in order."""
        return [self.cells.get(key, (None, 0))[1] for key in keys]

    @operation(invalidates=("key",), compute=8e-6)
    def write(self, key: str, value: Any) -> int:
        """Unconditional write; returns the new version.

        Provided for non-transactional clients; transactional writes go
        through :meth:`apply`.
        """
        version = self.cells.get(key, (None, 0))[1] + 1
        self.cells[key] = (value, version)
        return version

    @operation(compute=1e-5)
    def apply(self, writes: list) -> list:
        """Apply a batch of ``[key, value]`` writes atomically (locally);
        returns the new versions, in order."""
        new_versions = []
        for key, value in writes:
            version = self.cells.get(key, (None, 0))[1] + 1
            self.cells[key] = (value, version)
            new_versions.append(version)
        return new_versions

    @operation(readonly=True, compute=3e-6)
    def snapshot(self) -> dict:
        """Plain ``key -> value`` view (diagnostics/tests)."""
        return {key: value for key, (value, _) in self.cells.items()}

    # The versioned store is also a valid persistence/migration capsule.
    def migrate_state(self):
        return {"cells": {key: list(cell) for key, cell in self.cells.items()}}

    @classmethod
    def from_migration_state(cls, state):
        obj = cls()
        obj.cells = {key: (value, version)
                     for key, (value, version) in state["cells"].items()}
        return obj
