"""Transaction participants: versioned stores.

A participant is an ordinary service — reachable only through proxies, like
everything else — whose state carries per-key versions, giving the
coordinator something to validate against (backward-validation optimistic
concurrency control, the style Argus-era systems explored).

Beyond the optimistic path, the store speaks two more protocols:

* **Two-phase commit** (:meth:`prepare` / :meth:`commit_prepared` /
  :meth:`abort_prepared`): prepare validates and *locks* the touched keys;
  until the coordinator's decision arrives, reads and writes on those keys
  refuse with :class:`~repro.kernel.errors.TransactionBlocked` — the store
  cannot answer without guessing the in-doubt outcome.  Decisions are
  idempotent: a decided txid is remembered, so recovery retries are safe.

* **Idempotent saga steps** (:meth:`adjust_once` / :meth:`cancel_once`):
  each carries an idempotency key; the outcome of the first application is
  recorded and replayed verbatim on retries, so a saga coordinator that
  lost the reply can resend without double-applying.  ``cancel_once``
  writes a *tombstone*: if the forward step never ran, the tombstone wins
  and a late-arriving retry of the forward step is refused as cancelled.
"""

from __future__ import annotations

from typing import Any

from ..core.service import Service
from ..iface.interface import operation
from ..kernel.errors import TransactionBlocked


class VersionedKVStore(Service):
    """A key-value store whose every key carries a monotonic version."""

    default_policy = "stub"

    def __init__(self):
        #: key -> (value, version); absent key has implicit version 0.
        self.cells: dict[str, tuple[Any, int]] = {}
        #: key -> txid holding the 2PC prepare lock.
        self._locks: dict[str, int] = {}
        #: txid -> staged {key: value} awaiting the decision.
        self._staged: dict[int, dict[str, Any]] = {}
        #: txids whose decision already arrived (idempotent redelivery).
        self._decided: dict[int, str] = {}
        #: idempotency key -> recorded outcome (saga at-most-once ledger).
        self._outcomes: dict[str, list] = {}

    @operation(readonly=True, compute=5e-6)
    def read(self, key: str) -> list:
        """``[value, version]`` for ``key`` (``[None, 0]`` when absent)."""
        self._check_unlocked(key)
        value, version = self.cells.get(key, (None, 0))
        return [value, version]

    @operation(readonly=True, compute=5e-6)
    def versions(self, keys: list) -> list:
        """Current versions of several keys, in order."""
        for key in keys:
            self._check_unlocked(key)
        return [self.cells.get(key, (None, 0))[1] for key in keys]

    @operation(invalidates=("key",), compute=8e-6)
    def write(self, key: str, value: Any) -> int:
        """Unconditional write; returns the new version.

        Provided for non-transactional clients; transactional writes go
        through :meth:`apply`.
        """
        self._check_unlocked(key)
        version = self.cells.get(key, (None, 0))[1] + 1
        self.cells[key] = (value, version)
        return version

    @operation(compute=1e-5)
    def apply(self, writes: list) -> list:
        """Apply a batch of ``[key, value]`` writes atomically (locally);
        returns the new versions, in order."""
        for key, _ in writes:
            self._check_unlocked(key)
        new_versions = []
        for key, value in writes:
            version = self.cells.get(key, (None, 0))[1] + 1
            self.cells[key] = (value, version)
            new_versions.append(version)
        return new_versions

    # -- two-phase commit ---------------------------------------------------

    @operation(compute=1e-5)
    def prepare(self, txid: int, reads: list, writes: list) -> bool:
        """Phase one: validate ``[key, version]`` reads, stage ``[key,
        value]`` writes, and lock every touched key.

        Returns ``False`` (a refusal, not an error) on a version conflict
        or when any touched key is already locked by another in-doubt
        transaction.  On ``True`` the keys stay wedged until
        :meth:`commit_prepared` or :meth:`abort_prepared`.
        """
        if txid in self._staged or txid in self._decided:
            return txid in self._staged  # duplicate prepare: same answer
        touched = [key for key, _ in reads] + [key for key, _ in writes]
        for key in touched:
            holder = self._locks.get(key)
            if holder is not None and holder != txid:
                return False
        for key, version in reads:
            if self.cells.get(key, (None, 0))[1] != version:
                return False
        for key in touched:
            self._locks[key] = txid
        self._staged[txid] = {key: value for key, value in writes}
        return True

    @operation(compute=8e-6)
    def commit_prepared(self, txid: int) -> bool:
        """Phase two, commit: apply the staged writes and release locks.

        Idempotent — redelivering a decided txid is a no-op ``True``.
        """
        if txid in self._decided:
            return True
        staged = self._staged.pop(txid, None)
        if staged is None:
            return False
        for key, value in staged.items():
            version = self.cells.get(key, (None, 0))[1] + 1
            self.cells[key] = (value, version)
        self._release(txid)
        self._decided[txid] = "commit"
        return True

    @operation(compute=8e-6)
    def abort_prepared(self, txid: int) -> bool:
        """Phase two, abort: drop the staged writes and release locks.

        Idempotent, and safe for a txid never prepared here (presumed
        abort): the answer is still ``True``.
        """
        if txid in self._decided:
            return True
        self._staged.pop(txid, None)
        self._release(txid)
        self._decided[txid] = "abort"
        return True

    @operation(readonly=True, compute=3e-6)
    def locked_keys(self) -> list:
        """Keys currently wedged under in-doubt transactions (sorted)."""
        return sorted(self._locks)

    # -- idempotent saga steps ----------------------------------------------

    @operation(compute=1e-5)
    def adjust_once(self, idem: str, key: str, delta: int,
                    floor: Any = None, cap: Any = None) -> list:
        """Bounded increment, at most once per idempotency key.

        Returns ``["applied", new_value]``, ``["refused", current_value]``
        when the bound would be violated (a *business* refusal, not an
        error), or ``["cancelled"]`` when :meth:`cancel_once` tombstoned
        the key first.  Retries with the same ``idem`` replay the recorded
        outcome without re-applying.
        """
        recorded = self._outcomes.get(idem)
        if recorded is not None:
            return recorded
        self._check_unlocked(key)
        current, version = self.cells.get(key, (0, 0))
        proposed = (current or 0) + delta
        if floor is not None and proposed < floor:
            outcome = ["refused", current]
        elif cap is not None and proposed > cap:
            outcome = ["refused", current]
        else:
            self.cells[key] = (proposed, version + 1)
            outcome = ["applied", proposed]
        self._outcomes[idem] = outcome
        return outcome

    @operation(compute=8e-6)
    def cancel_once(self, idem: str) -> list:
        """Tombstone an idempotency key: the recorded outcome if the step
        already ran, else ``["cancelled"]`` recorded so a late retry of the
        forward step cannot apply."""
        recorded = self._outcomes.get(idem)
        if recorded is not None:
            return recorded
        outcome = ["cancelled"]
        self._outcomes[idem] = outcome
        return outcome

    @operation(readonly=True, compute=3e-6)
    def snapshot(self) -> dict:
        """Plain ``key -> value`` view (diagnostics/tests)."""
        return {key: value for key, (value, _) in self.cells.items()}

    def _check_unlocked(self, key: str) -> None:
        if key in self._locks:
            raise TransactionBlocked(
                f"key {key!r} is in doubt under 2PC txid "
                f"{self._locks[key]}; awaiting the coordinator's decision")

    def _release(self, txid: int) -> None:
        for key in [key for key, holder in self._locks.items()
                    if holder == txid]:
            del self._locks[key]

    # The versioned store is also a valid persistence/migration capsule.
    def migrate_state(self):
        return {"cells": {key: list(cell) for key, cell in self.cells.items()}}

    @classmethod
    def from_migration_state(cls, state):
        obj = cls()
        obj.cells = {key: (value, version)
                     for key, (value, version) in state["cells"].items()}
        return obj
