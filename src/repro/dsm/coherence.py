"""DSM coherence: single-writer / multiple-reader with invalidation.

A centralized-manager protocol (the textbook Li & Hudak variant):

* **read fault** — requester asks the manager; the manager forwards to the
  current owner; the owner ships the page (a full ``page_size`` transfer)
  and downgrades its own copy to read mode;
* **write fault** — requester asks the manager; the manager invalidates
  every outstanding copy (control messages to each holder, in parallel,
  acknowledged), transfers the page from the old owner, and passes
  ownership.

Every message is recorded in the system trace with its size, and all
latencies are charged to the faulting context's virtual clock; the manager
context serialises protocol handling through its busy line, which is what
makes the protocol degrade under write-sharing (the E4 shape).

Delivery is assumed reliable: real DSMs run over a reliable transport and
retry invisibly; modelling that retry traffic is out of scope for the
comparison the paper makes.
"""

from __future__ import annotations

from ..kernel.context import Context
from .pages import Mode, SharedRegion

#: Size in bytes of a protocol control message (request, forward, ack).
CONTROL_SIZE = 64


class CoherenceProtocol:
    """The region's coherence engine (one per :class:`SharedRegion`)."""

    def __init__(self, region: SharedRegion):
        self.region = region
        self.system = region.manager.system
        self.stats = {"read_faults": 0, "write_faults": 0,
                      "invalidations_sent": 0, "page_transfers": 0,
                      "control_messages": 0}

    # -- public access checks ---------------------------------------------------

    def read_access(self, context: Context, page: int) -> None:
        """Ensure ``context`` may read ``page``, faulting if necessary."""
        cache = self.region.cache_of(context)
        if cache.mode(page) is not Mode.NONE:
            cache.stats["read_hits"] += 1
            return
        cache.stats["read_faults"] += 1
        self.stats["read_faults"] += 1
        self._read_fault(context, cache, page)

    def write_access(self, context: Context, page: int) -> None:
        """Ensure ``context`` may write ``page``, faulting if necessary."""
        cache = self.region.cache_of(context)
        if cache.mode(page) is Mode.WRITE:
            cache.stats["write_hits"] += 1
            return
        cache.stats["write_faults"] += 1
        self.stats["write_faults"] += 1
        self._write_fault(context, cache, page)

    # -- faults -------------------------------------------------------------------

    def _read_fault(self, context: Context, cache, page: int) -> None:
        costs = self.system.costs
        network = self.system.network
        state = self.region.directory[page]
        manager = self.region.manager
        context.charge(costs.page_fault_overhead)
        at = self._control(context.context_id, manager.context_id,
                           context.clock.now, "dsm-read-req")
        at = self._manager_handle(at)
        owner_id = state.owner
        if owner_id != manager.context_id:
            at = self._control(manager.context_id, owner_id, at, "dsm-fwd")
        # Owner ships the page to the requester and keeps a read copy.
        owner_node = owner_id.split("/", 1)[0]
        my_node = context.node.name
        at += network.transit_time(owner_node, my_node, costs.page_size)
        self.system.trace.emit(at, "send", owner_id, context.context_id,
                               "dsm-page", costs.page_size)
        self.stats["page_transfers"] += 1
        owner_cache = self.region.caches.get(owner_id)
        if owner_cache is not None:
            owner_cache.downgrade(page)
        if context.context_id != owner_id:
            state.copies.add(context.context_id)
        cache.grant(page, Mode.READ)
        context.clock.advance_to(at)

    def _write_fault(self, context: Context, cache, page: int) -> None:
        costs = self.system.costs
        network = self.system.network
        state = self.region.directory[page]
        manager = self.region.manager
        context.charge(costs.page_fault_overhead)
        at = self._control(context.context_id, manager.context_id,
                           context.clock.now, "dsm-write-req")
        at = self._manager_handle(at)
        holders = set(state.copies) | {state.owner}
        holders.discard(context.context_id)
        if holders:
            # Parallel invalidations, each acknowledged to the manager.
            slowest = 0.0
            manager_node = manager.node.name
            for holder in holders:
                holder_node = holder.split("/", 1)[0]
                there = network.transit_time(manager_node, holder_node,
                                             CONTROL_SIZE)
                back = network.transit_time(holder_node, manager_node,
                                            CONTROL_SIZE)
                self.system.trace.emit(at, "send", manager.context_id, holder,
                                       "dsm-inval", CONTROL_SIZE)
                self.system.trace.emit(at + there, "send", holder,
                                       manager.context_id, "dsm-inval-ack",
                                       CONTROL_SIZE)
                self.stats["invalidations_sent"] += 1
                self.stats["control_messages"] += 2
                holder_cache = self.region.caches.get(holder)
                if holder_cache is not None:
                    holder_cache.invalidate(page)
                slowest = max(slowest, there + back)
            at += slowest
        old_owner = state.owner
        if old_owner != context.context_id:
            old_node = old_owner.split("/", 1)[0]
            at += network.transit_time(old_node, context.node.name,
                                       costs.page_size)
            self.system.trace.emit(at, "send", old_owner, context.context_id,
                                   "dsm-page", costs.page_size)
            self.stats["page_transfers"] += 1
        state.owner = context.context_id
        state.copies = set()
        state.version += 1
        cache.grant(page, Mode.WRITE)
        context.clock.advance_to(at)

    # -- slot access (overridden by weaker protocols) -----------------------------

    def read_slot(self, context: Context, page: int, offset: int):
        """Read one slot under this protocol's consistency regime.

        The strong protocol reads ground truth — invalidation guarantees the
        local copy equals it.  Weaker protocols override this to serve from
        their (possibly stale) snapshots.
        """
        self.read_access(context, page)
        return self.region.contents[page].get(offset)

    def write_slot(self, context: Context, page: int, offset: int,
                   value) -> None:
        """Write one slot under this protocol's consistency regime."""
        self.write_access(context, page)
        self.region.contents[page][offset] = value

    # -- helpers --------------------------------------------------------------------

    def _control(self, src_id: str, dst_id: str, at: float, label: str) -> float:
        """One control message; returns its arrival time."""
        network = self.system.network
        src_node = src_id.split("/", 1)[0]
        dst_node = dst_id.split("/", 1)[0]
        self.system.trace.emit(at, "send", src_id, dst_id, label, CONTROL_SIZE)
        self.stats["control_messages"] += 1
        return at + network.transit_time(src_node, dst_node, CONTROL_SIZE)

    def _manager_handle(self, arrive: float) -> float:
        """Serialise a request through the manager (queueing under load)."""
        _, end = self.region.manager.line.occupy(
            arrive, self.system.costs.dispatch_cost)
        return end
