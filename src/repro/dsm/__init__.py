"""Distributed shared memory: the paper's third invocation technique."""

from .coherence import CONTROL_SIZE, CoherenceProtocol
from .heap import DsmKV, SharedHeap, make_dsm_kv
from .pages import Mode, PageCache, PageState, SharedRegion
from .weak import DEFAULT_STALENESS, WeakCoherence

__all__ = [
    "CONTROL_SIZE", "CoherenceProtocol", "DEFAULT_STALENESS", "DsmKV",
    "Mode", "PageCache", "PageState", "SharedHeap", "SharedRegion",
    "WeakCoherence", "make_dsm_kv",
]
