"""The DSM object layer: slots, a heap, and a KV store mapped onto pages.

``Distributed invocation [over DSM] introduces a further optimisation over
proxies by migrating objects into a local address space`` — accessing an
object through DSM is an ordinary procedure call plus whatever page faults
the access pattern produces.  :class:`DsmKV` packages that as a key-value
store API-compatible with :class:`repro.apps.kv.KVStore`, so the E1/E4
benches can swap access techniques under an identical workload.
"""

from __future__ import annotations

import zlib
from typing import Any

from ..kernel.context import Context
from ..kernel.errors import ConfigurationError
from .coherence import CoherenceProtocol
from .pages import SharedRegion


class SharedHeap:
    """Slot-granular typed storage over a shared region."""

    def __init__(self, region: SharedRegion,
                 protocol: CoherenceProtocol | None = None):
        self.region = region
        self.protocol = protocol or CoherenceProtocol(region)
        self._next_slot = 0

    @property
    def capacity(self) -> int:
        """Total number of slots in the region."""
        return self.region.num_pages * self.region.slots_per_page

    def alloc(self, nslots: int = 1) -> int:
        """Reserve ``nslots`` consecutive slots; returns the first index."""
        if self._next_slot + nslots > self.capacity:
            raise ConfigurationError(
                f"heap exhausted: {self.capacity} slots, "
                f"{self._next_slot} used, {nslots} requested")
        start = self._next_slot
        self._next_slot += nslots
        return start

    def read(self, context: Context, slot: int) -> Any:
        """Read one slot from ``context`` (page fault if not cached)."""
        page, offset = self._locate(slot)
        context.charge(context.system.costs.local_call)
        return self.protocol.read_slot(context, page, offset)

    def write(self, context: Context, slot: int, value: Any) -> None:
        """Write one slot from ``context`` (ownership fault if needed)."""
        page, offset = self._locate(slot)
        context.charge(context.system.costs.local_call)
        self.protocol.write_slot(context, page, offset, value)

    def _locate(self, slot: int) -> tuple[int, int]:
        if not 0 <= slot < self.capacity:
            raise ConfigurationError(f"slot {slot} out of range")
        return divmod(slot, self.region.slots_per_page)


class DsmKV:
    """A key-value store whose data lives in distributed shared memory.

    Keys are hashed onto slots (open addressing is deliberately *not*
    modelled: two keys sharing a page is exactly the false-sharing effect
    the experiments probe, and ``slots_per_page`` is the knob).

    Unlike the RPC/proxy stores, methods take the accessing context
    explicitly — with DSM there is no server: whoever touches the data pays
    the faults.
    """

    def __init__(self, heap: SharedHeap, capacity: int | None = None):
        self.heap = heap
        self.capacity = capacity or heap.capacity
        self.base = heap.alloc(self.capacity)

    def slot_of(self, key: str) -> int:
        """The heap slot a key maps to (stable across runs)."""
        digest = zlib.crc32(key.encode("utf-8"))
        return self.base + digest % self.capacity

    def get(self, context: Context, key: str) -> Any:
        """Read a key's value (``None`` when absent)."""
        cell = self.heap.read(context, self.slot_of(key))
        if cell is None:
            return None
        stored_key, value = cell
        return value if stored_key == key else None

    def put(self, context: Context, key: str, value: Any) -> bool:
        """Write a key's value (last write to a colliding slot wins)."""
        self.heap.write(context, self.slot_of(key), (key, value))
        return True


def make_dsm_kv(manager: Context, members: list[Context], num_pages: int = 64,
                slots_per_page: int = 64) -> DsmKV:
    """Convenience: region + protocol + heap + KV, with members attached."""
    region = SharedRegion("dsm-kv", manager, num_pages, slots_per_page)
    for member in members:
        region.attach(member)
    return DsmKV(SharedHeap(region))
